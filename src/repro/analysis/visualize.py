"""Terminal-friendly visualizations of series and mining results.

Plain-text renderings for exploratory sessions and CLI output:

* :func:`confidence_heatmap` — offsets x features grid of 1-pattern
  confidences (the F1 landscape a period induces);
* :func:`pattern_timeline` — per-segment match string of one pattern, the
  quickest way to *see* partial periodicity and its misses;
* :func:`render_result` — aligned table of a mining result with confidence
  bars.

Everything returns strings; nothing prints.
"""

from __future__ import annotations

from repro.core.counting import letter_counts_for_segments
from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult
from repro.timeseries.feature_series import FeatureSeries

#: Ten shade characters for confidence 0.0 .. 1.0.
_SHADES = " .:-=+*#%@"


def _shade(confidence: float) -> str:
    index = min(int(confidence * len(_SHADES)), len(_SHADES) - 1)
    return _SHADES[index]


def confidence_heatmap(
    series: FeatureSeries,
    period: int,
    features: list[str] | None = None,
    max_features: int = 20,
) -> str:
    """An offsets-by-features grid of 1-pattern confidences.

    Each cell shades ``confidence((offset, feature))`` from blank (0) to
    ``@`` (1).  Features default to the alphabet sorted by total
    occurrence, capped at ``max_features``.
    """
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    counts = letter_counts_for_segments(series.segments(period))
    if features is None:
        totals: dict[str, int] = {}
        for (offset, feature), count in counts.items():
            totals[feature] = totals.get(feature, 0) + count
        features = sorted(totals, key=lambda f: (-totals[f], f))[:max_features]
    width = max((len(feature) for feature in features), default=7)
    header = " " * width + " |" + "".join(
        str(offset % 10) for offset in range(period)
    )
    lines = [header, "-" * len(header)]
    for feature in features:
        cells = "".join(
            _shade(counts.get((offset, feature), 0) / num_periods)
            for offset in range(period)
        )
        lines.append(f"{feature:>{width}} |{cells}")
    legend = f"shade scale: '{_SHADES}' = 0.0 .. 1.0"
    lines.append(legend)
    return "\n".join(lines)


def pattern_timeline(
    series: FeatureSeries,
    pattern: Pattern,
    per_line: int = 60,
) -> str:
    """One character per segment: ``#`` = pattern true, ``.`` = miss.

    Makes the paper's "partial" visible at a glance: a mostly-# line with
    scattered dots is exactly a high-confidence partial periodic pattern.
    """
    if per_line < 1:
        raise MiningError(f"per_line must be >= 1, got {per_line}")
    marks = "".join(
        "#" if pattern.matches(segment) else "."
        for segment in series.segments(pattern.period)
    )
    if not marks:
        raise MiningError(
            f"series of length {len(series)} has no whole period of "
            f"{pattern.period}"
        )
    lines = [
        marks[start : start + per_line]
        for start in range(0, len(marks), per_line)
    ]
    hits = marks.count("#")
    footer = (
        f"{pattern}: {hits}/{len(marks)} segments "
        f"(confidence {hits / len(marks):.3f})"
    )
    return "\n".join(lines + [footer])


def render_result(
    result: MiningResult,
    limit: int = 20,
    bar_width: int = 24,
) -> str:
    """A mining result as an aligned table with confidence bars."""
    if bar_width < 1:
        raise MiningError(f"bar_width must be >= 1, got {bar_width}")
    rows = result.to_rows()[:limit]
    if not rows:
        return f"(no frequent patterns; {result.summary()})"
    name_width = max(len(text) for text, _, _ in rows)
    lines = [result.summary()]
    for text, count, conf in rows:
        bar = "#" * round(conf * bar_width)
        lines.append(
            f"  {text:<{name_width}}  {count:>6}  {conf:6.3f}  |{bar:<{bar_width}}|"
        )
    if len(result) > limit:
        lines.append(f"  ... and {len(result) - limit} more")
    return "\n".join(lines)
