"""Period discovery: rank candidate periods by partial-periodic evidence.

Section 3.2 motivates mining a *range* of periods because "certain patterns
may appear at some unexpected periods, such as every 11 years, or every 14
hours".  Before paying for full mining of every period, this module scores
each candidate period with a single slot-level scan (exactly the Step-1
counting of Algorithm 3.4) and ranks them.

The score of a period is the *excess confidence per offset* of its frequent
1-patterns: for a letter ``(offset, feature)`` with confidence ``c`` and
feature base rate ``r`` (fraction of all slots containing the feature), the
letter contributes ``max(0, c - r)`` when ``c >= min_conf``; the sum is then
divided by the period.  The normalization matters: a multiple ``k*p`` of a
true period ``p`` carries ``k`` copies of every ``p``-letter, so the raw sum
grows linearly with the harmonic index while the per-offset density stays
flat — dividing by the period puts the fundamental and its harmonics on the
same scale, and the tie then breaks toward the smaller period (see the
harmonic filter in :func:`suggest_periods`).  A feature present everywhere
contributes nothing at any period.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.counting import check_min_conf, min_count
from repro.core.errors import MiningError
from repro.core.multiperiod import period_range
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class PeriodScore:
    """Periodic evidence for one candidate period."""

    period: int
    #: Number of frequent 1-patterns at this period.
    frequent_letters: int
    #: Highest 1-pattern confidence observed.
    best_confidence: float
    #: Excess confidence over feature base rates, per offset of the period
    #: (the ranking key; normalized so harmonics do not outscore the
    #: fundamental).
    score: float


def score_periods(
    series: FeatureSeries,
    periods: Iterable[int],
    min_conf: float = 0.5,
    min_repetitions: int = 2,
) -> list[PeriodScore]:
    """Score each candidate period in one slot-level scan.

    Periods that do not repeat at least ``min_repetitions`` times are
    skipped.  Results are sorted by descending score.
    """
    check_min_conf(min_conf)
    unique = sorted(set(periods))
    if not unique:
        raise MiningError("no periods to score")
    length = len(series)
    usable = [
        period
        for period in unique
        if 1 <= period <= length and length // period >= min_repetitions
    ]
    if not usable:
        raise MiningError(
            f"no period in {unique} repeats >= {min_repetitions} times "
            f"in a series of length {length}"
        )

    usable_limit = {period: (length // period) * period for period in usable}
    counters: dict[int, Counter] = {period: Counter() for period in usable}
    base_counts: Counter = Counter()
    for index, slot in enumerate(series.iter_slots()):
        if not slot:
            continue
        for feature in slot:
            base_counts[feature] += 1
        for period in usable:
            if index >= usable_limit[period]:
                continue
            offset = index % period
            counter = counters[period]
            for feature in slot:
                counter[(offset, feature)] += 1

    base_rate = {
        feature: count / length for feature, count in base_counts.items()
    }
    scores = []
    for period in usable:
        num_periods = length // period
        threshold = min_count(min_conf, num_periods)
        score = 0.0
        best = 0.0
        frequent = 0
        for (offset, feature), count in counters[period].items():
            conf = count / num_periods
            best = max(best, conf)
            if count >= threshold:
                frequent += 1
                score += max(0.0, conf - base_rate[feature])
        scores.append(
            PeriodScore(
                period=period,
                frequent_letters=frequent,
                best_confidence=best,
                score=score / period,
            )
        )
    scores.sort(key=lambda item: (-item.score, item.period))
    return scores


def suggest_periods(
    series: FeatureSeries,
    low: int,
    high: int,
    min_conf: float = 0.5,
    limit: int = 5,
    min_repetitions: int = 2,
    harmonic_tolerance: float = 0.8,
) -> list[PeriodScore]:
    """Rank periods in ``[low, high]``, collapsing harmonic echoes.

    A multiple ``k*p`` of a true period ``p`` scores comparably to ``p``
    (its patterns simply repeat ``k`` times inside the longer window).  The
    harmonic filter drops a period when an already-kept divisor scores at
    least ``harmonic_tolerance`` times as high, so the fundamental period
    surfaces first.
    """
    scores = score_periods(
        series,
        period_range(low, high),
        min_conf=min_conf,
        min_repetitions=min_repetitions,
    )
    by_period = {item.period: item for item in scores}
    kept: list[PeriodScore] = []
    for item in scores:
        if item.score <= 0.0:
            continue
        dominated = False
        for index, other in enumerate(kept):
            if (
                item.period % other.period == 0
                and other.score >= harmonic_tolerance * item.score
            ):
                dominated = True
                break
            if (
                other.period % item.period == 0
                and item.score >= harmonic_tolerance * other.score
            ):
                # A multiple slipped in first on a scoring tie; the
                # fundamental replaces it.
                kept[index] = item
                dominated = True
                break
        if not dominated:
            kept.append(item)
        if len(kept) >= limit:
            break
    if not kept:
        # Nothing beat its base rate; return the raw top scores instead of
        # hiding everything.
        kept = [item for item in scores[:limit]]
    return [by_period[item.period] for item in kept]
