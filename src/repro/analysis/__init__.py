"""Analytical bounds, period discovery, significance, evolution, visuals."""

from repro.analysis.bounds import (
    ScanBudget,
    apriori_candidate_bound,
    hit_set_bound,
    hit_set_buffer_bound,
    tree_node_bound,
)
from repro.analysis.evolution import (
    PatternChange,
    Window,
    WindowDiff,
    diff_windows,
    evolution_report,
    mine_windows,
    track_pattern,
)
from repro.analysis.periodogram import PeriodScore, score_periods, suggest_periods
from repro.analysis.significance import (
    PatternSignificance,
    feature_base_rates,
    score_result,
    significant_patterns,
)
from repro.analysis.visualize import (
    confidence_heatmap,
    pattern_timeline,
    render_result,
)

__all__ = [
    "PatternChange",
    "PatternSignificance",
    "PeriodScore",
    "ScanBudget",
    "Window",
    "WindowDiff",
    "apriori_candidate_bound",
    "confidence_heatmap",
    "diff_windows",
    "evolution_report",
    "feature_base_rates",
    "hit_set_bound",
    "hit_set_buffer_bound",
    "mine_windows",
    "pattern_timeline",
    "render_result",
    "score_periods",
    "score_result",
    "significant_patterns",
    "suggest_periods",
    "track_pattern",
    "tree_node_bound",
]
