"""Statistical significance of partial periodic patterns.

A frequent pattern is only interesting if its confidence exceeds what the
feature base rates would produce by chance: a feature present in 80% of all
slots is "frequent" at almost any offset of almost any period.  This module
scores mined patterns against the independence null model:

* the **expected confidence** of a pattern is the product of its letters'
  feature base rates (features independent across slots and of the period
  phase);
* **lift** is observed confidence over expected confidence;
* a one-degree-of-freedom **chi-square** statistic on the match/no-match
  segment counts gives a p-value (via the exact ``erfc`` form — no SciPy
  needed).

These checks complement the confidence threshold: the paper's min_conf
bounds absolute regularity, lift bounds regularity *relative to chance*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult
from repro.timeseries.feature_series import FeatureSeries


def feature_base_rates(series: FeatureSeries) -> dict[str, float]:
    """Fraction of slots containing each feature (one pass)."""
    length = len(series)
    if length == 0:
        raise MiningError("cannot compute base rates of an empty series")
    counts: dict[str, int] = {}
    for slot in series.iter_slots():
        for feature in slot:
            counts[feature] = counts.get(feature, 0) + 1
    return {feature: count / length for feature, count in counts.items()}


def expected_confidence(
    pattern: Pattern, base_rates: dict[str, float]
) -> float:
    """Pattern confidence under the independence null model.

    Letters of features never seen in the series have base rate 0, making
    the expectation 0 (any observation is then infinitely surprising).
    """
    expectation = 1.0
    for _, feature in pattern.letters:
        expectation *= base_rates.get(feature, 0.0)
    return expectation


def chi_square_statistic(
    observed_count: int, expected_conf: float, num_periods: int
) -> float:
    """One-df chi-square of observed vs expected match counts.

    Compares the (match, no-match) split of the ``num_periods`` segments
    against the null expectation.  Degenerate expectations (0 or 1) return
    ``inf`` when the observation disagrees and 0 when it agrees.
    """
    if num_periods <= 0:
        raise MiningError(f"num_periods must be >= 1, got {num_periods}")
    if not 0 <= observed_count <= num_periods:
        raise MiningError(
            f"observed_count {observed_count} outside [0, {num_periods}]"
        )
    expected = expected_conf * num_periods
    if expected <= 0.0 or expected >= num_periods:
        return 0.0 if observed_count == round(expected) else math.inf
    missed = num_periods - observed_count
    expected_missed = num_periods - expected
    return (observed_count - expected) ** 2 / expected + (
        missed - expected_missed
    ) ** 2 / expected_missed


def chi_square_p_value(statistic: float) -> float:
    """p-value of a one-df chi-square statistic: ``erfc(sqrt(x/2))``."""
    if statistic < 0:
        raise MiningError(f"chi-square statistic must be >= 0, got {statistic}")
    if math.isinf(statistic):
        return 0.0
    return math.erfc(math.sqrt(statistic / 2.0))


@dataclass(frozen=True, slots=True)
class PatternSignificance:
    """Significance scores of one mined pattern."""

    pattern: Pattern
    confidence: float
    expected: float
    chi_square: float
    p_value: float

    @property
    def lift(self) -> float:
        """Observed over expected confidence (``inf`` for expected 0)."""
        if self.expected == 0.0:
            return math.inf if self.confidence > 0 else 0.0
        return self.confidence / self.expected


def score_result(
    series: FeatureSeries, result: MiningResult
) -> list[PatternSignificance]:
    """Score every frequent pattern of a mining result against the null.

    Sorted by ascending p-value (most significant first), ties broken by
    descending lift.
    """
    base_rates = feature_base_rates(series)
    scores = []
    for pattern, count in result.items():
        expected = expected_confidence(pattern, base_rates)
        statistic = chi_square_statistic(count, expected, result.num_periods)
        scores.append(
            PatternSignificance(
                pattern=pattern,
                confidence=count / result.num_periods,
                expected=expected,
                chi_square=statistic,
                p_value=chi_square_p_value(statistic),
            )
        )
    scores.sort(
        key=lambda item: (
            item.p_value,
            -(item.lift if math.isfinite(item.lift) else 1e18),
            str(item.pattern),
        )
    )
    return scores


def significant_patterns(
    series: FeatureSeries,
    result: MiningResult,
    max_p_value: float = 0.01,
    min_lift: float = 1.0,
) -> list[PatternSignificance]:
    """Frequent patterns that also beat the independence null.

    A pattern survives when its p-value is at most ``max_p_value`` AND its
    lift is at least ``min_lift`` — i.e. it is both statistically solid and
    actually *above* chance (a chi-square can also fire on patterns far
    below expectation).
    """
    if not 0.0 < max_p_value <= 1.0:
        raise MiningError(f"max_p_value must be in (0, 1], got {max_p_value}")
    if min_lift < 0:
        raise MiningError(f"min_lift must be >= 0, got {min_lift}")
    return [
        item
        for item in score_result(series, result)
        if item.p_value <= max_p_value and item.lift >= min_lift
    ]
