"""Pattern evolution across time windows.

Section 6 closes with "mining partial periodicity with perturbation and
*evolution*": real periodic behaviour drifts — patterns emerge, strengthen,
weaken and vanish over the lifetime of a series.  This module mines a
sliding window of whole periods and diffs the per-window frequent sets, so
a long series becomes a trajectory of pattern confidences instead of one
global average that smears the drift away.

All windows share one period and threshold.  The sweep runs on the
streaming engine (:mod:`repro.streaming`): windows are maintained
incrementally as segments enter and retire, with results exactly equal to
mining each window slice from scratch — the engine's headline invariant.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.counting import check_min_conf
from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult
from repro.timeseries.feature_series import FeatureSeries


@dataclass(slots=True)
class Window:
    """One mined window of the series."""

    #: Index of the window in the sweep (0-based).
    index: int
    #: First slot (inclusive) and last slot (exclusive) of the window.
    start_slot: int
    end_slot: int
    result: MiningResult

    def confidence(self, pattern: Pattern) -> float:
        """Confidence of a pattern in this window (0.0 if not frequent)."""
        count = self.result.get(pattern)
        return count / self.result.num_periods if count else 0.0


@dataclass(frozen=True, slots=True)
class PatternChange:
    """One pattern's confidence move between two windows."""

    pattern: Pattern
    before: float
    after: float

    @property
    def delta(self) -> float:
        """Signed confidence change."""
        return self.after - self.before


@dataclass(slots=True)
class WindowDiff:
    """The difference between two windows' frequent sets."""

    #: Frequent now but not before.
    emerged: list[Pattern] = field(default_factory=list)
    #: Frequent before but not now.
    vanished: list[Pattern] = field(default_factory=list)
    #: Frequent in both, confidence moved by more than the tolerance.
    strengthened: list[PatternChange] = field(default_factory=list)
    weakened: list[PatternChange] = field(default_factory=list)

    @property
    def is_stable(self) -> bool:
        """True when nothing emerged, vanished or moved."""
        return not (
            self.emerged or self.vanished or self.strengthened or self.weakened
        )


def mine_windows(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    window_periods: int,
    step_periods: int | None = None,
    max_letters: int | None = None,
) -> list[Window]:
    """Mine a sliding window of ``window_periods`` whole periods.

    Parameters
    ----------
    window_periods:
        Window width in whole periods (the per-window ``m``).
    step_periods:
        Stride between window starts, in periods; defaults to the window
        width (tumbling windows).
    max_letters:
        Optional derivation cap forwarded to the per-window miner.

    Returns
    -------
    list[Window]
        One entry per window position, in time order.  The trailing
        partial window (fewer than ``window_periods`` periods) is dropped,
        mirroring the whole-period counting rule.
    """
    check_min_conf(min_conf)
    if window_periods < 1:
        raise MiningError(
            f"window_periods must be >= 1, got {window_periods}"
        )
    if step_periods is None:
        step_periods = window_periods
    if step_periods < 1:
        raise MiningError(f"step_periods must be >= 1, got {step_periods}")
    total_periods = series.num_periods(period)
    if total_periods < window_periods:
        raise MiningError(
            f"series holds {total_periods} periods of {period}; "
            f"window of {window_periods} does not fit"
        )
    # The sweep rides the streaming engine: each window is maintained
    # incrementally (segments enter at the tail, retire at the head)
    # instead of re-mined from scratch, and the engine's exactness
    # invariant keeps the per-window results identical to the slice
    # mining this function used to do.  Imported lazily — the streaming
    # tier imports this module's diff types at module level.
    from repro.streaming.engine import StreamingMiner

    miner = StreamingMiner(
        period=period,
        window=window_periods * period,
        slide=step_periods * period,
        min_conf=min_conf,
        max_letters=max_letters,
    )
    return [
        Window(
            index=emitted.index,
            start_slot=emitted.start_slot,
            end_slot=emitted.end_slot,
            result=emitted.result,
        )
        for emitted in miner.extend(series)
    ]


def diff_results(
    before: MiningResult, after: MiningResult, tolerance: float = 0.05
) -> WindowDiff:
    """Diff two mining results' frequent sets (confidence-normalized).

    The window-free core of :func:`diff_windows`, shared with the
    streaming engine's per-window change emission.  ``tolerance`` is the
    minimum confidence move for a shared pattern to be reported as
    strengthened/weakened.
    """
    if tolerance < 0:
        raise MiningError(f"tolerance must be >= 0, got {tolerance}")

    def confidence(result: MiningResult, pattern: Pattern) -> float:
        count = result.get(pattern)
        return count / result.num_periods if count else 0.0

    diff = WindowDiff()
    before_set = set(before)
    after_set = set(after)
    diff.emerged = sorted(after_set - before_set)
    diff.vanished = sorted(before_set - after_set)
    for pattern in sorted(before_set & after_set):
        change = PatternChange(
            pattern=pattern,
            before=confidence(before, pattern),
            after=confidence(after, pattern),
        )
        if change.delta > tolerance:
            diff.strengthened.append(change)
        elif change.delta < -tolerance:
            diff.weakened.append(change)
    return diff


def diff_windows(
    before: Window, after: Window, tolerance: float = 0.05
) -> WindowDiff:
    """Diff two windows' frequent sets.

    ``tolerance`` is the minimum confidence move for a shared pattern to be
    reported as strengthened/weakened.
    """
    return diff_results(before.result, after.result, tolerance)


def track_pattern(
    windows: Sequence[Window], pattern: Pattern
) -> list[float]:
    """A pattern's confidence trajectory across the window sweep.

    Windows where the pattern is not frequent contribute 0.0 — by the
    threshold's design, "not frequent" and "confidence below min_conf" are
    the same statement.
    """
    return [window.confidence(pattern) for window in windows]


def evolution_report(
    windows: Sequence[Window], tolerance: float = 0.05
) -> Iterator[tuple[int, WindowDiff]]:
    """Yield ``(window_index, diff-vs-previous)`` for consecutive windows."""
    for previous, current in zip(windows, windows[1:]):
        yield current.index, diff_windows(previous, current, tolerance)
