"""Analytical space and scan bounds from the paper.

Implements the closed-form cost model stated in Sections 3 and 4 so that the
benchmarks can compare *measured* structure sizes against the paper's
*predicted* bounds:

* **Property 3.2** — the hit set is bounded by ``min(m, 2^|F1| - 1)``;
* the Apriori candidate-space bound ``sum_k C(|F1|, k)`` (Section 3.1.1);
* scan counts: 2 for hit-set (any number of periods when shared),
  ``1 + rounds`` for Apriori.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.core.errors import MiningError


def hit_set_bound(num_periods: int, f1_size: int) -> int:
    """Property 3.2: ``|HitSet| <= min(m, 2^|F1| - 1)``.

    >>> hit_set_bound(100, 500) == 100    # the paper's yearly example
    True
    >>> hit_set_bound(100, 8)             # the paper's weekly example
    100
    >>> hit_set_bound(5200, 8) == 2**8 - 1
    True
    """
    if num_periods < 0:
        raise MiningError(f"num_periods must be >= 0, got {num_periods}")
    if f1_size < 0:
        raise MiningError(f"f1_size must be >= 0, got {f1_size}")
    if f1_size >= num_periods.bit_length() + 64:
        # 2^f1 would be astronomically larger than m; avoid the bigint.
        return num_periods
    return min(num_periods, (1 << f1_size) - 1)


def hit_set_buffer_bound(num_periods: int, f1_size: int) -> int:
    """Maximal additional buffer (in count slots) for the hit-set method.

    The paper's phrasing after Property 3.2: ``min(m, 2^|F1| - 1)`` units on
    top of the ``|F1|`` units kept from Step 1.
    """
    return hit_set_bound(num_periods, f1_size) + f1_size


def apriori_candidate_bound(f1_size: int, max_level: int | None = None) -> int:
    """Worst-case total Apriori candidates: ``sum_{k>=2} C(|F1|, k)``.

    Level-1 candidates are the F1 letters themselves and are excluded, as
    in the paper's Step-2 space analysis.
    """
    if f1_size < 0:
        raise MiningError(f"f1_size must be >= 0, got {f1_size}")
    top = f1_size if max_level is None else min(max_level, f1_size)
    return sum(comb(f1_size, level) for level in range(2, top + 1))


def tree_node_bound(hit_set_size: int, cmax_letters: int) -> int:
    """Section 4 analysis: tree nodes are fewer than ``n_max * |HitSet|``.

    Every insertion creates at most ``n_max`` nodes (the missing-letter
    path), so the node count is bounded by the hit-set size times the
    letter count of ``C_max``.
    """
    if hit_set_size < 0 or cmax_letters < 0:
        raise MiningError("hit_set_size and cmax_letters must be >= 0")
    return hit_set_size * cmax_letters


@dataclass(frozen=True, slots=True)
class ScanBudget:
    """Predicted scan counts for one mining task (Sections 3.1-3.2)."""

    #: Single-period hit-set: scan for F1 + scan for hits.
    hitset_single: int = 2
    #: Shared multi-period hit-set: still two scans, for any period count.
    hitset_shared: int = 2

    @staticmethod
    def apriori_single(longest_pattern_letters: int) -> int:
        """Apriori scans: one for F1 plus one per further level reached.

        With the longest frequent pattern holding ``L`` letters, Apriori
        runs levels ``1..L`` plus one empty level-(L+1) probe when
        candidates exist — we report the paper's upper bound ``L + 1``
        capped below by 1.
        """
        if longest_pattern_letters < 0:
            raise MiningError("longest_pattern_letters must be >= 0")
        return max(1, longest_pattern_letters + 1)

    @staticmethod
    def looping_multi(period_count: int, per_period_scans: int = 2) -> int:
        """Algorithm 3.3 scans: per-period scans times the period count."""
        if period_count < 1:
            raise MiningError("period_count must be >= 1")
        return period_count * per_period_scans
