"""Windowed streaming mining over unbounded feeds, with exact retirement.

The streaming tier turns the batch hit-set miner into a window operator:

* :class:`~repro.streaming.windows.WindowSpec` — the window algebra
  (period-aligned slides, the exactness invariant);
* :class:`~repro.streaming.retirement.RetirementStrategy` — exact segment
  retirement, as in-place decrement (delta-maintained tree) or a ring of
  mergeable per-segment partials;
* :class:`~repro.streaming.buffer.ArrivalBuffer` — out-of-order event
  reordering under a bounded-lateness watermark, with late-event
  quarantine;
* :class:`~repro.streaming.engine.StreamingMiner` — the engine composing
  them, emitting per-window results plus pattern-change diffs.

The guarantee throughout: every emitted window equals batch-mining that
window's slice.  See ``docs/streaming.md``.
"""

from repro.streaming.buffer import (
    ArrivalBuffer,
    LateEvent,
    LateEventReport,
)
from repro.streaming.engine import StreamingMiner
from repro.streaming.retirement import (
    STRATEGIES,
    DecrementRetirement,
    RetirementStrategy,
    RingRetirement,
    make_strategy,
)
from repro.streaming.windows import (
    WindowResult,
    WindowSpec,
    window_to_dict,
)

__all__ = [
    "ArrivalBuffer",
    "DecrementRetirement",
    "LateEvent",
    "LateEventReport",
    "RetirementStrategy",
    "RingRetirement",
    "STRATEGIES",
    "StreamingMiner",
    "WindowResult",
    "WindowSpec",
    "make_strategy",
    "window_to_dict",
]
