"""Out-of-order arrival buffering with a bounded-lateness watermark.

Real event feeds are not slot-ordered: network skew and batching deliver
events late and out of order.  The buffer reorders them into slots under a
standard watermark contract: after seeing an event at time ``t``, the
stream promises no further event older than ``t - lateness``.  A slot
*seals* — becomes immutable and eligible for draining into the miner —
once the watermark passes its right edge; an event addressed to an
already-sealed slot is *quarantined* (dropped from the stream, recorded on
a :class:`LateEventReport`) rather than silently lost or, worse, silently
applied where it could no longer change the emitted windows.  The report
mirrors :class:`repro.timeseries.io.LoadReport`: a side channel the caller
surfaces, never an exception mid-stream.

Memory is bounded by the contract itself: at most
``ceil(lateness / slot_width) + 1`` slots can be open at once, because
anything older is sealed by the very watermark the newest event implies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.errors import StreamError

#: Late-event samples kept verbatim on a report (counters keep the rest).
MAX_LATE_SAMPLES = 20


@dataclass(frozen=True, slots=True)
class LateEvent:
    """One event that arrived after its slot had sealed."""

    time: float
    feature: str
    #: The watermark at arrival — how far past the deadline the event was.
    watermark: float

    def describe(self) -> str:
        """``t=...: feature (watermark ...)`` for logs and CLI warnings."""
        return (
            f"t={self.time:g}: {self.feature!r} arrived behind the "
            f"watermark ({self.watermark:g})"
        )


@dataclass(slots=True)
class LateEventReport:
    """Side-channel record of everything the buffer quarantined.

    Totals and per-feature counts are exact; only the first
    :data:`MAX_LATE_SAMPLES` offenders are kept verbatim, so the report
    stays bounded no matter how pathological the feed.
    """

    total: int = 0
    per_feature: Counter[str] = field(default_factory=Counter)
    samples: list[LateEvent] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined."""
        return not self.total

    def record(self, event: LateEvent) -> None:
        """Count one quarantined event (sample kept while under the cap)."""
        self.total += 1
        self.per_feature[event.feature] += 1
        if len(self.samples) < MAX_LATE_SAMPLES:
            self.samples.append(event)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary for the CLI change log and serve stats."""
        return {
            "total": self.total,
            "per_feature": dict(self.per_feature),
            "samples": [event.describe() for event in self.samples],
        }


class ArrivalBuffer:
    """Reorders a timed event feed into sealed slots for the miner.

    Parameters
    ----------
    slot_width:
        Duration of one slot; slot ``i`` covers
        ``[start + i * slot_width, start + (i + 1) * slot_width)``.
    start:
        Time origin of slot 0.
    lateness:
        The bounded-lateness allowance: an event may trail the newest
        event seen by up to this much and still land in its slot.  ``0``
        seals a slot the moment a newer slot's event arrives.
    report:
        Optional shared quarantine report; one is created if omitted.
    """

    __slots__ = ("_slot_width", "_start", "_lateness", "_open", "_sealed",
                 "_max_time", "report")

    def __init__(
        self,
        slot_width: float,
        start: float = 0.0,
        lateness: float = 0.0,
        report: LateEventReport | None = None,
    ):
        if slot_width <= 0:
            raise StreamError(f"slot_width must be > 0, got {slot_width}")
        if lateness < 0:
            raise StreamError(f"lateness must be >= 0, got {lateness}")
        self._slot_width = slot_width
        self._start = start
        self._lateness = lateness
        #: Open (unsealed) slots: index -> accumulating feature set.
        self._open: dict[int, set[str]] = {}
        #: Index of the next slot to seal; everything below is immutable.
        self._sealed = 0
        self._max_time: float | None = None
        self.report = report if report is not None else LateEventReport()

    @property
    def watermark(self) -> float | None:
        """No event older than this can still arrive (``None`` before any)."""
        if self._max_time is None:
            return None
        return self._max_time - self._lateness

    @property
    def open_slots(self) -> int:
        """Slots currently buffering events (bounded by the lateness)."""
        return len(self._open)

    @property
    def sealed_slots(self) -> int:
        """Slots already sealed and handed to :meth:`drain`."""
        return self._sealed

    def add(self, time: float, feature: str) -> bool:
        """Buffer one event; returns ``False`` when it was quarantined.

        Events from before the time origin, or addressed to a slot the
        watermark already sealed, go to the quarantine report — they can
        no longer change any emitted window, so applying them would break
        the exactness guarantee rather than improve the result.
        """
        if not feature:
            raise StreamError("event feature must be non-empty")
        if self._max_time is None or time > self._max_time:
            self._max_time = time
        index = int((time - self._start) // self._slot_width)
        if time < self._start or index < self._sealed:
            watermark = self.watermark
            self.report.record(
                LateEvent(
                    time=time,
                    feature=feature,
                    watermark=watermark if watermark is not None else time,
                )
            )
            return False
        self._open.setdefault(index, set()).add(feature)
        return True

    def drain(self) -> list[frozenset[str]]:
        """Seal and return every slot the watermark has passed, in order.

        Slots with no events come back as empty frozensets — gaps are real
        slots, exactly as in a loaded series.  Draining is the buffer's
        eviction path: sealed slots leave ``_open`` permanently.
        """
        watermark = self.watermark
        if watermark is None:
            return []
        upto = int((watermark - self._start) // self._slot_width)
        return self._seal_below(upto)

    def flush(self) -> list[frozenset[str]]:
        """Seal everything buffered (end of stream), in slot order."""
        if not self._open:
            return []
        return self._seal_below(max(self._open) + 1)

    def _seal_below(self, upto: int) -> list[frozenset[str]]:
        sealed: list[frozenset[str]] = []
        while self._sealed < upto:
            features = self._open.pop(self._sealed, None)
            sealed.append(
                frozenset() if features is None else frozenset(features)
            )
            self._sealed += 1
        return sealed

    # ------------------------------------------------------------------
    # Durable state (checkpoint/restore)
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, object]:
        """The JSON-ready durable form: geometry, open slots, quarantine."""
        return {
            "slot_width": self._slot_width,
            "start": self._start,
            "lateness": self._lateness,
            "open": sorted(
                [index, sorted(features)]
                for index, features in self._open.items()
            ),
            "sealed": self._sealed,
            "max_time": self._max_time,
            "report": {
                "total": self.report.total,
                "per_feature": dict(sorted(self.report.per_feature.items())),
                "samples": [
                    [event.time, event.feature, event.watermark]
                    for event in self.report.samples
                ],
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "ArrivalBuffer":
        """Rebuild a buffer from :meth:`to_state` output."""
        try:
            report_state = state["report"]
            report = LateEventReport(
                total=int(report_state["total"]),
                per_feature=Counter(
                    {
                        str(feature): int(count)
                        for feature, count in report_state[
                            "per_feature"
                        ].items()
                    }
                ),
                samples=[
                    LateEvent(
                        time=float(time),
                        feature=str(feature),
                        watermark=float(watermark),
                    )
                    for time, feature, watermark in report_state["samples"]
                ],
            )
            buffer = cls(
                slot_width=float(state["slot_width"]),
                start=float(state["start"]),
                lateness=float(state["lateness"]),
                report=report,
            )
            buffer._open = {
                int(index): {str(feature) for feature in features}
                for index, features in state["open"]
            }
            buffer._sealed = int(state["sealed"])
            max_time = state["max_time"]
            buffer._max_time = None if max_time is None else float(max_time)
        except (KeyError, TypeError, ValueError) as error:
            raise StreamError(
                f"malformed arrival-buffer state: {error}"
            ) from error
        return buffer

    def __repr__(self) -> str:
        return (
            f"ArrivalBuffer(slot_width={self._slot_width}, "
            f"sealed={self._sealed}, open={self.open_slots}, "
            f"quarantined={self.report.total})"
        )
