"""Exact segment retirement behind one strategy interface.

A sliding window advances by absorbing segments at the tail and *retiring*
them at the head, and the retired side must be exact — the headline
guarantee is that every window mines identically to a batch run on its
slice.  Two strategies implement the same contract with opposite cost
shapes:

``decrement``
    One running :class:`~repro.core.incremental.SegmentPartial` plus a
    ring of the signature masks :meth:`absorb` returned, in arrival
    order.  Retiring pops the oldest mask and subtracts it from the
    partial (:meth:`SegmentPartial.retire` is the exact inverse of
    ``absorb``).  The strategy also keeps the
    :class:`~repro.tree.max_subpattern_tree.MaxSubpatternTree` alive
    across windows: while the frequent-1 letter set is unchanged, each
    mining applies only the *delta* — ``insert_mask`` for segments that
    entered, ``remove_mask`` (count decrement with subtree pruning) for
    segments that left — instead of rebuilding from every retained
    signature.  Per-window work is proportional to what changed.

``ring``
    A deque of single-segment partials sharing one vocabulary.  Retiring
    drops the head partial; mining folds the survivors into a fresh
    partial via the existing :meth:`SegmentPartial.merge` (same-vocab
    merges are plain counter addition).  Nothing is ever mutated in
    place, which makes the strategy the robust oracle the equivalence
    suite holds ``decrement`` against — at O(window) fold cost per
    emission.

Both retire *whole segments by count*: the engine owns window geometry and
only ever says "the oldest ``n`` segments left".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.errors import StreamError
from repro.core.incremental import SegmentPartial
from repro.core.pattern import Letter
from repro.core.result import MiningResult
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.tree.max_subpattern_tree import MaxSubpatternTree

#: The registered strategy names, in preference order.
STRATEGIES = ("decrement", "ring")


class RetirementStrategy(ABC):
    """The window-maintenance contract the streaming engine composes.

    Segments enter via :meth:`absorb` in stream order and leave oldest
    first via :meth:`retire`; :meth:`mine` must at every point equal
    batch-mining exactly the currently retained segments.
    """

    #: Registered name (the CLI/serve selector).
    name: str

    @property
    @abstractmethod
    def retained(self) -> int:
        """Whole segments currently held (absorbed minus retired)."""

    @abstractmethod
    def absorb(self, segment: Sequence[frozenset[str]]) -> None:
        """Take one whole segment into the window."""

    @abstractmethod
    def retire(self, count: int) -> None:
        """Drop the oldest ``count`` segments, exactly."""

    @abstractmethod
    def mine(
        self,
        min_conf: float,
        max_letters: int | None = None,
        kernel: str = "batched",
    ) -> MiningResult:
        """Frequent patterns of exactly the retained segments.

        ``kernel`` selects the derivation kernel of the per-window mine
        (see :meth:`repro.core.incremental.SegmentPartial.mine`); results
        are identical across kernels.
        """

    def _check_retire(self, count: int) -> None:
        if count < 0:
            raise StreamError(f"retire count must be >= 0, got {count}")
        if count > self.retained:
            raise StreamError(
                f"cannot retire {count} segments: only "
                f"{self.retained} retained"
            )

    @abstractmethod
    def to_state(self) -> dict[str, Any]:
        """The JSON-ready durable form of the strategy's exact state.

        Only the *retained-set* state is persisted; derived acceleration
        structures (the decrement strategy's persistent tree and its
        delta ledger) are deliberately dropped — they are a pure function
        of the retained state and are rebuilt on the first mine after
        restore, so a restored strategy mines identically by
        construction.
        """

    @abstractmethod
    def restore(self, state: Mapping[str, Any]) -> None:
        """Load :meth:`to_state` output into this (fresh) strategy."""


class DecrementRetirement(RetirementStrategy):
    """Running partial + mask ring + persistent delta-maintained tree."""

    name = "decrement"

    __slots__ = ("_partial", "_ring", "_added", "_removed", "_tree",
                 "_tree_f1")

    def __init__(self, period: int):
        self._partial = SegmentPartial(period)
        #: Signature masks of the retained segments, oldest first — the
        #: exact retirement ledger (drained head-first by retire()).
        self._ring: deque[int] = deque()
        #: Masks absorbed / retired since the tree was last brought
        #: current, in order (cleared on every mine()).
        self._added: list[int] = []
        self._removed: list[int] = []
        self._tree: MaxSubpatternTree | None = None
        self._tree_f1: frozenset[Letter] | None = None

    @property
    def retained(self) -> int:
        return self._partial.num_periods

    def absorb(self, segment: Sequence[frozenset[str]]) -> None:
        mask = self._partial.absorb(segment)
        self._ring.append(mask)
        self._added.append(mask)

    def retire(self, count: int) -> None:
        self._check_retire(count)
        for _ in range(count):
            mask = self._ring.popleft()
            self._partial.retire(mask)
            self._removed.append(mask)

    def mine(
        self,
        min_conf: float,
        max_letters: int | None = None,
        kernel: str = "batched",
    ) -> MiningResult:
        f1, _ = self._partial.frequent_one(min_conf)
        f1_letters = frozenset(f1)
        tree = self._tree
        if not f1:
            tree = None
        elif tree is not None and f1_letters == self._tree_f1:
            # C_max is unchanged, so every stored hit's projection is
            # unchanged too: bring the tree current by replaying only the
            # segments that entered or left since the last emission.
            # Inserts go first so a mask that both entered and would later
            # leave never dips a node below zero.
            table = self._partial.vocab.remap_table(tree.vocab)
            for mask in self._added:
                hit = remap_mask(mask, table)
                if hit & (hit - 1):
                    tree.insert_mask(hit)
            for mask in self._removed:
                hit = remap_mask(mask, table)
                if hit & (hit - 1):
                    tree.remove_mask(hit)
        else:
            # F1 moved: the projection of every signature changes, so the
            # delta ledger is useless — rebuild from the retained state.
            tree = self._partial.build_tree(f1)
        self._added.clear()
        self._removed.clear()
        self._tree = tree
        self._tree_f1 = f1_letters if f1 else None
        return self._partial.mine(
            min_conf,
            max_letters=max_letters,
            algorithm="streaming-decrement",
            tree=tree,
            kernel=kernel,
        )

    def to_state(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "partial": self._partial.to_state(),
            "ring": list(self._ring),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        partial = SegmentPartial.from_state(state["partial"])
        if partial.period != self._partial.period:
            raise StreamError(
                f"checkpointed strategy has period {partial.period}, "
                f"stream wants {self._partial.period}"
            )
        self._partial = partial
        self._ring = deque(int(mask) for mask in state["ring"])
        if len(self._ring) != partial.num_periods:
            raise StreamError(
                f"checkpointed decrement state is inconsistent: "
                f"{len(self._ring)} ring masks for "
                f"{partial.num_periods} retained segments"
            )
        # The tree and its delta ledger are derived state: the next
        # mine() rebuilds from the restored partial, which is exact.
        self._added.clear()
        self._removed.clear()
        self._tree = None
        self._tree_f1 = None


class RingRetirement(RetirementStrategy):
    """Per-segment mergeable partials; retirement is dropping the head."""

    name = "ring"

    __slots__ = ("_period", "_vocab", "_ring")

    def __init__(self, period: int):
        self._period = period
        #: One vocabulary shared by every per-segment partial, so the
        #: emission fold merges by plain counter addition (no remapping).
        self._vocab = LetterVocabulary(period=period)
        self._ring: deque[SegmentPartial] = deque()

    @property
    def retained(self) -> int:
        return len(self._ring)

    def absorb(self, segment: Sequence[frozenset[str]]) -> None:
        partial = SegmentPartial(self._period, vocab=self._vocab)
        partial.absorb(segment)
        self._ring.append(partial)

    def retire(self, count: int) -> None:
        self._check_retire(count)
        for _ in range(count):
            self._ring.popleft()

    def mine(
        self,
        min_conf: float,
        max_letters: int | None = None,
        kernel: str = "batched",
    ) -> MiningResult:
        folded = SegmentPartial(self._period, vocab=self._vocab)
        for partial in self._ring:
            folded.merge(partial)
        return folded.mine(
            min_conf,
            max_letters=max_letters,
            algorithm="streaming-ring",
            kernel=kernel,
        )

    def to_state(self) -> dict[str, Any]:
        # One shared vocabulary, serialized once; per-segment partials
        # store only their counters, with masks over the shared letters.
        return {
            "name": self.name,
            "letters": [
                [offset, feature] for offset, feature in self._vocab
            ],
            "partials": [
                partial.to_state(include_vocab=False)
                for partial in self._ring
            ],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        vocab = LetterVocabulary(
            (
                (int(offset), str(feature))
                for offset, feature in state["letters"]
            ),
            period=self._period,
        )
        self._vocab = vocab
        self._ring = deque(
            SegmentPartial.from_state(partial_state, vocab=vocab)
            for partial_state in state["partials"]
        )


def make_strategy(name: str, period: int) -> RetirementStrategy:
    """Instantiate a registered retirement strategy by name."""
    if name == "decrement":
        return DecrementRetirement(period)
    if name == "ring":
        return RingRetirement(period)
    raise StreamError(
        f"unknown retirement strategy {name!r}; choose from "
        + ", ".join(STRATEGIES)
    )
