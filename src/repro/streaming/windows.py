"""Window geometry and per-window emission records.

A :class:`WindowSpec` fixes the stream's window algebra once, up front:
window ``w`` covers slots ``[w * slide, w * slide + size)``.  ``slide``
must be a multiple of the period so every window starts on a segment
boundary — the invariant that makes streaming results *byte-identical* to
batch-mining the window's slice (window starts stay aligned with the
global segmentation, so both sides see the same whole segments and drop
the same ``size % period`` trailing slots).  ``size`` itself is free: a
window the period does not divide simply excludes its partial trailing
segment, exactly as :func:`repro.core.hitset.mine_single_period_hitset`
does on the equivalent slice.

:class:`WindowResult` is what the engine emits per window: the exact
mining result plus the :class:`~repro.analysis.evolution.WindowDiff`
against the previously emitted window (patterns born, died, or moved in
confidence) — the change feed that is the product of streaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.evolution import WindowDiff
from repro.core.counting import check_min_conf
from repro.core.errors import StreamError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult


@dataclass(frozen=True, slots=True)
class WindowSpec:
    """The window algebra of one stream: period, window size, slide.

    All three are slot counts.  ``slide`` defaults to ``size`` (tumbling
    windows); ``slide > size`` leaves gaps whose segments are never mined,
    ``slide < size`` overlaps windows.
    """

    period: int
    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.period < 1:
            raise StreamError(f"period must be >= 1, got {self.period}")
        if self.size < self.period:
            raise StreamError(
                f"window of {self.size} slots holds no whole period "
                f"of {self.period}"
            )
        if self.slide < 1:
            raise StreamError(f"slide must be >= 1, got {self.slide}")
        if self.slide % self.period:
            raise StreamError(
                f"slide {self.slide} must be a multiple of the period "
                f"{self.period} so windows start on segment boundaries "
                "(the exactness invariant)"
            )

    @property
    def segments_per_window(self) -> int:
        """Whole segments mined per window (``size // period``)."""
        return self.size // self.period

    def start_slot(self, index: int) -> int:
        """First slot (inclusive) of window ``index``."""
        return index * self.slide

    def end_slot(self, index: int) -> int:
        """Last slot (exclusive) of window ``index``."""
        return index * self.slide + self.size

    def start_segment(self, index: int) -> int:
        """Global index of window ``index``'s first whole segment."""
        return index * self.slide // self.period

    def emit_at(self, index: int) -> int:
        """Total slots that must have streamed for window ``index`` to close."""
        return index * self.slide + self.size


@dataclass(frozen=True, slots=True)
class WindowResult:
    """One emitted window: its exact patterns and the change feed.

    ``result`` is guaranteed equal (counts and ``num_periods``) to
    batch-mining ``series[start_slot:end_slot]`` — the engine's headline
    invariant, pinned by the randomized equivalence suite.
    """

    #: Index of the window in the stream (0-based).
    index: int
    #: First slot (inclusive) and last slot (exclusive) of the window.
    start_slot: int
    end_slot: int
    result: MiningResult
    #: Diff against the previously emitted window; ``None`` for the first.
    changes: WindowDiff | None

    def confidence(self, pattern: Pattern) -> float:
        """Confidence of a pattern in this window (0.0 if not frequent)."""
        count = self.result.get(pattern)
        return count / self.result.num_periods if count else 0.0

    @property
    def is_first(self) -> bool:
        """True for the stream's first emitted window (no diff basis)."""
        return self.changes is None


def window_to_dict(window: WindowResult) -> dict[str, Any]:
    """JSON-ready form of one emitted window (CLI change log, serve API)."""
    result = window.result
    payload: dict[str, Any] = {
        "index": window.index,
        "start_slot": window.start_slot,
        "end_slot": window.end_slot,
        "num_periods": result.num_periods,
        "patterns": [
            {
                "pattern": str(pattern),
                "count": count,
                "confidence": round(count / result.num_periods, 6),
            }
            for pattern, count in sorted(result.items())
        ],
    }
    changes = window.changes
    if changes is None:
        payload["changes"] = None
    else:
        payload["changes"] = {
            "emerged": [str(p) for p in changes.emerged],
            "vanished": [str(p) for p in changes.vanished],
            "strengthened": [
                {
                    "pattern": str(c.pattern),
                    "before": round(c.before, 6),
                    "after": round(c.after, 6),
                }
                for c in changes.strengthened
            ],
            "weakened": [
                {
                    "pattern": str(c.pattern),
                    "before": round(c.before, 6),
                    "after": round(c.after, 6),
                }
                for c in changes.weakened
            ],
            "stable": changes.is_stable,
        }
    return payload


def check_stream_params(min_conf: float, change_tolerance: float) -> None:
    """Validate the engine's non-geometry parameters in one place."""
    check_min_conf(min_conf)
    if change_tolerance < 0:
        raise StreamError(
            f"change_tolerance must be >= 0, got {change_tolerance}"
        )
