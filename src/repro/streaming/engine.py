"""The windowed streaming miner over an unbounded slot feed.

:class:`StreamingMiner` turns the batch hit-set algorithm into a stream
operator: slots go in one at a time, and whenever a window closes it emits
a :class:`~repro.streaming.windows.WindowResult` whose patterns are
*exactly* what batch-mining that window's slice would produce — the
equivalence the randomized suite pins for both retirement strategies.

State is bounded by the window, never by the stream: the engine holds the
current partial segment (< period slots), one retirement strategy whose
retained set is at most ``ceil(size / period)`` segments, and the previous
window's result for change detection.  Nothing else accumulates — the
REP901 devtools rule audits exactly this property over the package.

The slot path does three things per slot: buffer it into the pending
segment, hand a completed segment to the strategy (unless the segment
falls in a slide gap no window will ever mine), and close a window when
``spec.emit_at`` is reached — at most one window per slot, because the
slide is at least one period.  Retirement happens eagerly at emission:
segments that no future window needs are retired before the next slot
arrives, so peak retained state is one window's worth.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.analysis.evolution import diff_results
from repro.core.errors import StreamError
from repro.core.result import MiningResult
from repro.core.serialize import result_from_dict, result_to_dict
from repro.streaming.retirement import RetirementStrategy, make_strategy
from repro.streaming.windows import (
    WindowResult,
    WindowSpec,
    check_stream_params,
    window_to_dict,
)
from repro.timeseries.feature_series import (
    FeatureSeries,
    SlotLike,
    _normalize_slot,
)


class StreamingMiner:
    """Exact windowed mining over an endless slot feed.

    Parameters
    ----------
    period:
        The mined period, in slots.
    window:
        Window size in slots (>= period; need not be a multiple — the
        trailing partial segment of each window is excluded, exactly as
        batch mining excludes it from the equivalent slice).
    slide:
        Stride between window starts in slots; must be a multiple of
        ``period`` (the exactness invariant) and defaults to ``window``
        (tumbling windows).
    min_conf:
        Confidence threshold applied to every window.
    retirement:
        Strategy name — ``"decrement"`` (delta-maintained, fast) or
        ``"ring"`` (fold-on-emit, the robust oracle).  See
        :mod:`repro.streaming.retirement`.
    max_letters:
        Optional derivation cap forwarded to every window's miner.
    change_tolerance:
        Minimum confidence move for a shared pattern to be reported as
        strengthened/weakened in the per-window change feed.
    kernel:
        Counting kernel forwarded to every window's miner
        (``"columnar"`` / ``"batched"`` / ``"legacy"``); the window
        partials are scan-free counters either way, so the kernel selects
        only the derivation pass.  Results are identical across kernels.

    Examples
    --------
    >>> miner = StreamingMiner(period=2, window=4, min_conf=0.75)
    >>> [w.index for w in miner.extend("abab" "abac")]
    [0, 1]
    """

    __slots__ = (
        "_spec",
        "_min_conf",
        "_max_letters",
        "_tolerance",
        "_kernel",
        "_strategy",
        "_pending",
        "_slots_seen",
        "_next_segment",
        "_retained_low",
        "_windows_emitted",
        "_last_result",
    )

    def __init__(
        self,
        period: int,
        window: int,
        slide: int | None = None,
        min_conf: float = 0.5,
        retirement: str = "decrement",
        max_letters: int | None = None,
        change_tolerance: float = 0.05,
        kernel: str = "batched",
    ):
        self._spec = WindowSpec(
            period=period,
            size=window,
            slide=window if slide is None else slide,
        )
        check_stream_params(min_conf, change_tolerance)
        from repro.kernels import KERNELS

        if kernel not in KERNELS:
            raise StreamError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        self._min_conf = min_conf
        self._max_letters = max_letters
        self._tolerance = change_tolerance
        self._kernel = kernel
        self._strategy = make_strategy(retirement, period)
        #: Slots of the currently-incomplete segment (< period of them).
        self._pending: list[frozenset[str]] = []
        self._slots_seen = 0
        #: Global index of the next segment the feed will complete.
        self._next_segment = 0
        #: Global index of the oldest segment any future window needs;
        #: completed segments below it fall in a slide gap and are
        #: dropped without ever entering the strategy.
        self._retained_low = 0
        self._windows_emitted = 0
        self._last_result: MiningResult | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def spec(self) -> WindowSpec:
        """The stream's window algebra."""
        return self._spec

    @property
    def strategy(self) -> RetirementStrategy:
        """The retirement strategy maintaining the retained segments."""
        return self._strategy

    @property
    def slots_seen(self) -> int:
        """Total slots fed so far."""
        return self._slots_seen

    @property
    def windows_emitted(self) -> int:
        """Windows closed and emitted so far."""
        return self._windows_emitted

    @property
    def retained_segments(self) -> int:
        """Whole segments currently held for future windows."""
        return self._strategy.retained

    @property
    def last_result(self) -> MiningResult | None:
        """The most recently emitted window's result (change-feed basis)."""
        return self._last_result

    # ------------------------------------------------------------------
    # The slot path
    # ------------------------------------------------------------------

    def append(self, slot: SlotLike) -> WindowResult | None:
        """Feed one slot; returns the window it closed, if any."""
        self._pending.append(_normalize_slot(slot))
        self._slots_seen += 1
        if len(self._pending) == self._spec.period:
            if self._next_segment >= self._retained_low:
                self._strategy.absorb(tuple(self._pending))
            self._next_segment += 1
            self._pending.clear()
        if self._slots_seen == self._spec.emit_at(self._windows_emitted):
            return self._emit()
        return None

    def extend(
        self, slots: Iterable[SlotLike] | str | FeatureSeries
    ) -> list[WindowResult]:
        """Feed many slots; returns every window they closed, in order."""
        if isinstance(slots, str):
            slots = FeatureSeries.from_symbols(slots)
        emitted = []
        for slot in slots:
            window = self.append(slot)
            if window is not None:
                emitted.append(window)
        return emitted

    def _emit(self) -> WindowResult:
        """Close the current window: mine, diff, retire what aged out."""
        spec = self._spec
        index = self._windows_emitted
        result = self._strategy.mine(
            self._min_conf,
            max_letters=self._max_letters,
            kernel=self._kernel,
        )
        changes = (
            None
            if self._last_result is None
            else diff_results(self._last_result, result, self._tolerance)
        )
        window = WindowResult(
            index=index,
            start_slot=spec.start_slot(index),
            end_slot=spec.end_slot(index),
            result=result,
            changes=changes,
        )
        self._last_result = result
        self._windows_emitted += 1
        # Retire eagerly: everything older than the next window's first
        # segment has served its last window.  With a slide past the
        # window size the next start may even exceed what has streamed —
        # then every retained segment retires and the gap's segments are
        # later skipped at absorb time by the _retained_low check.
        new_low = spec.start_segment(self._windows_emitted)
        retire_n = min(self._next_segment, new_low) - self._retained_low
        if retire_n > 0:
            self._strategy.retire(retire_n)
        self._retained_low = max(self._retained_low, new_low)
        return window

    # ------------------------------------------------------------------
    # Durable state (checkpoint/restore)
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        """The complete JSON-ready durable form of this miner.

        Everything the slot path reads is captured: window geometry and
        thresholds, the retirement strategy's retained-set state, the
        pending partial segment, the stream cursors, and the previously
        emitted result (the change-feed basis — without it the first
        window after a resume would mis-report its diff).  A miner built
        by :meth:`from_state` emits, slot for slot, exactly what this
        miner would have emitted.
        """
        return {
            "period": self._spec.period,
            "window": self._spec.size,
            "slide": self._spec.slide,
            "min_conf": self._min_conf,
            "max_letters": self._max_letters,
            "change_tolerance": self._tolerance,
            "kernel": self._kernel,
            "strategy": self._strategy.to_state(),
            "pending": [sorted(slot) for slot in self._pending],
            "slots_seen": self._slots_seen,
            "next_segment": self._next_segment,
            "retained_low": self._retained_low,
            "windows_emitted": self._windows_emitted,
            "last_result": (
                None
                if self._last_result is None
                else result_to_dict(self._last_result)
            ),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamingMiner":
        """Rebuild a miner from :meth:`to_state` output."""
        try:
            miner = cls(
                period=int(state["period"]),
                window=int(state["window"]),
                slide=int(state["slide"]),
                min_conf=float(state["min_conf"]),
                retirement=str(state["strategy"]["name"]),
                max_letters=(
                    None
                    if state["max_letters"] is None
                    else int(state["max_letters"])
                ),
                change_tolerance=float(state["change_tolerance"]),
                # Checkpoints written before the columnar tier carry no
                # kernel field; they resume on the default.
                kernel=str(state.get("kernel", "batched")),
            )
            miner._strategy.restore(state["strategy"])
            miner._pending = [
                frozenset(str(feature) for feature in slot)
                for slot in state["pending"]
            ]
            miner._slots_seen = int(state["slots_seen"])
            miner._next_segment = int(state["next_segment"])
            miner._retained_low = int(state["retained_low"])
            miner._windows_emitted = int(state["windows_emitted"])
            last_result = state["last_result"]
            miner._last_result = (
                None
                if last_result is None
                else result_from_dict(last_result)
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StreamError(
                f"malformed streaming-miner state: {error}"
            ) from error
        return miner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready live state for ``/stats`` and the CLI summary."""
        spec = self._spec
        return {
            "period": spec.period,
            "window": spec.size,
            "slide": spec.slide,
            "strategy": self._strategy.name,
            "min_conf": self._min_conf,
            "kernel": self._kernel,
            "slots_seen": self._slots_seen,
            "windows_emitted": self._windows_emitted,
            "retained_segments": self.retained_segments,
            "last_window": (
                None
                if self._last_result is None
                else {
                    "num_periods": self._last_result.num_periods,
                    "patterns": len(self._last_result),
                }
            ),
        }

    def __repr__(self) -> str:
        spec = self._spec
        return (
            f"StreamingMiner(period={spec.period}, window={spec.size}, "
            f"slide={spec.slide}, strategy={self._strategy.name!r}, "
            f"slots={self._slots_seen}, windows={self._windows_emitted})"
        )


__all__ = [
    "StreamingMiner",
    "WindowResult",
    "WindowSpec",
    "window_to_dict",
]
