"""FFT full-periodicity detection — the method the paper rules out.

Section 1: "FFT (Fast Fourier Transformation) cannot be applied to mining
partial periodicity because it treats the time-series as an inseparable
flow of values."  To make that argument concrete (and testable) we
implement the FFT approach honestly:

* each feature becomes a 0/1 indicator vector over the slots;
* the power spectrum of the indicator ranks candidate periods
  (:func:`fft_period_scores`, :func:`detect_dominant_period`).

What the FFT *can* do: point at a dominant period when a feature's
occurrences carry strong spectral mass.  What it structurally cannot do —
and what the benchmarks demonstrate — is return offset-level patterns with
confidences, distinguish which offsets participate, or handle patterns
spread across several features; those need the mining algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import MiningError
from repro.timeseries.feature_series import FeatureSeries


def indicator_vector(series: FeatureSeries, feature: str) -> np.ndarray:
    """The 0/1 per-slot occurrence vector of one feature."""
    return np.fromiter(
        (1.0 if feature in slot else 0.0 for slot in series.iter_slots()),
        dtype=np.float64,
        count=len(series),
    )


@dataclass(frozen=True, slots=True)
class FFTPeriodScore:
    """Spectral evidence for one integer period."""

    period: int
    power: float


def fft_period_scores(
    series: FeatureSeries,
    feature: str,
    min_period: int = 2,
    max_period: int | None = None,
) -> list[FFTPeriodScore]:
    """Rank integer periods by spectral power at their fundamental bin.

    The mean is removed first (the DC component is occupancy, not
    periodicity).  A candidate period ``p`` is scored by the power at its
    fundamental frequency bin ``k = round(N/p)``, provided the bin
    actually resolves the period (``|N/k - p| <= 0.5``) — the honest form
    of the FFT approach: a pulse train of period ``p`` concentrates its
    power at the multiples of that bin, and scoring the fundamental avoids
    crediting short periods with the true period's harmonics.

    Periods near ``N`` share bins (finite spectral resolution) and periods
    the bin grid cannot resolve are skipped — limitations inherent to the
    method, which the mining algorithms do not share.  Sorted by
    descending power.
    """
    length = len(series)
    if length < 4:
        raise MiningError("need at least 4 slots for spectral analysis")
    if max_period is None:
        max_period = length // 2
    if not 2 <= min_period <= max_period:
        raise MiningError(
            f"period range [{min_period}, {max_period}] is invalid"
        )
    signal = indicator_vector(series, feature)
    signal = signal - signal.mean()
    spectrum = np.abs(np.fft.rfft(signal)) ** 2
    scores = []
    for period in range(min_period, max_period + 1):
        bin_index = round(length / period)
        if not 1 <= bin_index < len(spectrum):
            continue
        if abs(length / bin_index - period) > 0.5:
            continue  # the bin grid cannot resolve this period
        scores.append(
            FFTPeriodScore(period=period, power=float(spectrum[bin_index]))
        )
    scores.sort(key=lambda item: (-item.power, item.period))
    return scores


def detect_dominant_period(
    series: FeatureSeries,
    feature: str,
    min_period: int = 2,
    max_period: int | None = None,
) -> int:
    """The single strongest integer period of one feature's indicator."""
    scores = fft_period_scores(series, feature, min_period, max_period)
    if not scores:
        raise MiningError("no period in range received any spectral mass")
    return scores[0].period
