"""The specified-pattern baseline from the paper's introduction.

Section 1: "Some periodicity detection methods can detect some partial
periodic patterns, but only if the period, and the length and timing of the
segment in the partial patterns with specific behavior are explicitly
specified ...  A naive adaptation of such methods to our partial periodic
pattern mining problem would be prohibitively expensive, requiring their
application to a huge number of possible combinations of the three
parameters of length, timing, and period."

This module implements that baseline faithfully:

* :func:`verify_specified` — the cheap primitive those methods provide:
  confirm/refute ONE fully specified hypothesis (period + offsets +
  features) in a single scan;
* :func:`enumerate_hypotheses` / :func:`naive_hypothesis_count` — the
  combinatorial space the naive adaptation must sweep, quantifying the
  intro's "huge number of possible combinations";
* :func:`mine_by_enumeration` — the naive adaptation itself (restricted to
  contiguous single-feature segments, the shape those detection methods
  handle), used by the comparison benchmark.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.core.counting import check_min_conf, min_count
from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class SpecifiedCheck:
    """Outcome of verifying one fully specified hypothesis."""

    pattern: Pattern
    count: int
    num_periods: int

    @property
    def confidence(self) -> float:
        """``count / num_periods``."""
        return self.count / self.num_periods


def verify_specified(series: FeatureSeries, pattern: Pattern) -> SpecifiedCheck:
    """Verify one fully specified pattern in a single scan.

    This is the primitive the paper grants the prior methods: given the
    period, the timing (offsets) and the behaviour (features), confirm or
    refute it.
    """
    num_periods = series.num_periods(pattern.period)
    count = sum(
        1 for segment in series.segments(pattern.period) if pattern.matches(segment)
    )
    return SpecifiedCheck(pattern=pattern, count=count, num_periods=num_periods)


def enumerate_hypotheses(
    alphabet: Sequence[str],
    periods: Sequence[int],
    max_segment_length: int,
) -> Iterator[Pattern]:
    """All (period, timing, length, behaviour) combinations.

    The naive adaptation's hypothesis space, restricted to the contiguous
    single-feature-per-slot segments classic detection methods handle: for
    every period ``p``, every start offset, every segment length
    ``1..max_segment_length`` (within the period) and every feature
    assignment to the segment's slots.
    """
    if max_segment_length < 1:
        raise MiningError(
            f"max_segment_length must be >= 1, got {max_segment_length}"
        )
    features = sorted(set(alphabet))
    if not features:
        raise MiningError("cannot enumerate over an empty alphabet")
    for period in sorted(set(periods)):
        if period < 1:
            raise MiningError(f"period must be >= 1, got {period}")
        for length in range(1, min(max_segment_length, period) + 1):
            for start in range(period - length + 1):
                yield from _assignments(period, start, length, features)


def _assignments(
    period: int, start: int, length: int, features: Sequence[str]
) -> Iterator[Pattern]:
    """Every feature assignment to the contiguous window ``[start, start+length)``."""
    total = len(features) ** length
    for code in range(total):
        letters = []
        remaining = code
        for position in range(length):
            remaining, choice = divmod(remaining, len(features))
            letters.append((start + position, features[choice]))
        yield Pattern.from_letters(period, letters)


def naive_hypothesis_count(
    alphabet_size: int,
    periods: Sequence[int],
    max_segment_length: int,
) -> int:
    """Closed-form size of :func:`enumerate_hypotheses`'s space.

    ``Σ_p Σ_{l=1..L} (p - l + 1) · |A|^l`` — the "huge number" of the
    introduction, without materializing it.
    """
    if alphabet_size < 1:
        raise MiningError(f"alphabet_size must be >= 1, got {alphabet_size}")
    total = 0
    for period in set(periods):
        for length in range(1, min(max_segment_length, period) + 1):
            total += (period - length + 1) * alphabet_size**length
    return total


def mine_by_enumeration(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    max_segment_length: int,
    max_hypotheses: int = 2_000_000,
) -> tuple[dict[Pattern, int], int]:
    """The naive adaptation: verify every hypothesis one at a time.

    Returns ``(frequent contiguous patterns with counts, hypotheses
    checked)``.  Each verification is its own scan in the prior methods'
    model; the benchmark charges it accordingly.  ``max_hypotheses`` guards
    against accidentally materializing an astronomically large space.
    """
    check_min_conf(min_conf)
    alphabet = sorted(series.alphabet)
    space = naive_hypothesis_count(len(alphabet), [period], max_segment_length)
    if space > max_hypotheses:
        raise MiningError(
            f"naive enumeration would check {space} hypotheses "
            f"(limit {max_hypotheses}); this is the intro's point"
        )
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    threshold = min_count(min_conf, num_periods)
    frequent: dict[Pattern, int] = {}
    checked = 0
    for hypothesis in enumerate_hypotheses(
        alphabet, [period], max_segment_length
    ):
        checked += 1
        outcome = verify_specified(series, hypothesis)
        if outcome.count >= threshold:
            frequent[hypothesis] = outcome.count
    return frequent, checked


def log10_hypothesis_count(
    alphabet_size: int, periods: Sequence[int], max_segment_length: int
) -> float:
    """``log10`` of the hypothesis space, for readable reporting."""
    return math.log10(
        max(1, naive_hypothesis_count(alphabet_size, periods, max_segment_length))
    )
