"""Baselines the paper positions itself against (Section 1).

* :mod:`repro.baselines.specified` — the specified-pattern verification
  primitive and its naive enumeration adaptation;
* :mod:`repro.baselines.fft` — FFT full-periodicity detection on feature
  indicator vectors.
"""

from repro.baselines.fft import (
    FFTPeriodScore,
    detect_dominant_period,
    fft_period_scores,
    indicator_vector,
)
from repro.baselines.specified import (
    SpecifiedCheck,
    enumerate_hypotheses,
    log10_hypothesis_count,
    mine_by_enumeration,
    naive_hypothesis_count,
    verify_specified,
)

__all__ = [
    "FFTPeriodScore",
    "SpecifiedCheck",
    "detect_dominant_period",
    "enumerate_hypotheses",
    "fft_period_scores",
    "indicator_vector",
    "log10_hypothesis_count",
    "mine_by_enumeration",
    "naive_hypothesis_count",
    "verify_specified",
]
