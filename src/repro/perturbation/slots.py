"""Perturbation-tolerant mining transforms (Section 6).

"Perturbation may happen from period to period ...  For mining partial
periodicity with perturbation, one method is to slightly enlarge the time
slot to be examined ...  Another method is to include the features happening
in the time slots surrounding the one being analyzed."

Both methods are series-to-series transforms: mine the transformed series
with any of the standard algorithms and patterns whose timing wobbles by up
to the window radius are caught at their anchor slot.
"""

from __future__ import annotations

from repro.core.errors import SeriesError
from repro.core.hitset import mine_single_period_hitset
from repro.core.result import MiningResult
from repro.timeseries.feature_series import FeatureSeries


def enlarge_slots(
    series: FeatureSeries, before: int = 0, after: int = 1
) -> FeatureSeries:
    """Slot enlargement: slot ``i`` becomes the union of ``[i-before, i+after]``.

    The paper's first perturbation method — a generalized time slot.  The
    window is clipped at the series boundaries.  ``before=0, after=0``
    returns an identical series.
    """
    if before < 0 or after < 0:
        raise SeriesError(
            f"window extents must be >= 0, got before={before} after={after}"
        )
    slots = series.slots
    length = len(slots)
    enlarged = []
    for index in range(length):
        low = max(0, index - before)
        high = min(length, index + after + 1)
        merged: set[str] = set()
        for neighbour in range(low, high):
            merged |= slots[neighbour]
        enlarged.append(merged)
    return FeatureSeries(enlarged)


def neighborhood_union(series: FeatureSeries, radius: int = 1) -> FeatureSeries:
    """The paper's second method: symmetric surrounding-slot inclusion.

    Equivalent to :func:`enlarge_slots` with ``before = after = radius``.
    """
    if radius < 0:
        raise SeriesError(f"radius must be >= 0, got {radius}")
    return enlarge_slots(series, before=radius, after=radius)


def mine_with_tolerance(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    radius: int = 1,
) -> MiningResult:
    """Hit-set mining on the neighbourhood-union transform.

    Patterns found this way assert "the feature occurs within ``radius``
    slots of the anchor offset, in most periods" — the perturbation-robust
    reading of partial periodicity.
    """
    tolerant = neighborhood_union(series, radius=radius)
    return mine_single_period_hitset(tolerant, period, min_conf)
