"""Perturbation-tolerant mining transforms (paper Section 6 extension)."""

from repro.perturbation.slots import (
    enlarge_slots,
    mine_with_tolerance,
    neighborhood_union,
)

__all__ = ["enlarge_slots", "mine_with_tolerance", "neighborhood_union"]
