"""Interned letter vocabularies — dense integer ids for pattern letters.

Every mining hot path ultimately manipulates sets of ``(offset, feature)``
letters.  Hashing those tuples (and the ``frozenset`` objects holding them)
millions of times dominates the runtime at Table-1 scale, so the encoded
stack interns each letter once into a :class:`LetterVocabulary` — a bijection
between letters and dense small ints — and represents every letter set as a
single integer bitmask (bit ``i`` set iff letter ``i`` is present).  Subset
testing, the innermost operation of every algorithm in the paper, becomes
one ``mask & ~other == 0``.

Vocabulary order *is* the bit order, and it is deterministic:

* :meth:`LetterVocabulary.from_letters` sorts, producing the canonical
  order shared by Algorithm 4.1's tree navigation and apriori-gen's prefix
  join;
* :meth:`LetterVocabulary.intern` appends, for streaming consumers
  (:class:`~repro.core.incremental.IncrementalHitSetMiner`) that meet
  letters in arrival order.

Interning more letters never invalidates existing masks (bits keep their
meaning); letters can never be removed.  Masks produced under one
vocabulary translate to another via :meth:`LetterVocabulary.remap_table` +
:func:`remap_mask`, which is how shard-local state merges across workers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Union

from repro.core.errors import EncodingError

if TYPE_CHECKING:
    from repro.core.pattern import Letter

#: Anything a vocabulary can be built from: an existing vocabulary (passed
#: through unchanged) or an ordered iterable of letters.
VocabularyLike = Union["LetterVocabulary", Iterable["Letter"]]


class LetterVocabulary:
    """An ordered, growable bijection between letters and dense int ids.

    Parameters
    ----------
    letters:
        Initial letters, interned in iteration order (duplicates collapse
        to their first occurrence).  Use :meth:`from_letters` for the
        canonical sorted order.
    period:
        Optional period the letters belong to.  When set, every letter
        offset is validated against it and the vocabulary can decode
        bitmasks straight into :class:`~repro.core.pattern.Pattern`
        objects (see :meth:`Pattern.from_mask`).

    Examples
    --------
    >>> vocab = LetterVocabulary.from_letters([(1, "b"), (0, "a")], period=3)
    >>> list(vocab)
    [(0, 'a'), (1, 'b')]
    >>> vocab.encode_letters([(1, "b")])
    2
    >>> sorted(vocab.decode_mask(3))
    [(0, 'a'), (1, 'b')]
    """

    __slots__ = ("_letters", "_ids", "_period", "_decode_memo")

    def __init__(
        self,
        letters: Iterable[Letter] = (),
        period: int | None = None,
    ):
        if period is not None and period < 1:
            raise EncodingError(f"period must be >= 1, got {period}")
        self._period = period
        self._letters: list[Letter] = []
        self._ids: dict[Letter, int] = {}
        #: Memoized decode_mask results.  A letter's bit never changes once
        #: interned (the vocabulary is append-only), so decoded sets stay
        #: valid forever; the memo is bounded by the distinct masks queried.
        self._decode_memo: dict[int, frozenset[Letter]] = {}
        for letter in letters:
            self.intern(letter)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_letters(
        cls, letters: Iterable[Letter], period: int | None = None
    ) -> "LetterVocabulary":
        """The canonical vocabulary: letters in sorted order.

        This is the order Algorithm 4.1 walks missing letters in and the
        order apriori-gen joins prefixes in, so every component that shares
        masks uses it.
        """
        return cls(sorted(set(letters)), period=period)

    @classmethod
    def of(
        cls, source: VocabularyLike, period: int | None = None
    ) -> "LetterVocabulary":
        """Coerce: pass an existing vocabulary through, intern anything else.

        Iterable input keeps its iteration order (it is typically an
        already-sorted ``letter_order`` tuple from the engine).
        """
        if isinstance(source, LetterVocabulary):
            return source
        return cls(source, period=period)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def period(self) -> int | None:
        """The period the letters belong to, when known."""
        return self._period

    @property
    def letters(self) -> tuple[Letter, ...]:
        """The interned letters in id order (id ``i`` is ``letters[i]``)."""
        return tuple(self._letters)

    @property
    def full_mask(self) -> int:
        """The mask with every interned letter's bit set."""
        return (1 << len(self._letters)) - 1

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[Letter]:
        return iter(self._letters)

    def __getitem__(self, letter_id: int) -> Letter:
        return self._letters[letter_id]

    def __contains__(self, letter: object) -> bool:
        return letter in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LetterVocabulary):
            return NotImplemented
        return (
            self._letters == other._letters and self._period == other._period
        )

    # Growable by intern(); identity hashing would be a trap for callers
    # expecting value semantics, so vocabularies are simply unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __reduce__(
        self,
    ) -> tuple[type["LetterVocabulary"], tuple[list[Letter], int | None]]:
        return (LetterVocabulary, (self._letters, self._period))

    def __repr__(self) -> str:
        return (
            f"LetterVocabulary(size={len(self._letters)}, "
            f"period={self._period})"
        )

    # ------------------------------------------------------------------
    # Interning and encoding
    # ------------------------------------------------------------------

    def intern(self, letter: Letter) -> int:
        """The id of ``letter``, appending it to the vocabulary if new."""
        existing = self._ids.get(letter)
        if existing is not None:
            return existing
        if self._period is not None and not 0 <= letter[0] < self._period:
            raise EncodingError(
                f"letter offset {letter[0]} out of range for period "
                f"{self._period}"
            )
        letter_id = len(self._letters)
        self._letters.append(letter)
        self._ids[letter] = letter_id
        return letter_id

    def id_of(self, letter: Letter) -> int:
        """The id of an already-interned letter."""
        try:
            return self._ids[letter]
        except KeyError:
            raise EncodingError(
                f"letter {letter!r} is not in the vocabulary"
            ) from None

    def bit_of(self, letter: Letter) -> int:
        """The single-bit mask of an already-interned letter."""
        return 1 << self.id_of(letter)

    def encode_letters(self, letters: Iterable[Letter]) -> int:
        """The bitmask of a letter collection; every letter must be known."""
        mask = 0
        ids = self._ids
        for letter in letters:
            bit_id = ids.get(letter)
            if bit_id is None:
                raise EncodingError(
                    f"letter {letter!r} is not in the vocabulary"
                )
            mask |= 1 << bit_id
        return mask

    def decode_mask(self, mask: int) -> frozenset[Letter]:
        """The letter set of a bitmask (the inverse of :meth:`encode_letters`).

        Memoized: derivations decode the same frequent masks over and over
        (every level, every re-query), so repeat decodes are one dict hit.
        """
        decoded = self._decode_memo.get(mask)
        if decoded is None:
            decoded = frozenset(self.iter_mask(mask))
            self._decode_memo[mask] = decoded
        return decoded

    def decode_sorted(self, mask: int) -> tuple[Letter, ...]:
        """The letters of a bitmask as a sorted tuple."""
        return tuple(sorted(self.iter_mask(mask)))

    def iter_mask(self, mask: int) -> Iterator[Letter]:
        """Yield the letters of a bitmask in ascending bit order."""
        if mask < 0 or mask >> len(self._letters):
            raise EncodingError(
                f"mask {mask:#x} has bits outside the vocabulary "
                f"(size {len(self._letters)})"
            )
        letters = self._letters
        while mask:
            low = mask & -mask
            yield letters[low.bit_length() - 1]
            mask ^= low

    # ------------------------------------------------------------------
    # Cross-vocabulary translation (shard merging)
    # ------------------------------------------------------------------

    def remap_table(self, target: "LetterVocabulary") -> tuple[int, ...]:
        """Per-id translation table into ``target``'s id space.

        Entry ``i`` is the id of ``self[i]`` in ``target``, or ``-1`` when
        the letter is absent there — :func:`remap_mask` then drops that
        bit, which is exactly the "project onto C_max" step of hit
        computation.
        """
        return tuple(
            target._ids.get(letter, -1) for letter in self._letters
        )


def remap_mask(mask: int, table: Sequence[int]) -> int:
    """Translate a bitmask through a :meth:`~LetterVocabulary.remap_table`.

    Bits whose table entry is ``-1`` are dropped.

    >>> source = LetterVocabulary([(0, "b"), (0, "a")])
    >>> target = LetterVocabulary.from_letters([(0, "a")])
    >>> remap_mask(0b11, source.remap_table(target))
    1
    """
    out = 0
    while mask:
        low = mask & -mask
        target_id = table[low.bit_length() - 1]
        if target_id >= 0:
            out |= 1 << target_id
        mask ^= low
    return out
