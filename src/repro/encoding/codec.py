"""Segment ⇄ bitmask codec over a :class:`LetterVocabulary`.

This module is the *single* home of the letter-extraction loop that used to
be inlined in ``counting.py``, ``worker.py`` and the tree: walking a period
segment's slots and producing its ``(offset, feature)`` letters — either as
letters (:func:`iter_segment_letters`) or directly as one int bitmask
(:meth:`SegmentEncoder.encode_segment`).

:class:`SegmentEncoder` precomputes one ``feature -> bit`` dict per offset,
so encoding a segment costs one dict lookup per feature occurrence — no
tuple construction, no tuple hashing.  :class:`EncodedSeries` is a whole
series pre-encoded for one period: a vocabulary plus one mask per segment.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.core.errors import EncodingError
from repro.core.pattern import Letter
from repro.encoding.vocabulary import LetterVocabulary
from repro.timeseries.feature_series import FeatureSeries, Segment

#: One encoded period segment: an int bitmask over a vocabulary.
EncodedSegment = int


def iter_segment_letters(
    segment: Sequence[frozenset[str]],
) -> Iterator[Letter]:
    """All ``(offset, feature)`` letters of one period segment, slot order.

    Letters never repeat within a segment because each slot is a set.
    """
    for offset, slot in enumerate(segment):
        for feature in slot:
            yield (offset, feature)


def vocabulary_of_series(
    series: FeatureSeries, period: int
) -> LetterVocabulary:
    """The canonical (sorted) vocabulary of every letter in the series."""
    letters: set[Letter] = set()
    for segment in series.segments(period):
        letters.update(iter_segment_letters(segment))
    return LetterVocabulary.from_letters(letters, period=period)


class SegmentEncoder:
    """Encode period segments into bitmasks over a fixed vocabulary.

    Letters outside the vocabulary are simply not represented in the output
    masks — encoding a segment is intrinsically the "project onto the
    vocabulary" step, which is exactly Algorithm 4.1's hit computation when
    the vocabulary is the sorted ``C_max`` letter set.

    Parameters
    ----------
    vocab:
        The vocabulary fixing the bit order.  Every letter offset must fall
        in ``range(period)``.
    period:
        The segment length; defaults to ``vocab.period``.
    """

    __slots__ = ("_vocab", "_period", "_tables")

    def __init__(self, vocab: LetterVocabulary, period: int | None = None):
        if period is None:
            period = vocab.period
        if period is None:
            raise EncodingError(
                "SegmentEncoder needs a period (on the vocabulary or explicit)"
            )
        if period < 1:
            raise EncodingError(f"period must be >= 1, got {period}")
        self._vocab = vocab
        self._period = period
        tables: list[dict[str, int]] = [{} for _ in range(period)]
        for index, (offset, feature) in enumerate(vocab):
            if not 0 <= offset < period:
                raise EncodingError(
                    f"letter offset {offset} out of range for period {period}"
                )
            tables[offset][feature] = 1 << index
        self._tables = tables

    @property
    def vocab(self) -> LetterVocabulary:
        """The vocabulary fixing the bit order."""
        return self._vocab

    @property
    def period(self) -> int:
        """The segment length the encoder was built for."""
        return self._period

    def encode_segment(self, segment: Segment) -> EncodedSegment:
        """One segment as a bitmask; unknown letters are dropped."""
        mask = 0
        tables = self._tables
        for offset, slot in enumerate(segment):
            if slot:
                table = tables[offset]
                if table:
                    for feature in slot:
                        bit = table.get(feature)
                        if bit:
                            mask |= bit
        return mask

    def encode_slot(self, offset: int, slot: Iterable[str]) -> int:
        """The bits contributed by one slot at one offset.

        Slot-level entry point for the shared multi-period miner
        (Algorithm 3.4), which interleaves many periods in a single pass
        and accumulates each period's segment mask with ``|=``.
        """
        mask = 0
        table = self._tables[offset]
        if table:
            for feature in slot:
                bit = table.get(feature)
                if bit:
                    mask |= bit
        return mask

    def encode_series(self, series: FeatureSeries) -> list[EncodedSegment]:
        """Every whole segment of a series as masks, in segment order.

        Consumes ``series.segments(period)`` once — one *scan* in the
        paper's cost accounting.
        """
        encode = self.encode_segment
        return [encode(segment) for segment in series.segments(self._period)]

    def __repr__(self) -> str:
        return (
            f"SegmentEncoder(period={self._period}, "
            f"letters={len(self._vocab)})"
        )


class EncodedSeries:
    """A period-segmented series, pre-encoded: one bitmask per segment.

    Examples
    --------
    >>> series = FeatureSeries.from_symbols("abdabcabd")
    >>> encoded = EncodedSeries.from_series(series, 3)
    >>> len(encoded), len(encoded.vocab)
    (3, 4)
    >>> encoded.count_mask(encoded.vocab.encode_letters([(0, "a"), (1, "b")]))
    3
    """

    __slots__ = ("_vocab", "_period", "_masks")

    def __init__(
        self,
        vocab: LetterVocabulary,
        period: int,
        masks: Iterable[EncodedSegment],
    ):
        self._vocab = vocab
        self._period = period
        self._masks: tuple[EncodedSegment, ...] = tuple(masks)

    @classmethod
    def from_series(
        cls,
        series: FeatureSeries,
        period: int,
        vocab: LetterVocabulary | None = None,
    ) -> "EncodedSeries":
        """Encode a series for one period.

        Without an explicit vocabulary the full sorted letter vocabulary of
        the series is built first (one extra scan); with one, encoding is a
        single scan and out-of-vocabulary letters are dropped.
        """
        if vocab is None:
            vocab = vocabulary_of_series(series, period)
        encoder = SegmentEncoder(vocab, period)
        return cls(vocab, period, encoder.encode_series(series))

    @property
    def vocab(self) -> LetterVocabulary:
        """The vocabulary fixing the bit order of every mask."""
        return self._vocab

    @property
    def period(self) -> int:
        """The period the series was segmented by."""
        return self._period

    @property
    def masks(self) -> tuple[EncodedSegment, ...]:
        """One mask per whole segment, in segment order."""
        return self._masks

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[EncodedSegment]:
        return iter(self._masks)

    def __getitem__(self, index: int) -> EncodedSegment:
        return self._masks[index]

    def count_mask(self, mask: EncodedSegment) -> int:
        """Frequency count of one letter-set mask (subset test per segment)."""
        return sum(1 for segment in self._masks if not mask & ~segment)

    def hit_counter(self, min_letters: int = 2) -> Counter:
        """Multiset of distinct segment masks with >= ``min_letters`` bits.

        This is the complete scan-2 state of Algorithm 3.2 when the
        vocabulary is the sorted ``C_max`` letters: feed it to
        :meth:`~repro.tree.max_subpattern_tree.MaxSubpatternTree.insert_mask`
        once per *distinct* hit.
        """
        hits: Counter = Counter()
        for mask in self._masks:
            if mask.bit_count() >= min_letters:
                hits[mask] += 1
        return hits

    def __repr__(self) -> str:
        return (
            f"EncodedSeries(segments={len(self._masks)}, "
            f"period={self._period}, letters={len(self._vocab)})"
        )
