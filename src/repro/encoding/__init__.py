"""repro.encoding — interned letters and bitmask segment codecs.

The representation spine of the mining stack: a
:class:`LetterVocabulary` interns ``(offset, feature)`` letters to dense
int ids, and the codec (:class:`SegmentEncoder` / :class:`EncodedSeries`)
turns each period segment into one int bitmask over that vocabulary.  All
hot paths — the F1 scan, hit computation (Algorithm 4.1), the
max-subpattern tree index, apriori-gen, and the parallel shard workers —
operate on these masks; letters and :class:`~repro.core.pattern.Pattern`
objects appear only at the API boundary (see ``docs/encoding.md``).

Quickstart
----------
>>> from repro.encoding import EncodedSeries
>>> from repro.timeseries.feature_series import FeatureSeries
>>> encoded = EncodedSeries.from_series(FeatureSeries.from_symbols("abdabcabd"), 3)
>>> [f"{mask:04b}" for mask in encoded]
['1011', '0111', '1011']
"""

from repro.encoding.codec import (
    EncodedSegment,
    EncodedSeries,
    SegmentEncoder,
    iter_segment_letters,
    vocabulary_of_series,
)
from repro.encoding.vocabulary import (
    LetterVocabulary,
    VocabularyLike,
    remap_mask,
)

__all__ = [
    "EncodedSegment",
    "EncodedSeries",
    "LetterVocabulary",
    "SegmentEncoder",
    "VocabularyLike",
    "iter_segment_letters",
    "remap_mask",
    "vocabulary_of_series",
]
