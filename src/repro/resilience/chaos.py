"""Deterministic fault injection for the sharded engine.

:class:`ChaosBackend` wraps any :class:`~repro.engine.executor.ExecutionBackend`
and makes a seeded fraction of its tasks misbehave — crash, hang, or
raise a message-less exception — *inside the worker*, exactly where real
faults land.  Fault draws happen on the parent side from a
:class:`random.Random` keyed by ``(seed, round, task index)``, so a given
configuration injects the identical fault schedule on every run: the
chaos-equivalence suite replays a schedule and asserts the mined result
is byte-identical to the fault-free serial baseline.

Faults only fire on the wrapped backend's rounds.  The retry ladder's
in-parent serial retries call the worker function directly, so a crashed
shard recovers on retry instead of crashing forever — mirroring the
transient faults the resilience layer exists for.

Setting ``REPRO_CHAOS_SEED`` in the environment makes
:func:`~repro.engine.executor.resolve_backend` wrap every spec-resolved
backend automatically (see :func:`chaos_from_env`); CI runs the engine
suite that way.

This module lives in :mod:`repro.resilience` but imports from
:mod:`repro.engine`, the reverse of the package's usual direction — which
is why ``repro/resilience/__init__.py`` must never import it eagerly.
"""

from __future__ import annotations

import os
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.errors import ResilienceError
from repro.engine.executor import ExecutionBackend, ShardOutcome
from repro.resilience.backoff import sleep
from repro.resilience.deadline import Deadline

#: Mixing primes for the per-(seed, round, task) fault RNG.
_MIX_ROUND = 104_729
_MIX_TASK = 15_485_863


class ChaosCrash(RuntimeError):
    """An injected worker crash (retryable, like any RuntimeError)."""


class ChaosEmptyError(RuntimeError):
    """An injected exception raised with *no message* — exercises the
    ``str(error) or repr(error)`` capture fallback in the backends."""


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """One fault-injection schedule: a seed plus per-fault rates.

    Rates are independent probabilities carved out of a single uniform
    draw per task, so ``crash_rate + hang_rate + empty_rate`` must stay
    within ``[0, 1]``.
    """

    seed: int
    crash_rate: float = 0.2
    hang_rate: float = 0.0
    empty_rate: float = 0.05
    #: How long an injected hang sleeps.  Finite by design: with a shard
    #: timeout it overruns and times out; without one it merely delays.
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.hang_rate, self.empty_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0:
            raise ResilienceError(
                f"chaos rates must be >= 0 and sum to <= 1, got {rates}"
            )
        if self.hang_s < 0:
            raise ResilienceError(f"hang_s must be >= 0, got {self.hang_s}")

    def fault_for(self, round_number: int, task_index: int) -> str | None:
        """``"crash"``, ``"hang"``, ``"empty"`` or ``None`` for one task.

        A pure function of ``(seed, round, task)`` — the whole point.
        """
        rng = random.Random(
            self.seed * 1_000_003
            + round_number * _MIX_ROUND
            + task_index * _MIX_TASK
        )
        draw = rng.random()
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.hang_rate:
            return "hang"
        if draw < self.crash_rate + self.hang_rate + self.empty_rate:
            return "empty"
        return None


class _ChaosDispatch:
    """Picklable worker wrapper applying a pre-drawn fault plan.

    Tasks arrive as ``(index, original_task)`` pairs; the plan maps index
    to fault name.  Module-level class so process backends can ship it.
    """

    def __init__(
        self, fn: Callable, plan: dict[int, str], hang_s: float
    ) -> None:
        self.fn = fn
        self.plan = plan
        self.hang_s = hang_s

    def __call__(self, indexed_task: tuple[int, object]) -> object:
        index, task = indexed_task
        fault = self.plan.get(index)
        if fault == "crash":
            raise ChaosCrash(f"injected crash on task {index}")
        if fault == "hang":
            sleep(self.hang_s)
        elif fault == "empty":
            raise ChaosEmptyError()
        return self.fn(task)


@dataclass
class ChaosBackend(ExecutionBackend):
    """A fault-injecting wrapper around any execution backend.

    Transparent to callers: :attr:`name` reports the inner backend's name
    (stats and CLI output describe the real executor), and every task's
    eventual successful value is exactly what the inner backend would
    have produced — chaos only adds failures for the retry machinery to
    absorb.
    """

    inner: ExecutionBackend
    config: ChaosConfig
    #: Backend rounds completed; advances the fault schedule so a retry
    #: round draws fresh faults instead of replaying the previous ones.
    rounds: int = field(default=0, repr=False)

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    def rewrap(self, inner: ExecutionBackend) -> "ChaosBackend":
        """The same chaos schedule around a (demoted) inner backend."""
        return ChaosBackend(inner=inner, config=self.config, rounds=self.rounds)

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        timeout_s: float | None = None,
        deadline: Deadline | None = None,
    ) -> list[ShardOutcome]:
        round_number = self.rounds
        self.rounds += 1
        plan = {}
        for index in range(len(tasks)):
            fault = self.config.fault_for(round_number, index)
            if fault is not None:
                plan[index] = fault
        dispatch = _ChaosDispatch(fn, plan, self.config.hang_s)
        return self.inner.map(
            dispatch,
            list(enumerate(tasks)),
            timeout_s=timeout_s,
            deadline=deadline,
        )

    def __repr__(self) -> str:
        return f"ChaosBackend(inner={self.inner!r}, config={self.config})"


# ---------------------------------------------------------------------------
# Durable-storage fault injection (torn writes, truncation, stale tmps)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FileChaosConfig:
    """A deterministic schedule of snapshot-write faults.

    Rates are independent probabilities carved out of one uniform draw
    per write, keyed by ``(seed, write index)`` — the same configuration
    injects the identical fault sequence on every run, which is how the
    durability suite pins "resume survives this exact corruption".

    Fault kinds mirror the real-world failure modes of state files:

    ``torn``
        The final file is cut mid-byte (a write that never finished but
        still landed at the final path — the legacy non-atomic writer's
        failure mode, and what a lost rename journal looks like).
    ``truncate``
        The final file loses its checksum footer (a whole trailing block
        vanished — metadata-only truncation).
    ``stale-tmp``
        The temp file is fully written but never renamed (a crash in the
        gap between write and rename), leaving a stale ``*.tmp*`` file
        and no new snapshot.
    """

    seed: int
    torn_rate: float = 0.0
    truncate_rate: float = 0.0
    stale_tmp_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (self.torn_rate, self.truncate_rate, self.stale_tmp_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0:
            raise ResilienceError(
                f"file-chaos rates must be >= 0 and sum to <= 1, got {rates}"
            )

    def fault_for(self, write_index: int) -> str | None:
        """``"torn"``, ``"truncate"``, ``"stale-tmp"`` or ``None``."""
        rng = random.Random(self.seed * 1_000_003 + write_index * _MIX_TASK)
        draw = rng.random()
        if draw < self.torn_rate:
            return "torn"
        if draw < self.torn_rate + self.truncate_rate:
            return "truncate"
        if draw < self.torn_rate + self.truncate_rate + self.stale_tmp_rate:
            return "stale-tmp"
        return None


class FileChaos:
    """Mutable cursor over a :class:`FileChaosConfig` fault schedule.

    The snapshot writer calls :meth:`next_fault` once per atomic write;
    the cursor advances whether or not a fault fires, so the schedule is
    a pure function of how many writes have happened.
    """

    __slots__ = ("config", "writes", "injected")

    def __init__(self, config: FileChaosConfig):
        self.config = config
        self.writes = 0
        #: Count of faults actually fired, per kind (observability for
        #: tests and the chaos CI job).
        self.injected: dict[str, int] = {}

    def next_fault(self) -> str | None:
        """The fault to inject on this write, advancing the schedule."""
        fault = self.config.fault_for(self.writes)
        self.writes += 1
        if fault is not None:
            self.injected[fault] = self.injected.get(fault, 0) + 1
        return fault


def file_chaos_from_env() -> FileChaos | None:
    """The :class:`FileChaos` described by the environment, if any.

    ``REPRO_CHAOS_FILE_SEED`` (an integer) switches injection on; optional
    ``REPRO_CHAOS_FILE_RATES`` is ``"torn,truncate,stale"`` floats
    (default ``0.1,0.05,0.05``).
    """
    raw_seed = os.environ.get("REPRO_CHAOS_FILE_SEED", "").strip()
    if not raw_seed:
        return None
    try:
        seed = int(raw_seed)
    except ValueError as error:
        raise ResilienceError(
            f"REPRO_CHAOS_FILE_SEED must be an integer, got {raw_seed!r}"
        ) from error
    rates_raw = os.environ.get("REPRO_CHAOS_FILE_RATES", "0.1,0.05,0.05")
    try:
        torn, truncate, stale = (float(part) for part in rates_raw.split(","))
    except ValueError as error:
        raise ResilienceError(
            "REPRO_CHAOS_FILE_RATES must be 'torn,truncate,stale' floats, "
            f"got {rates_raw!r}"
        ) from error
    return FileChaos(
        FileChaosConfig(
            seed=seed,
            torn_rate=torn,
            truncate_rate=truncate,
            stale_tmp_rate=stale,
        )
    )


def chaos_from_env() -> ChaosConfig | None:
    """The :class:`ChaosConfig` described by the environment, if any.

    ``REPRO_CHAOS_SEED`` (an integer) switches injection on.  Optional
    ``REPRO_CHAOS_RATES`` is ``"crash,hang,empty"`` floats (default
    ``0.15,0,0.05``) and ``REPRO_CHAOS_HANG_S`` the injected hang length.
    """
    raw_seed = os.environ.get("REPRO_CHAOS_SEED", "").strip()
    if not raw_seed:
        return None
    try:
        seed = int(raw_seed)
    except ValueError as error:
        raise ResilienceError(
            f"REPRO_CHAOS_SEED must be an integer, got {raw_seed!r}"
        ) from error
    rates_raw = os.environ.get("REPRO_CHAOS_RATES", "0.15,0,0.05")
    try:
        crash, hang, empty = (float(part) for part in rates_raw.split(","))
    except ValueError as error:
        raise ResilienceError(
            "REPRO_CHAOS_RATES must be 'crash,hang,empty' floats, got "
            f"{rates_raw!r}"
        ) from error
    hang_s = float(os.environ.get("REPRO_CHAOS_HANG_S", "0.25"))
    return ChaosConfig(
        seed=seed,
        crash_rate=crash,
        hang_rate=hang,
        empty_rate=empty,
        hang_s=hang_s,
    )
