"""Bounded, classified retries for shard execution.

The engine used to hard-code "retry each failed shard once, serially".
:class:`RetryPolicy` generalizes that into three explicit knobs:

* **bounded attempts** — each shard gets at most ``max_attempts`` total
  executions (the first backend attempt counts as one);
* **exponential backoff with deterministic jitter** — pauses between
  attempts come from :func:`repro.resilience.backoff.backoff_delay`, a
  pure function of ``(seed, shard, attempt)``;
* **per-exception-class classification** — deterministic input errors
  (a malformed pattern, an invalid period) fail the same way on every
  attempt, so retrying them only burns the deadline.  Those classes are
  *fatal* and abort immediately; everything else (worker crashes, broken
  pools, timeouts, I/O hiccups) is *retryable*.

Classification is by exception **class name** (the string carried on
:attr:`repro.engine.executor.ShardOutcome.error_type`) because worker
errors cross process boundaries as strings, not live exception objects.
Matching is exact — listing ``"ResilienceError"`` does not cover its
subclass ``ShardTimeout``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ResilienceError
from repro.resilience.backoff import backoff_delay

#: Deterministic input/contract errors: retrying the identical shard can
#: only reproduce them, so they abort the run on first sight.
DEFAULT_FATAL_TYPES = frozenset(
    {
        "PatternError",
        "SeriesError",
        "MiningError",
        "EncodingError",
        "TaxonomyError",
        "GeneratorError",
        "EngineError",
        "ResilienceError",
    }
)


class FailureAction(Enum):
    """What the retry ladder does with one classified failure."""

    RETRY = "retry"
    FAIL = "fail"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry schedule with deterministic jittered backoff.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per shard (>= 1).  The default of 2 —
        one backend attempt plus one serial retry — reproduces the
        engine's historical behavior.
    backoff_base_s / backoff_cap_s:
        First-retry pause and its exponential-growth cap.  A base of 0
        disables sleeping entirely (the test suites use this).
    jitter:
        Fraction of each delay randomized away, in ``[0, 1]``.
    seed:
        Seed for the deterministic jitter stream.
    fatal_types:
        Exception class names that abort instead of retrying.
    retryable_types:
        Names forced retryable even if listed fatal (override hook).
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    fatal_types: frozenset[str] = DEFAULT_FATAL_TYPES
    retryable_types: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ResilienceError(
                "backoff must satisfy 0 <= base <= cap, got "
                f"base={self.backoff_base_s}, cap={self.backoff_cap_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {self.jitter}")

    def classify(self, error_type: str | None) -> FailureAction:
        """RETRY or FAIL for one failure, by exception class name.

        Unknown (or missing) class names default to RETRY: transient
        infrastructure failures come in shapes no list anticipates, and a
        bounded retry of a deterministic error merely wastes
        ``max_attempts - 1`` executions.
        """
        if error_type is None:
            return FailureAction.RETRY
        if error_type in self.retryable_types:
            return FailureAction.RETRY
        if error_type in self.fatal_types:
            return FailureAction.FAIL
        return FailureAction.RETRY

    def delay_s(self, attempt: int, shard: int = 0) -> float:
        """Deterministic pause before retrying after ``attempt`` failures."""
        return backoff_delay(
            attempt,
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            jitter=self.jitter,
            seed=self.seed,
            shard=shard,
        )

    def exhausted(self, attempts: int) -> bool:
        """True once a shard has used up every allowed execution."""
        return attempts >= self.max_attempts
