"""Fault tolerance for the sharded mining engine.

The package that turns :mod:`repro.engine` from "retry once and hope"
into an explicit resilience model:

* :mod:`~repro.resilience.policy` — bounded, classified retries with
  deterministic jittered backoff;
* :mod:`~repro.resilience.deadline` — wall-clock budgets and cooperative
  cancellation;
* :mod:`~repro.resilience.journal` — an append-only checkpoint journal
  so killed runs resume without re-running completed shards;
* :mod:`~repro.resilience.context` — the bundle of all of the above that
  the engine threads through a run;
* :mod:`~repro.resilience.chaos` — deterministic fault injection for
  testing (imported on demand, **not** re-exported here: it subclasses
  the engine's backend ABC, and eagerly importing it would cycle back
  into :mod:`repro.engine`).

See ``docs/resilience.md`` for the full semantics.
"""

from repro.resilience.backoff import backoff_delay, sleep
from repro.resilience.context import ResilienceContext
from repro.resilience.deadline import Deadline
from repro.resilience.journal import (
    CheckpointJournal,
    decode_payload,
    encode_payload,
    series_fingerprint,
)
from repro.resilience.policy import DEFAULT_FATAL_TYPES, FailureAction, RetryPolicy

__all__ = [
    "DEFAULT_FATAL_TYPES",
    "CheckpointJournal",
    "Deadline",
    "FailureAction",
    "ResilienceContext",
    "RetryPolicy",
    "backoff_delay",
    "decode_payload",
    "encode_payload",
    "series_fingerprint",
    "sleep",
]
