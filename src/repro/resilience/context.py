"""One bundle of resilience settings threaded through a mining run.

:class:`ResilienceContext` is what :func:`repro.engine.executor.run_shards`
and :class:`repro.engine.parallel.ParallelMiner` accept: the retry policy,
the optional per-shard timeout, the optional wall-clock deadline, and the
optional checkpoint journal, carried as one object so every phase of a
run shares the same budget and journal.

The context deliberately knows nothing about backends or
:class:`~repro.engine.executor.ShardOutcome` — journal lookups hand back
raw ``(payload, elapsed_s)`` tuples and the executor dresses them up —
which keeps :mod:`repro.resilience` importable without touching
:mod:`repro.engine` (the dependency points the other way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import ResilienceError
from repro.resilience.deadline import Deadline
from repro.resilience.journal import CheckpointJournal
from repro.resilience.policy import RetryPolicy


@dataclass(slots=True)
class ResilienceContext:
    """Retry, deadline, timeout, and checkpoint settings for one run."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-shard execution budget in seconds; ``None`` disables timeouts.
    shard_timeout_s: float | None = None
    #: Shared wall-clock budget for the whole run; ``None`` disables it.
    deadline: Deadline | None = None
    #: Open checkpoint journal; ``None`` disables checkpointing.
    journal: CheckpointJournal | None = None

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ResilienceError(
                f"shard_timeout_s must be > 0, got {self.shard_timeout_s}"
            )

    @classmethod
    def create(
        cls,
        *,
        max_attempts: int = 2,
        backoff_base_s: float = 0.05,
        seed: int = 0,
        shard_timeout_s: float | None = None,
        deadline_s: float | None = None,
        journal_path: str | Path | None = None,
        run_key: dict[str, Any] | None = None,
    ) -> "ResilienceContext":
        """The common construction path used by the CLI and miner.

        Builds the policy from scalar knobs, starts the deadline clock
        *now*, and opens (or resumes) the journal at ``journal_path`` —
        which requires ``run_key`` so a stale journal is rejected before
        any work runs.
        """
        journal = None
        if journal_path is not None:
            if run_key is None:
                raise ResilienceError(
                    "a checkpoint journal needs a run_key to validate against"
                )
            journal = CheckpointJournal(journal_path, run_key)
        return cls(
            policy=RetryPolicy(
                max_attempts=max_attempts,
                backoff_base_s=backoff_base_s,
                seed=seed,
            ),
            shard_timeout_s=shard_timeout_s,
            deadline=None if deadline_s is None else Deadline.start(deadline_s),
            journal=journal,
        )

    # -- journal pass-throughs (no-ops without a journal) ----------------

    def restored(self, phase: str, count: int) -> dict[int, tuple[Any, float]]:
        """Checkpointed ``shard -> (payload, elapsed_s)`` for one phase."""
        if self.journal is None:
            return {}
        found: dict[int, tuple[Any, float]] = {}
        for shard in range(count):
            entry = self.journal.get(phase, shard)
            if entry is not None:
                found[shard] = entry
        return found

    def checkpoint(
        self, phase: str, shard: int, value: Any, elapsed_s: float
    ) -> None:
        """Persist one completed shard, if a journal is attached."""
        if self.journal is not None:
            self.journal.record(phase, shard, value, elapsed_s)

    def pin_meta(self, phase: str, meta: Any) -> None:
        """Validate phase metadata against the journal, if attached."""
        if self.journal is not None:
            self.journal.ensure_meta(phase, meta)

    def close(self) -> None:
        """Close the journal, if any (safe to call repeatedly)."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ResilienceContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
