"""The checkpoint journal: restartable progress for sharded mining runs.

An append-only JSONL file recording every completed shard outcome of one
run.  A killed ``ppm mine --workers N --resume journal.jsonl`` restarts,
replays the journal, and re-runs only the shards that never completed —
the merged result is byte-identical to an uninterrupted run because shard
payloads are associative state (counters and mask multisets; see
:mod:`repro.engine.merge`) and the journal stores them losslessly.

Layout (one JSON object per line)::

    {"format": "repro.checkpoint/1", "run": {...run key...}}   # header
    {"phase": "hits", "meta": {...}}                           # phase meta
    {"phase": "f1", "shard": 0, "elapsed_s": 0.01, "payload": {...}}

The **run key** fingerprints everything that shapes shard payloads — the
series content, period(s), threshold, encode flag, and the partition plan
— so a journal can never be resumed against a different run.  Scan-2
payloads are bitmask counters over the run's sorted ``C_max`` letters
(the :class:`~repro.engine.partition.EncodedShard` wire format); the
letter order is pinned by a phase-meta line and re-validated on resume.

A process killed mid-write leaves a truncated final line; loading
tolerates exactly that (the unfinished trailing record is dropped, the
shard simply re-runs).  Any *earlier* malformed line is corruption and
raises :class:`~repro.core.errors.ResilienceError`.
"""

from __future__ import annotations

import hashlib
import json
import sys
from collections import Counter
from pathlib import Path
from typing import IO, Any

from repro.core.errors import ResilienceError
from repro.timeseries.feature_series import FeatureSeries

#: Format tag written into every journal header.
FORMAT_TAG = "repro.checkpoint/1"


def series_fingerprint(series: FeatureSeries) -> str:
    """A stable content digest of a series (order- and set-insensitive).

    Hashes the canonical line-oriented text form (sorted features per
    slot), so equal series always fingerprint equally regardless of how
    their slots were constructed.  Delegates to
    :meth:`~repro.timeseries.feature_series.FeatureSeries.content_digest`,
    which memoizes the pass on the (immutable) series, so run-key and
    count-cache identity checks are free after the first.
    """
    if isinstance(series, FeatureSeries):
        return series.content_digest()
    digest = hashlib.sha256()
    for slot in series:
        digest.update(" ".join(sorted(slot)).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Payload codec — every per-shard value the engine ships must round-trip.
# ---------------------------------------------------------------------------


def encode_payload(value: Any) -> dict[str, Any]:
    """The JSON-ready form of one shard payload.

    Supported payloads are exactly what the engine's worker functions
    return: scan-1 letter counters, scan-2 hit counters (mask or legacy
    letter-tuple keyed), and whole-period payloads.
    """
    if isinstance(value, Counter):
        items = sorted(value.items())
        if not items:
            return {"kind": "masks", "items": []}
        key = items[0][0]
        if isinstance(key, int):
            return {"kind": "masks", "items": [[k, c] for k, c in items]}
        if isinstance(key, tuple) and len(key) == 2 and isinstance(key[0], int):
            return {
                "kind": "letters",
                "items": [[k[0], k[1], c] for k, c in items],
            }
        if isinstance(key, tuple):
            return {
                "kind": "hit-letters",
                "items": [
                    [[[offset, feature] for offset, feature in hit], c]
                    for hit, c in items
                ],
            }
    if isinstance(value, tuple) and len(value) == 5:
        period, segments, letters, rows, stats = value
        return {
            "kind": "period",
            "period": period,
            "segments": segments,
            "letters": [[offset, feature] for offset, feature in letters],
            "rows": [[mask, count] for mask, count in rows],
            "stats": {
                "scans": stats["scans"],
                "tree_nodes": stats["tree_nodes"],
                "hit_set_size": stats["hit_set_size"],
                "candidate_counts": [
                    [level, count]
                    for level, count in sorted(stats["candidate_counts"].items())
                ],
            },
        }
    raise ResilienceError(
        f"cannot checkpoint a payload of type {type(value).__name__}"
    )


def decode_payload(payload: dict[str, Any]) -> Any:
    """Rebuild the shard payload written by :func:`encode_payload`."""
    kind = payload.get("kind")
    if kind == "masks":
        return Counter({int(mask): int(c) for mask, c in payload["items"]})
    if kind == "letters":
        return Counter(
            {(int(offset), str(feature)): int(c)
             for offset, feature, c in payload["items"]}
        )
    if kind == "hit-letters":
        return Counter(
            {
                tuple((int(offset), str(feature)) for offset, feature in hit): int(c)
                for hit, c in payload["items"]
            }
        )
    if kind == "period":
        stats = payload["stats"]
        return (
            int(payload["period"]),
            int(payload["segments"]),
            tuple((int(offset), str(feature))
                  for offset, feature in payload["letters"]),
            [(int(mask), int(count)) for mask, count in payload["rows"]],
            {
                "scans": int(stats["scans"]),
                "tree_nodes": int(stats["tree_nodes"]),
                "hit_set_size": int(stats["hit_set_size"]),
                "candidate_counts": {
                    int(level): int(count)
                    for level, count in stats["candidate_counts"]
                },
            },
        )
    raise ResilienceError(f"unknown checkpoint payload kind {kind!r}")


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------


class CheckpointJournal:
    """Append-only JSONL checkpoint store for one mining run.

    Opening an existing journal validates its header against ``run_key``
    and loads every completed entry; opening a fresh path writes the
    header.  :meth:`record` appends and flushes one line per completed
    shard, so progress survives a ``kill -9`` up to the last whole line.
    """

    __slots__ = ("path", "run_key", "_entries", "_meta", "_handle")

    def __init__(self, path: str | Path, run_key: dict[str, Any]):
        self.path = Path(path)
        self.run_key = run_key
        #: ``(phase, shard) -> (decoded payload, elapsed_s)``.
        self._entries: dict[tuple[str, int], tuple[Any, float]] = {}
        self._meta: dict[str, Any] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
            self._handle: IO[str] | None = self.path.open(
                "a", encoding="utf-8"
            )
        else:
            # Append mode: the journal is append-only from birth (the
            # branch only runs on a missing or empty path anyway).
            self._handle = self.path.open("a", encoding="utf-8")
            self._append({"format": FORMAT_TAG, "run": run_key})

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: list[dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                if number == len(lines):
                    # Truncated trailing record from a killed writer: the
                    # shard it described simply runs again.
                    break
                raise ResilienceError(
                    f"{self.path}:{number}: corrupt checkpoint line: {error}"
                ) from error
            records.append(record)
        if not records:
            raise ResilienceError(
                f"{self.path}: checkpoint journal has no readable header"
            )
        header = records[0]
        if header.get("format") != FORMAT_TAG:
            raise ResilienceError(
                f"{self.path}: not a checkpoint journal "
                f"(format {header.get('format')!r}, expected {FORMAT_TAG!r})"
            )
        if header.get("run") != self.run_key:
            raise ResilienceError(
                f"{self.path}: journal was recorded for a different run; "
                "refusing to resume (series, parameters, or partition "
                "plan changed)"
            )
        for position, record in enumerate(records[1:], start=2):
            try:
                phase = record.get("phase")
                if not isinstance(phase, str):
                    raise ResilienceError(
                        f"{self.path}: checkpoint entry without a phase"
                    )
                if "meta" in record:
                    self._meta[phase] = record["meta"]
                    continue
                shard = int(record["shard"])
                self._entries[(phase, shard)] = (
                    decode_payload(record["payload"]),
                    float(record.get("elapsed_s", 0.0)),
                )
            except (ResilienceError, KeyError, TypeError, ValueError):
                if position == len(records):
                    # A torn trailing record can parse as JSON yet miss
                    # fields (the write was cut right after a brace).
                    # Like a half-line, it describes a shard that simply
                    # runs again — skip it, but say so.
                    print(
                        f"warning: {self.path}: skipping torn trailing "
                        "checkpoint record",
                        file=sys.stderr,
                    )
                    break
                raise

    # -- writing ---------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise ResilienceError(f"{self.path}: journal is closed")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()

    def record(self, phase: str, shard: int, value: Any, elapsed_s: float) -> None:
        """Checkpoint one completed shard (idempotent per ``(phase, shard)``)."""
        if (phase, shard) in self._entries:
            return
        self._append(
            {
                "phase": phase,
                "shard": shard,
                "elapsed_s": round(elapsed_s, 6),
                "payload": encode_payload(value),
            }
        )
        self._entries[(phase, shard)] = (value, elapsed_s)

    def ensure_meta(self, phase: str, meta: Any) -> None:
        """Pin phase metadata (e.g. scan 2's letter order) across resumes.

        First call for a phase records the metadata; later calls — and
        resumed runs — must present an equal value or the journal refuses
        to mix incompatible payloads.
        """
        canonical = json.loads(json.dumps(meta))
        existing = self._meta.get(phase)
        if existing is None:
            self._append({"phase": phase, "meta": canonical})
            self._meta[phase] = canonical
            return
        if existing != canonical:
            raise ResilienceError(
                f"{self.path}: phase {phase!r} metadata changed between "
                "runs; the journal cannot be resumed"
            )

    # -- queries ---------------------------------------------------------

    def get(self, phase: str, shard: int) -> tuple[Any, float] | None:
        """``(payload, elapsed_s)`` of a completed shard, or ``None``."""
        return self._entries.get((phase, shard))

    def completed(self, phase: str) -> int:
        """Number of checkpointed shards of one phase."""
        return sum(1 for key in self._entries if key[0] == phase)

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        """Flush and close the underlying file (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CheckpointJournal({str(self.path)!r}, entries={len(self)})"
