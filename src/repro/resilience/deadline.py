"""Wall-clock budgets for mining runs.

A :class:`Deadline` is a monotonic-clock budget shared by every phase of
one run: the engine checks it between retry rounds and uses
:meth:`Deadline.remaining` to cap how long it waits on any single worker
future, so a hung shard surfaces as a :class:`~repro.core.errors.ShardTimeout`
instead of blocking the pool forever.  Cancellation is cooperative — a
worker that is already computing cannot be preempted, but no *new* wait
or retry starts once the budget is spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.errors import ResilienceError


@dataclass(frozen=True, slots=True)
class Deadline:
    """A fixed wall-clock budget anchored at creation time.

    Build one with :meth:`start`; ``budget_s`` is the total allowance and
    ``started`` the :func:`time.monotonic` anchor.

    >>> deadline = Deadline.start(60.0)
    >>> deadline.expired
    False
    """

    budget_s: float
    started: float

    @classmethod
    def start(cls, budget_s: float) -> "Deadline":
        """A deadline expiring ``budget_s`` seconds from now."""
        if budget_s <= 0:
            raise ResilienceError(f"deadline budget must be > 0, got {budget_s}")
        return cls(budget_s=budget_s, started=time.monotonic())

    def elapsed(self) -> float:
        """Seconds spent since the deadline started."""
        return time.monotonic() - self.started

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the budget is fully spent."""
        return self.remaining() <= 0.0

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f})"
