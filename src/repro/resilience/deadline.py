"""Wall-clock budgets for mining runs.

A :class:`Deadline` is a monotonic-clock budget shared by every phase of
one run: the engine checks it between retry rounds and uses
:meth:`Deadline.remaining` to cap how long it waits on any single worker
future, so a hung shard surfaces as a :class:`~repro.core.errors.ShardTimeout`
instead of blocking the pool forever.  Cancellation is cooperative — a
worker that is already computing cannot be preempted, but no *new* wait
or retry starts once the budget is spent.

The same object serves async callers (:mod:`repro.serve` hands every
request its own deadline): :meth:`Deadline.check` is the cheap
raise-if-expired probe for use between awaits, and :meth:`Deadline.bound`
caps any awaitable at the remaining budget, surfacing exhaustion as
:class:`~repro.core.errors.ShardTimeout` exactly like the engine's
synchronous waits do.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, TypeVar

from repro.core.errors import ResilienceError, ShardTimeout

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class Deadline:
    """A fixed wall-clock budget anchored at creation time.

    Build one with :meth:`start`; ``budget_s`` is the total allowance and
    ``started`` the :func:`time.monotonic` anchor.

    >>> deadline = Deadline.start(60.0)
    >>> deadline.expired
    False
    """

    budget_s: float
    started: float

    @classmethod
    def start(cls, budget_s: float) -> "Deadline":
        """A deadline expiring ``budget_s`` seconds from now."""
        if budget_s <= 0:
            raise ResilienceError(f"deadline budget must be > 0, got {budget_s}")
        return cls(budget_s=budget_s, started=time.monotonic())

    def elapsed(self) -> float:
        """Seconds spent since the deadline started."""
        return time.monotonic() - self.started

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the budget is fully spent."""
        return self.remaining() <= 0.0

    def check(self, label: str = "operation") -> None:
        """Raise :class:`ShardTimeout` if the budget is already spent.

        The polling form for cooperative async code: call it between
        awaits so a long handler stops promptly once its request deadline
        passes instead of finishing work nobody is waiting for.
        """
        if self.expired:
            raise ShardTimeout(
                f"{label} exceeded its deadline "
                f"(budget {self.budget_s:.3f}s spent)"
            )

    async def bound(self, awaitable: Awaitable[T], label: str = "operation") -> T:
        """Await something, but only for the remaining budget.

        Wraps :func:`asyncio.wait_for` with :meth:`remaining` and converts
        the cancellation into :class:`ShardTimeout`, so async callers get
        the same exception surface as the engine's synchronous
        future-waits.  An already-expired deadline raises without
        scheduling the awaitable's first step (closing a bare coroutine
        so it does not warn about never being awaited).
        """
        if self.expired:
            if asyncio.iscoroutine(awaitable):
                awaitable.close()
            self.check(label)
        try:
            return await asyncio.wait_for(awaitable, timeout=self.remaining())
        except asyncio.TimeoutError:
            raise ShardTimeout(
                f"{label} exceeded its deadline "
                f"(budget {self.budget_s:.3f}s spent)"
            ) from None

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f})"
