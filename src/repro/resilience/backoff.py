"""Deterministic exponential backoff — the package's only sleeping module.

Every blocking sleep in the :mod:`repro` package routes through
:func:`sleep` here, and the devtools rule ``REP601`` enforces it.  The
point is budgeting: deadlines (:mod:`repro.resilience.deadline`) can only
account for latency they can see, and a centralized sleep keeps every
pause capped, logged in one place, and replaceable in tests.

Jitter is *deterministic*: :func:`backoff_delay` derives it from a seeded
:class:`random.Random` keyed by ``(seed, shard, attempt)``, so a retry
schedule is a pure function of the policy — the same failing run backs
off identically every time, which the chaos-equivalence suite relies on.
"""

from __future__ import annotations

import random
import time

from repro.core.errors import ResilienceError

#: Multipliers mixing (seed, shard, attempt) into one RNG seed without
#: relying on salted ``hash()``; primes keep nearby keys decorrelated.
_SEED_MIX_A = 1_000_003
_SEED_MIX_B = 8_191


def backoff_delay(
    attempt: int,
    base_s: float,
    cap_s: float,
    jitter: float = 0.5,
    seed: int = 0,
    shard: int = 0,
) -> float:
    """The pause before retry ``attempt`` (1-based count of failures so far).

    Exponential growth ``base_s * 2**(attempt - 1)`` capped at ``cap_s``,
    with a deterministic jitter drawn from ``random.Random`` seeded by
    ``(seed, shard, attempt)``: the returned delay lies in
    ``[(1 - jitter) * d, d]``.  ``base_s == 0`` always returns ``0.0``.

    >>> backoff_delay(3, base_s=0.1, cap_s=10.0, jitter=0.0)
    0.4
    >>> backoff_delay(2, 0.1, 10.0, seed=7) == backoff_delay(2, 0.1, 10.0, seed=7)
    True
    """
    if attempt < 1:
        raise ResilienceError(f"attempt must be >= 1, got {attempt}")
    if base_s < 0 or cap_s < 0:
        raise ResilienceError(
            f"backoff times must be >= 0, got base={base_s}, cap={cap_s}"
        )
    if not 0.0 <= jitter <= 1.0:
        raise ResilienceError(f"jitter must be in [0, 1], got {jitter}")
    if base_s == 0.0:
        return 0.0
    delay = min(base_s * (2.0 ** (attempt - 1)), cap_s)
    if jitter == 0.0:
        return delay
    rng = random.Random(seed * _SEED_MIX_A + shard * _SEED_MIX_B + attempt)
    return delay * (1.0 - jitter * rng.random())


def sleep(seconds: float) -> None:
    """Block for ``seconds`` — the only sanctioned sleep in the package.

    Negative or zero durations return immediately, so callers can pass a
    deadline-clamped delay without guarding.
    """
    if seconds > 0:
        time.sleep(seconds)
