"""Multi-level partial periodicity mining (paper Section 6 extension)."""

from repro.multilevel.miner import (
    MultiLevelResult,
    generalize_series,
    mine_multilevel,
)
from repro.multilevel.taxonomy import Taxonomy

__all__ = [
    "MultiLevelResult",
    "Taxonomy",
    "generalize_series",
    "mine_multilevel",
]
