"""Feature taxonomies for multi-level partial periodicity mining.

Section 6: "For mining multiple-level partial periodicity, one can explore
level-shared mining by first mining the periodicity at a high level, and
then progressively drilling-down with the discovered periodic patterns."

A :class:`Taxonomy` is a forest over feature names: each feature has at most
one parent, roots are the most general concepts, and levels are counted from
the roots (level 1) downward.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.core.errors import TaxonomyError


class Taxonomy:
    """An is-a forest over feature names.

    Parameters
    ----------
    edges:
        ``(child, parent)`` pairs.  Every child has exactly one parent;
    cycles and reparenting raise :class:`TaxonomyError`.

    Examples
    --------
    >>> tax = Taxonomy([("latte", "coffee"), ("espresso", "coffee"),
    ...                 ("coffee", "beverage")])
    >>> tax.level("latte"), tax.level("beverage")
    (3, 1)
    >>> tax.ancestor_at_level("latte", 1)
    'beverage'
    """

    def __init__(self, edges: Iterable[tuple[str, str]]):
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = defaultdict(list)
        for child, parent in edges:
            if not child or not parent:
                raise TaxonomyError("taxonomy nodes must be non-empty strings")
            if child == parent:
                raise TaxonomyError(f"self-loop on {child!r}")
            existing = self._parent.get(child)
            if existing is not None and existing != parent:
                raise TaxonomyError(
                    f"{child!r} cannot have two parents "
                    f"({existing!r} and {parent!r})"
                )
            self._parent[child] = parent
            self._children[parent].append(child)
        self._check_acyclic()
        self._levels: dict[str, int] = {}
        for node in self.nodes():
            self._levels[node] = len(self._path_to_root(node))

    # ------------------------------------------------------------------

    def nodes(self) -> set[str]:
        """Every feature name mentioned in the taxonomy."""
        return set(self._parent) | set(self._children)

    @property
    def roots(self) -> set[str]:
        """Nodes with no parent (the most general concepts)."""
        return {node for node in self.nodes() if node not in self._parent}

    @property
    def depth(self) -> int:
        """The deepest level present."""
        return max(self._levels.values(), default=0)

    def parent(self, feature: str) -> str | None:
        """The immediate parent, or ``None`` for roots and unknown names."""
        return self._parent.get(feature)

    def children(self, feature: str) -> list[str]:
        """Immediate children (empty for leaves and unknown names)."""
        return list(self._children.get(feature, ()))

    def ancestors(self, feature: str) -> list[str]:
        """All proper ancestors, nearest first."""
        chain = []
        current = self._parent.get(feature)
        while current is not None:
            chain.append(current)
            current = self._parent.get(current)
        return chain

    def level(self, feature: str) -> int:
        """Depth from the root, roots at level 1.

        Unknown features are treated as standalone roots (level 1), so a
        taxonomy can cover only part of the alphabet.
        """
        return self._levels.get(feature, 1)

    def ancestor_at_level(self, feature: str, level: int) -> str | None:
        """The ancestor-or-self of a feature at an exact level.

        ``None`` when the feature lives above the requested level.
        """
        if level < 1:
            raise TaxonomyError(f"level must be >= 1, got {level}")
        own = self.level(feature)
        if own < level:
            return None
        if own == level:
            return feature
        chain = self.ancestors(feature)
        # ancestors() is nearest-first; ancestor k steps up is level own-k.
        return chain[own - level - 1]

    def generalize(self, feature: str, level: int) -> str | None:
        """Alias of :meth:`ancestor_at_level` matching mining terminology."""
        return self.ancestor_at_level(feature, level)

    # ------------------------------------------------------------------

    def _path_to_root(self, node: str) -> list[str]:
        path = [node]
        current = self._parent.get(node)
        while current is not None:
            path.append(current)
            current = self._parent.get(current)
        return path

    def _check_acyclic(self) -> None:
        for start in self._parent:
            seen = {start}
            current = self._parent.get(start)
            while current is not None:
                if current in seen:
                    raise TaxonomyError(f"cycle through {current!r}")
                seen.add(current)
                current = self._parent.get(current)

    def __repr__(self) -> str:
        return (
            f"Taxonomy(nodes={len(self.nodes())}, roots={len(self.roots)}, "
            f"depth={self.depth})"
        )
