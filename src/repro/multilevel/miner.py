"""Multi-level partial periodicity mining (Section 6 extension).

Strategy, following the paper's sketch and the multiple-level association
framework of Han & Fu [6]: mine the series generalized to the top taxonomy
level first; then drill down level by level, keeping at level ``l`` only the
features whose level-``l-1`` ancestor was frequent at the same offset —
a high-level letter that is not frequent cannot have a frequent
specialization, so whole sub-hierarchies are pruned before the deeper scan.

Each level runs the two-scan hit-set miner on its (filtered) generalized
series, so a full drill-down over ``d`` levels costs ``2d`` scans.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.counting import check_min_conf
from repro.core.errors import MiningError
from repro.core.hitset import mine_single_period_hitset
from repro.core.pattern import Letter
from repro.core.result import MiningResult
from repro.multilevel.taxonomy import Taxonomy
from repro.timeseries.feature_series import FeatureSeries


def generalize_series(
    series: FeatureSeries, taxonomy: Taxonomy, level: int
) -> FeatureSeries:
    """Map every feature to its ancestor-or-self at ``level``.

    Features living above the level (more general than requested) are
    dropped — they belong to shallower mining rounds.
    """
    slots = []
    for slot in series.iter_slots():
        mapped = set()
        for feature in slot:
            ancestor = taxonomy.ancestor_at_level(feature, level)
            if ancestor is not None:
                mapped.add(ancestor)
        slots.append(mapped)
    return FeatureSeries(slots)


def _filter_by_frequent_parents(
    series: FeatureSeries,
    taxonomy: Taxonomy,
    level: int,
    period: int,
    frequent_parent_letters: set[Letter],
) -> FeatureSeries:
    """Keep a level-``level`` feature only under a frequent parent letter."""
    slots = []
    for index, slot in enumerate(series.iter_slots()):
        offset = index % period
        kept = set()
        for feature in slot:
            parent = taxonomy.ancestor_at_level(feature, level - 1)
            if parent is not None and (offset, parent) in frequent_parent_letters:
                kept.add(feature)
        slots.append(kept)
    return FeatureSeries(slots)


@dataclass(slots=True)
class MultiLevelResult:
    """Per-level mining results of one drill-down run."""

    period: int
    results: dict[int, MiningResult] = field(default_factory=dict)

    def __getitem__(self, level: int) -> MiningResult:
        return self.results[level]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def levels(self) -> list[int]:
        """Mined levels, shallow to deep."""
        return sorted(self.results)

    @property
    def total_frequent(self) -> int:
        """Frequent patterns summed over all levels."""
        return sum(len(result) for result in self.results.values())

    def summary(self) -> str:
        """One-line human summary."""
        parts = ", ".join(
            f"L{level}:{len(self.results[level])}" for level in self.levels
        )
        return f"multilevel period={self.period} frequent per level: {parts}"


def mine_multilevel(
    series: FeatureSeries,
    period: int,
    taxonomy: Taxonomy,
    min_conf: float = 0.5,
    level_confs: Mapping[int, float] | None = None,
    max_level: int | None = None,
) -> MultiLevelResult:
    """Drill-down mining across taxonomy levels.

    Parameters
    ----------
    series:
        The leaf-level feature series.
    period:
        The period to mine at every level.
    taxonomy:
        The feature taxonomy; features absent from it count as level-1.
    min_conf:
        Default confidence threshold.  Deeper levels are commonly mined
        with lower thresholds — pass ``level_confs`` overrides per level
        (e.g. ``{1: 0.6, 2: 0.4}``).
    max_level:
        Deepest level to mine; defaults to the deepest level among the
        series' features.

    Returns
    -------
    MultiLevelResult
        One :class:`~repro.core.result.MiningResult` per level; levels
        whose parents yielded nothing frequent terminate the drill-down.
    """
    check_min_conf(min_conf)
    level_confs = dict(level_confs or {})
    for level, conf in level_confs.items():
        check_min_conf(conf)
        if level < 1:
            raise MiningError(f"levels start at 1, got override for {level}")

    alphabet = series.alphabet
    deepest = max((taxonomy.level(feature) for feature in alphabet), default=1)
    if max_level is not None:
        if max_level < 1:
            raise MiningError(f"max_level must be >= 1, got {max_level}")
        deepest = min(deepest, max_level)

    outcome = MultiLevelResult(period=period)
    frequent_parent_letters: set[Letter] = set()
    for level in range(1, deepest + 1):
        conf = level_confs.get(level, min_conf)
        generalized = generalize_series(series, taxonomy, level)
        if level > 1:
            if not frequent_parent_letters:
                break  # nothing frequent above: drill-down is over
            generalized = _filter_by_frequent_parents(
                generalized, taxonomy, level, period, frequent_parent_letters
            )
        result = mine_single_period_hitset(generalized, period, conf)
        outcome.results[level] = result
        frequent_parent_letters = {
            letter
            for pattern in result
            for letter in pattern.letters
        }
    return outcome
