"""Command-line interface: ``ppm`` (or ``python -m repro``).

Subcommands
-----------
``generate``
    Produce a synthetic series (Section 5.1 generator) and save it.
``mine``
    Mine a series file for one period or a period range and print the
    frequent patterns.
``suggest``
    Score a period range and print the most promising periods.
``rules``
    Derive periodic association rules from one period's frequent patterns.
``cycles``
    Find perfect (confidence-1) cycles — the cyclic-association baseline.
``heatmap``
    Render the offsets-by-features confidence heatmap of one period.
``windows``
    Mine a sliding window and report pattern evolution between windows.
``stream``
    Mine windows continuously over a slot or event feed (file or stdin),
    emitting one JSON line per closed window.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.analysis.periodogram import suggest_periods
from repro.core.errors import ReproError
from repro.core.miner import PartialPeriodicMiner
from repro.core.result import MiningResult
from repro.synth.generator import SyntheticSpec
from repro.timeseries.io import load_series, save_series


def add_mining_args(
    parser: argparse.ArgumentParser,
    workers_help: str | None = None,
) -> None:
    """Install the mining-parameter options shared by ``mine`` and ``serve``.

    Both subcommands drive the same engine, so their knobs must stay in
    lockstep: confidence threshold, counting kernel, cache directory,
    engine workers/backend, the legacy-encoding escape hatch, and lenient
    loading.  ``workers_help`` overrides the ``--workers`` description
    where the sharding context differs.
    """
    parser.add_argument("--min-conf", type=float, default=0.5)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=workers_help
        or (
            "mine on the parallel engine with this many workers "
            "(hitset only; >1 shards the series, results are identical "
            "to the serial run)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="parallel execution backend used when --workers > 1",
    )
    parser.add_argument(
        "--no-encode",
        action="store_true",
        help=(
            "mine on the legacy letter-set kernels instead of the interned "
            "bitmask kernels (identical results; for bisecting regressions)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=("columnar", "batched", "legacy"),
        default="batched",
        help=(
            "counting kernel: 'columnar' runs both scans as vectorized "
            "numpy ops over the segment-store column (single encode pass; "
            "falls back to batched past 64 letters); 'batched' answers "
            "every candidate level from one superset-sum pass; 'legacy' "
            "keeps the per-candidate walks (identical results; for "
            "bisecting regressions)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "persist scan results (keyed by series fingerprint and period) "
            "so re-mining the same series at a different --min-conf answers "
            "from the cache without scanning; see docs/kernels.md"
        ),
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help=(
            "quarantine malformed series lines instead of failing the load "
            "(quarantined lines are reported on stderr)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ppm",
        description=(
            "Partial periodic pattern mining "
            "(Han, Dong & Yin, ICDE 1999 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic feature series"
    )
    generate.add_argument("output", help="path of the series file to write")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--period", type=int, default=50)
    generate.add_argument("--max-pat-length", type=int, default=6)
    generate.add_argument("--f1-size", type=int, default=12)
    generate.add_argument("--seed", type=int, default=0)

    mine = commands.add_parser("mine", help="mine a series file")
    mine.add_argument("input", help="series file (see repro.timeseries.io)")
    mine.add_argument("--period", type=int, help="single period to mine")
    mine.add_argument(
        "--period-range",
        type=int,
        nargs=2,
        metavar=("LOW", "HIGH"),
        help="inclusive period range (shared two-scan mining)",
    )
    add_mining_args(mine)
    mine.add_argument(
        "--algorithm", choices=("hitset", "apriori"), default="hitset"
    )
    mine.add_argument(
        "--maximal", action="store_true", help="print only maximal patterns"
    )
    mine.add_argument("--limit", type=int, default=25)
    mine.add_argument(
        "--json",
        metavar="PATH",
        help="also write the result as JSON (single-period mining only)",
    )
    mine.add_argument(
        "--store-dir",
        metavar="DIR",
        help=(
            "columnar kernel only: spill the encoded segment store to "
            "this directory once it crosses --spill-mb, and mine it as "
            "an mmap'd on-disk column in bounded memory (series larger "
            "than RAM mine at disk bandwidth; see docs/kernels.md)"
        ),
    )
    mine.add_argument(
        "--spill-mb",
        type=int,
        default=64,
        metavar="MIB",
        help=(
            "in-memory threshold before the columnar store spills to "
            "--store-dir (default 64 MiB; 0 spills unconditionally)"
        ),
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage wall times and cache counters after mining",
    )
    mine.add_argument(
        "--profile-json",
        metavar="PATH",
        help="also write the profile as JSON (implies --profile collection)",
    )
    mine.add_argument(
        "--resume",
        metavar="JOURNAL",
        help=(
            "checkpoint journal path: completed shards are recorded there "
            "and a rerun of the identical command skips them (the file is "
            "created on first use; see docs/resilience.md)"
        ),
    )
    mine.add_argument(
        "--shard-timeout",
        type=float,
        metavar="SECONDS",
        help="fail any shard that runs longer than this (then retry it)",
    )
    mine.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        help="extra attempts per failed shard (default 1)",
    )
    mine.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help=(
            "wall-clock budget for the whole run; with --resume, a run cut "
            "off by the deadline can be finished by rerunning"
        ),
    )
    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant mining service",
        description=(
            "Long-running HTTP/JSON query server over a pool of loaded "
            "series: admission control, query coalescing, per-tenant "
            "quotas, and a shared count cache; see docs/serve.md"
        ),
    )
    add_mining_args(
        serve,
        workers_help=(
            "engine workers used for each query (>1 shards every mine "
            "across the parallel engine)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listening port (0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--series",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="preload a series file under a name (repeatable)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="worker threads answering requests",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound: further requests are refused with 429",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request deadline (0 disables; exceeded requests get 504)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        metavar="RPS",
        help="per-tenant sustained requests/second (default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=8,
        help="per-tenant burst allowance on top of --rate",
    )
    serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=256,
        help="LRU bound on the shared count cache (0 = unbounded)",
    )
    serve.add_argument(
        "--tenant-cache-share",
        type=int,
        metavar="N",
        help=(
            "count-cache entries one tenant may own before its own oldest "
            "is evicted (default: no per-tenant share)"
        ),
    )
    serve.add_argument(
        "--result-cache-entries",
        type=int,
        default=1024,
        help="LRU bound on the serialized-result cache (0 disables it)",
    )
    serve.add_argument(
        "--max-streams",
        type=int,
        default=8,
        help="concurrent streaming sessions the server will hold",
    )
    serve.add_argument(
        "--stream-state-dir",
        help=(
            "persist open streaming sessions here on graceful shutdown "
            "and rehydrate them by name at startup (atomic, checksummed "
            "snapshots via repro.durability)"
        ),
    )

    suggest = commands.add_parser(
        "suggest", help="rank promising periods in a range"
    )
    suggest.add_argument("input")
    suggest.add_argument(
        "--period-range",
        type=int,
        nargs=2,
        metavar=("LOW", "HIGH"),
        required=True,
    )
    suggest.add_argument("--min-conf", type=float, default=0.5)
    suggest.add_argument("--limit", type=int, default=5)

    rules = commands.add_parser(
        "rules", help="derive periodic association rules for one period"
    )
    rules.add_argument("input")
    rules.add_argument("--period", type=int, required=True)
    rules.add_argument("--min-conf", type=float, default=0.5)
    rules.add_argument("--min-rule-conf", type=float, default=0.7)
    rules.add_argument("--limit", type=int, default=15)
    rules.add_argument(
        "--about", help="only rules whose consequent mentions this feature"
    )

    cycles = commands.add_parser(
        "cycles", help="find perfect (confidence-1) cycles in a period range"
    )
    cycles.add_argument("input")
    cycles.add_argument(
        "--period-range",
        type=int,
        nargs=2,
        metavar=("LOW", "HIGH"),
        required=True,
    )

    heatmap = commands.add_parser(
        "heatmap", help="render the 1-pattern confidence heatmap of a period"
    )
    heatmap.add_argument("input")
    heatmap.add_argument("--period", type=int, required=True)
    heatmap.add_argument("--max-features", type=int, default=15)

    windows = commands.add_parser(
        "windows", help="mine a sliding window and report pattern evolution"
    )
    windows.add_argument("input")
    windows.add_argument("--period", type=int, required=True)
    windows.add_argument("--min-conf", type=float, default=0.5)
    windows.add_argument("--window-periods", type=int, required=True)
    windows.add_argument("--step-periods", type=int)
    windows.add_argument("--tolerance", type=float, default=0.05)

    stream = commands.add_parser(
        "stream",
        help="mine windows continuously over a slot or event feed",
        description=(
            "Windowed streaming mining (repro.streaming): reads a slot "
            "feed (series-file lines) or, with --events, a timed event "
            "feed, and emits one JSON object per closed window — exact "
            "patterns plus the change diff against the previous window"
        ),
    )
    stream.add_argument(
        "input", help="feed file, or '-' to read from stdin"
    )
    stream.add_argument("--period", type=int, required=True)
    stream.add_argument(
        "--window",
        type=int,
        required=True,
        help="window size in slots (>= period)",
    )
    stream.add_argument(
        "--slide",
        type=int,
        help=(
            "slots between window starts (default: --window, i.e. "
            "tumbling; must be a multiple of --period)"
        ),
    )
    stream.add_argument("--min-conf", type=float, default=0.5)
    stream.add_argument(
        "--strategy",
        choices=("decrement", "ring"),
        default="decrement",
        help=(
            "segment retirement strategy: 'decrement' maintains one "
            "running summary and subtracts aged-out segments; 'ring' "
            "keeps per-segment partials and folds them per window"
        ),
    )
    stream.add_argument("--max-letters", type=int)
    stream.add_argument(
        "--kernel",
        choices=("columnar", "batched", "legacy"),
        default="batched",
        help=(
            "per-window counting kernel (results identical across "
            "kernels); with --checkpoint-dir the stream stays on the "
            "default so old checkpoints resume unchanged"
        ),
    )
    stream.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="minimum confidence move reported as strengthened/weakened",
    )
    stream.add_argument(
        "--events",
        action="store_true",
        help=(
            "input lines are 'TIME FEATURE [FEATURE...]' events, possibly "
            "out of order; they are reordered into slots under the "
            "--lateness watermark"
        ),
    )
    stream.add_argument(
        "--slot-width",
        type=float,
        default=1.0,
        help="event-time duration of one slot (with --events)",
    )
    stream.add_argument(
        "--origin",
        type=float,
        default=0.0,
        help="event time of slot 0 (with --events)",
    )
    stream.add_argument(
        "--lateness",
        type=float,
        default=0.0,
        help=(
            "bounded-lateness allowance: events may trail the newest "
            "event by this much and still count; older ones are "
            "quarantined and reported (with --events)"
        ),
    )
    stream.add_argument(
        "--checkpoint-dir",
        help=(
            "durable checkpoint directory (repro.durability): every "
            "input record is write-ahead logged and state snapshots "
            "rotate, so a killed run resumes exactly with --resume"
        ),
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from --checkpoint-dir: restore the newest valid "
            "snapshot, replay the WAL tail, and skip the feed records "
            "already logged (requires --checkpoint-dir)"
        ),
    )
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="input records between snapshots (with --checkpoint-dir)",
    )
    stream.add_argument(
        "--out",
        help=(
            "write window JSONL here instead of stdout; with "
            "--checkpoint-dir the file is an exactly-once sink (torn "
            "tail truncated, replayed windows deduplicated on resume)"
        ),
    )

    lint = commands.add_parser(
        "lint",
        help="run the repro.devtools static analysis suite",
        description=(
            "Domain-aware static analysis (fork-safety, pattern "
            "immutability, determinism, API hygiene); see docs/devtools.md"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument("--select", metavar="IDS")
    lint.add_argument("--ignore", metavar="IDS")
    lint.add_argument("--strict", action="store_true")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--project",
        action="store_true",
        help="whole-program analysis (call graph + transitive effects)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="fail only on findings not recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the accepted baseline and exit",
    )
    lint.add_argument("--list-rules", action="store_true")

    fuzz = commands.add_parser(
        "fuzz",
        help="differentially fuzz the counting kernels against each other",
        description=(
            "Coverage-guided differential fuzzing: randomized series are "
            "mined through every kernel tier (columnar, batched, legacy) "
            "plus a brute-force oracle, and the store primitives are "
            "cross-checked against naive recomputation; any divergence "
            "is a bug.  --self-check injects known kernel bugs and fails "
            "unless the fuzzer catches every one."
        ),
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=200,
        help="number of fuzz cases to execute (default 200)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="corpus seed (default 0)"
    )
    fuzz.add_argument(
        "--self-check",
        action="store_true",
        help=(
            "mutation-test the fuzzer itself: inject known columnar bugs "
            "and require a divergence for each"
        ),
    )
    fuzz.add_argument(
        "--json", metavar="FILE", help="also write the report as JSON"
    )
    return parser


def _run_generate(args: argparse.Namespace) -> int:
    spec = SyntheticSpec(
        length=args.length,
        period=args.period,
        max_pat_length=args.max_pat_length,
        f1_size=args.f1_size,
        seed=args.seed,
    )
    generated = spec.generate()
    save_series(generated.series, args.output)
    print(f"wrote {args.length} slots to {args.output}")
    print(f"planted pattern: {generated.planted_pattern}")
    print(f"recommended --min-conf: {generated.recommended_min_conf:.2f}")
    return 0


def _print_result(result: MiningResult, limit: int, maximal: bool) -> None:
    counts = result.maximal_patterns() if maximal else dict(result.items())
    rows = sorted(
        counts.items(), key=lambda item: (-item[1], str(item[0]))
    )[:limit]
    kind = "maximal frequent" if maximal else "frequent"
    print(
        f"period {result.period}: {len(counts)} {kind} patterns "
        f"(m={result.num_periods}, scans={result.stats.scans})"
    )
    for pattern, count in rows:
        confidence = count / result.num_periods
        print(f"  {str(pattern):<40} count={count:<8} conf={confidence:.3f}")


def _resilience_from_args(args: argparse.Namespace):
    """The ResilienceContext the mine flags describe, or ``None``."""
    if (
        args.shard_timeout is None
        and args.deadline is None
        and args.max_retries is None
    ):
        return None
    from repro.resilience import Deadline, ResilienceContext, RetryPolicy

    policy = RetryPolicy(
        max_attempts=2 if args.max_retries is None else args.max_retries + 1
    )
    return ResilienceContext(
        policy=policy,
        shard_timeout_s=args.shard_timeout,
        deadline=(
            None if args.deadline is None else Deadline.start(args.deadline)
        ),
    )


def _load_mine_series(args: argparse.Namespace):
    """Load the input series, quarantining bad lines under ``--lenient``."""
    if not args.lenient:
        return load_series(args.input)
    from repro.timeseries.io import LoadReport

    report = LoadReport()
    series = load_series(args.input, strict=False, report=report)
    for item in report.quarantined[:10]:
        print(f"warning: quarantined {item.describe()}", file=sys.stderr)
    if len(report.quarantined) > 10:
        print(
            f"warning: ... and {len(report.quarantined) - 10} more "
            "quarantined lines",
            file=sys.stderr,
        )
    return series


def _print_engine(engine) -> None:
    """The engine summary plus any degradation events."""
    print(f"  [{engine.summary()}]")
    for event in engine.degradations:
        print(f"  [degraded {event.describe()}]")


def _run_mine(args: argparse.Namespace) -> int:
    if (args.period is None) == (args.period_range is None):
        print("specify exactly one of --period or --period-range", file=sys.stderr)
        return 2
    if args.workers > 1 and args.maximal:
        print("--workers does not combine with --maximal", file=sys.stderr)
        return 2
    if args.maximal and (
        args.resume
        or args.shard_timeout is not None
        or args.deadline is not None
        or args.max_retries is not None
    ):
        print(
            "--maximal runs serially; it does not combine with --resume, "
            "--shard-timeout, --max-retries or --deadline",
            file=sys.stderr,
        )
        return 2
    if args.cache_dir and args.kernel == "legacy":
        print(
            "--cache-dir requires the batched kernel (drop --kernel legacy)",
            file=sys.stderr,
        )
        return 2
    if args.store_dir is not None:
        if args.kernel != "columnar":
            print(
                "--store-dir requires --kernel columnar (the spill file "
                "is the columnar kernel's mmap'd column)",
                file=sys.stderr,
            )
            return 2
        if args.period is None:
            print("--store-dir requires --period", file=sys.stderr)
            return 2
        if args.workers > 1 or args.maximal or args.no_encode:
            print(
                "--store-dir applies to serial encoded columnar mining "
                "(not --workers, --maximal or --no-encode)",
                file=sys.stderr,
            )
            return 2
        if args.spill_mb < 0:
            print("--spill-mb must be >= 0", file=sys.stderr)
            return 2
    wants_profile = args.profile or args.profile_json is not None
    if (args.cache_dir or wants_profile) and args.period is None:
        print(
            "--cache-dir and --profile require --period", file=sys.stderr
        )
        return 2
    if (args.cache_dir or wants_profile) and (
        args.maximal or args.algorithm != "hitset"
    ):
        print(
            "--cache-dir and --profile apply to hitset mining only "
            "(not --maximal or --algorithm apriori)",
            file=sys.stderr,
        )
        return 2
    series = _load_mine_series(args)
    miner = PartialPeriodicMiner(
        series, min_conf=args.min_conf, algorithm=args.algorithm
    )
    started = time.perf_counter()
    encode = not args.no_encode
    resilience = _resilience_from_args(args)
    cache = None
    if args.cache_dir:
        from repro.kernels.cache import CountCache

        cache = CountCache(args.cache_dir)
    profile = None
    if wants_profile:
        from repro.kernels.profile import MiningProfile

        profile = MiningProfile()
    store = None
    if args.store_dir is not None:
        from repro.kernels.store import StoreOptions

        store = StoreOptions(
            directory=args.store_dir,
            spill_bytes=args.spill_mb * 1024 * 1024,
        )
    if args.period is not None:
        if args.maximal:
            result = miner.mine_maximal(args.period, encode=encode)
        else:
            result = miner.mine(
                args.period,
                workers=args.workers,
                backend=args.backend,
                encode=encode,
                kernel=args.kernel,
                cache=cache,
                profile=profile,
                resilience=resilience,
                journal_path=args.resume,
                store=store,
            )
        _print_result(result, args.limit, args.maximal)
        if result.engine is not None:
            _print_engine(result.engine)
        if cache is not None:
            print(f"  [cache {cache.stats.summary()}]")
        if profile is not None and args.profile:
            print(profile.table())
        if profile is not None and args.profile_json:
            import json

            with open(args.profile_json, "w", encoding="utf-8") as handle:
                json.dump(profile.to_json(), handle, indent=2)
                handle.write("\n")
            print(f"profile written to {args.profile_json}")
        if args.json:
            from repro.core.serialize import save_result

            save_result(result, args.json)
            print(f"result written to {args.json}")
    else:
        if args.json:
            print("--json requires --period", file=sys.stderr)
            return 2
        low, high = args.period_range
        outcome = miner.mine_range(
            low,
            high,
            workers=args.workers,
            backend=args.backend,
            encode=encode,
            kernel=args.kernel,
            resilience=resilience,
            journal_path=args.resume,
        )
        print(outcome.summary())
        if outcome.engine is not None:
            _print_engine(outcome.engine)
        for period, pattern, confidence in outcome.best_patterns(args.limit):
            print(
                f"  period={period:<4} {str(pattern):<40} conf={confidence:.3f}"
            )
    elapsed = time.perf_counter() - started
    print(f"({elapsed:.2f}s)")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import MiningApp, ServeConfig
    from repro.serve.server import MiningServer

    config = ServeConfig(
        min_conf=args.min_conf,
        kernel=args.kernel,
        encode=not args.no_encode,
        mine_workers=args.workers,
        backend=args.backend,
        concurrency=args.concurrency,
        max_pending=args.max_pending,
        request_timeout_s=(
            None if args.request_timeout == 0 else args.request_timeout
        ),
        rate_limit=args.rate,
        rate_burst=args.burst,
        cache_dir=args.cache_dir,
        cache_max_entries=(
            None if args.cache_max_entries == 0 else args.cache_max_entries
        ),
        tenant_cache_share=args.tenant_cache_share,
        result_cache_entries=args.result_cache_entries,
        lenient=args.lenient,
        max_streams=args.max_streams,
        stream_state_dir=args.stream_state_dir,
    )
    app = MiningApp(config)
    for item in args.series:
        name, sep, path = item.partition("=")
        if not sep or not name or not path:
            print(
                f"--series expects NAME=PATH, got {item!r}", file=sys.stderr
            )
            return 2
        loaded = app.registry.load(name, path, lenient=args.lenient)
        print(
            f"loaded {loaded.name}: {loaded.slots} slots "
            f"(fingerprint {loaded.fingerprint})"
        )

    async def _serve() -> None:
        server = MiningServer(app, host=args.host, port=args.port)
        await server.start()
        print(f"ppm serve listening on http://{server.address}")
        print(
            "POST /mine /stream /stream/<name> | "
            "GET /series /stats /healthz | POST /shutdown"
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _run_suggest(args: argparse.Namespace) -> int:
    series = load_series(args.input)
    low, high = args.period_range
    scores = suggest_periods(
        series, low, high, min_conf=args.min_conf, limit=args.limit
    )
    print(f"top periods in [{low}, {high}]:")
    for item in scores:
        print(
            f"  period={item.period:<5} score={item.score:8.3f} "
            f"frequent_letters={item.frequent_letters:<4} "
            f"best_conf={item.best_confidence:.3f}"
        )
    return 0


def _run_rules(args: argparse.Namespace) -> int:
    from repro.rules.periodic_rules import derive_rules, rules_about

    series = load_series(args.input)
    result = PartialPeriodicMiner(series, min_conf=args.min_conf).mine(
        args.period
    )
    rules = derive_rules(result, min_rule_conf=args.min_rule_conf)
    if args.about:
        rules = rules_about(rules, args.about)
    print(
        f"{len(rules)} periodic rules at period {args.period} "
        f"(pattern conf >= {args.min_conf}, rule conf >= {args.min_rule_conf})"
    )
    for rule in rules[: args.limit]:
        print(f"  {rule}")
    return 0


def _run_cycles(args: argparse.Namespace) -> int:
    from repro.rules.cyclic import find_perfect_cycles, perfect_patterns

    series = load_series(args.input)
    low, high = args.period_range
    cycles, stats = find_perfect_cycles(series, max_period=high, min_period=low)
    print(
        f"{len(cycles)} perfect cycles in periods [{low}, {high}] "
        f"({stats.eliminated} candidates eliminated)"
    )
    for period, pattern in perfect_patterns(cycles).items():
        print(f"  period={period:<4} {pattern}")
    return 0


def _run_heatmap(args: argparse.Namespace) -> int:
    from repro.analysis.visualize import confidence_heatmap

    series = load_series(args.input)
    print(
        confidence_heatmap(
            series, args.period, max_features=args.max_features
        )
    )
    return 0


def _run_windows(args: argparse.Namespace) -> int:
    from repro.analysis.evolution import evolution_report, mine_windows

    series = load_series(args.input)
    windows = mine_windows(
        series,
        args.period,
        args.min_conf,
        window_periods=args.window_periods,
        step_periods=args.step_periods,
    )
    print(
        f"{len(windows)} windows of {args.window_periods} periods "
        f"(period {args.period}, min_conf {args.min_conf})"
    )
    for window in windows:
        print(
            f"  window {window.index}: slots "
            f"[{window.start_slot}, {window.end_slot}) "
            f"frequent={len(window.result)}"
        )
    for index, diff in evolution_report(windows, tolerance=args.tolerance):
        if diff.is_stable:
            continue
        print(f"  window {index - 1} -> {index}:")
        for pattern in diff.emerged[:5]:
            print(f"    emerged   {pattern}")
        for pattern in diff.vanished[:5]:
            print(f"    vanished  {pattern}")
        for change in (diff.strengthened + diff.weakened)[:5]:
            print(
                f"    moved     {change.pattern} "
                f"{change.before:.2f} -> {change.after:.2f}"
            )
    return 0


def _run_stream(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import StreamError
    from repro.streaming import ArrivalBuffer, StreamingMiner, window_to_dict

    if args.resume and not args.checkpoint_dir:
        raise StreamError("--resume requires --checkpoint-dir")
    if args.checkpoint_dir:
        if args.kernel != "batched":
            # The durable config is compared for exact equality on
            # resume; threading a kernel through it would strand every
            # checkpoint written before the columnar tier existed.
            raise StreamError(
                "--checkpoint-dir streams run on the default kernel "
                "(drop --kernel)"
            )
        return _run_stream_durable(args)

    miner = StreamingMiner(
        period=args.period,
        window=args.window,
        slide=args.slide,
        min_conf=args.min_conf,
        retirement=args.strategy,
        max_letters=args.max_letters,
        change_tolerance=args.tolerance,
        kernel=args.kernel,
    )

    out_handle = None
    if args.out:
        out_handle = open(args.out, "w", encoding="utf-8")

    def emit(windows) -> None:
        for window in windows:
            line = json.dumps(window_to_dict(window))
            if out_handle is None:
                print(line, flush=True)
            else:
                out_handle.write(line + "\n")
                out_handle.flush()

    if args.input == "-":
        handle = sys.stdin
    else:
        try:
            handle = open(args.input, encoding="utf-8")
        except OSError as error:
            raise StreamError(f"cannot read feed: {error}") from error
    try:
        if args.events:
            buffer = ArrivalBuffer(
                slot_width=args.slot_width,
                start=args.origin,
                lateness=args.lateness,
            )
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                try:
                    when = float(fields[0])
                except ValueError:
                    raise StreamError(
                        f"{args.input}:{number}: event lines start with "
                        f"a timestamp, got {fields[0]!r}"
                    ) from None
                for feature in fields[1:]:
                    buffer.add(when, feature)
                emit(miner.extend(buffer.drain()))
            emit(miner.extend(buffer.flush()))
            report = buffer.report
            if not report.clean:
                print(
                    f"warning: quarantined {report.total} late events",
                    file=sys.stderr,
                )
                for sample in report.samples[:5]:
                    print(
                        f"warning:   {sample.describe()}", file=sys.stderr
                    )
        else:
            for line in handle:
                line = line.strip()
                if line.startswith("#"):
                    continue
                window = miner.append(frozenset(line.split()))
                if window is not None:
                    emit([window])
    finally:
        if handle is not sys.stdin:
            handle.close()
        if out_handle is not None:
            out_handle.close()
    print(
        f"stream done: {miner.slots_seen} slots in, "
        f"{miner.windows_emitted} windows out "
        f"({miner.strategy.name} retirement)",
        file=sys.stderr,
    )
    return 0


def _run_stream_durable(args: argparse.Namespace) -> int:
    """The ``--checkpoint-dir`` path: WAL-logged, snapshotted, resumable."""
    import json
    from pathlib import Path

    from repro.core.errors import DurabilityError, StreamError
    from repro.durability import DurableStream
    from repro.resilience.chaos import file_chaos_from_env
    from repro.streaming import window_to_dict

    directory = Path(args.checkpoint_dir)
    if (
        not args.resume
        and directory.is_dir()
        and any(directory.iterdir())
    ):
        raise DurabilityError(
            f"{directory} already holds checkpoint state; pass --resume "
            "to continue that run, or point at a fresh directory"
        )
    stream = DurableStream(
        directory,
        period=args.period,
        window=args.window,
        slide=args.slide,
        min_conf=args.min_conf,
        strategy=args.strategy,
        max_letters=args.max_letters,
        tolerance=args.tolerance,
        events=args.events,
        slot_width=args.slot_width,
        origin=args.origin,
        lateness=args.lateness,
        checkpoint_every=args.checkpoint_every,
        out=args.out,
        chaos=file_chaos_from_env(),
    )
    if stream.recovery is not None:
        print(f"resume: {stream.recovery.describe()}", file=sys.stderr)
    for window in stream.replayed_windows:
        # No durable sink to deduplicate against: replayed windows are
        # re-printed (at-least-once on stdout; use --out for exactly-once).
        print(json.dumps(window_to_dict(window)), flush=True)

    skip = stream.records_logged
    if args.input == "-":
        handle = sys.stdin
    else:
        try:
            handle = open(args.input, encoding="utf-8")
        except OSError as error:
            raise StreamError(f"cannot read feed: {error}") from error
    seen = 0
    try:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line.startswith("#") or (args.events and not line):
                continue
            if args.events:
                fields = line.split()
                try:
                    when = float(fields[0])
                except ValueError:
                    raise StreamError(
                        f"{args.input}:{number}: event lines start with "
                        f"a timestamp, got {fields[0]!r}"
                    ) from None
                record: object = [when, fields[1:]]
            else:
                record = sorted(set(line.split()))
            seen += 1
            if seen <= skip:
                continue  # already write-ahead logged by the killed run
            for window in stream.feed(record):
                if stream.sink is None:
                    print(
                        json.dumps(window_to_dict(window)), flush=True
                    )
    finally:
        if handle is not sys.stdin:
            handle.close()
    for window in stream.finish():
        if stream.sink is None:
            print(json.dumps(window_to_dict(window)), flush=True)
    if args.events and stream.buffer is not None:
        report = stream.buffer.report
        if not report.clean:
            print(
                f"warning: quarantined {report.total} late events",
                file=sys.stderr,
            )
            for sample in report.samples[:5]:
                print(f"warning:   {sample.describe()}", file=sys.stderr)
    miner = stream.miner
    print(
        f"stream done: {miner.slots_seen} slots in, "
        f"{miner.windows_emitted} windows out "
        f"({miner.strategy.name} retirement; "
        f"{stream.records_logged} records logged)",
        file=sys.stderr,
    )
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.devtools.cli import _print_catalog
    from repro.devtools.cli import run as lint_run

    if args.list_rules:
        _print_catalog()
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    return lint_run(
        paths,
        select=args.select,
        ignore=args.ignore,
        strict=args.strict,
        output_format=args.format,
        project=args.project,
        baseline=args.baseline,
        write_baseline_to=args.write_baseline,
    )


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.devtools.fuzz import fuzz, mutation_check

    if args.budget <= 0:
        print("--budget must be positive", file=sys.stderr)
        return 2
    started = time.perf_counter()
    report = fuzz(args.budget, seed=args.seed)
    print(report.summary())
    for divergence in report.divergences[:10]:
        described = divergence.describe()
        print(f"  {described['stage']}: {described['detail']}")
        print(f"    case: {described['case']}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json}")
    exit_code = 0 if report.ok else 1
    if args.self_check:
        caught = mutation_check(seed=args.seed)
        missed = sorted(name for name, hit in caught.items() if not hit)
        if missed:
            print(
                "self-check FAILED; injected bugs not caught: "
                + ", ".join(missed),
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(
                f"self-check ok: {len(caught)} injected kernel bugs, "
                "all caught"
            )
    print(f"({time.perf_counter() - started:.2f}s)")
    return exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _run_generate,
        "mine": _run_mine,
        "serve": _run_serve,
        "suggest": _run_suggest,
        "rules": _run_rules,
        "cycles": _run_cycles,
        "heatmap": _run_heatmap,
        "windows": _run_windows,
        "stream": _run_stream,
        "lint": _run_lint,
        "fuzz": _run_fuzz,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
