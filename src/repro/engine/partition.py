"""Partitioning a feature series into contiguous segment shards.

A shard is a run of whole period segments ``[start_segment, start_segment +
num_segments)`` together with a private copy of exactly those slots
(:meth:`FeatureSeries.slice_segments`), so shipping the shard to a worker
process pickles only its chunk of the data.  Shard ids are assigned in
segment order and are stable for a given ``(series length, period, plan)``,
which keeps per-shard statistics and error reports reproducible.

Only whole segments are partitioned; the trailing ``len(series) mod period``
slots belong to no segment (the paper's ``m = floor(N/p)`` convention) and
are dropped exactly as the serial miners drop them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EngineError
from repro.encoding.codec import SegmentEncoder
from repro.encoding.vocabulary import LetterVocabulary
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True)
class SegmentShard:
    """One contiguous chunk of whole period segments.

    Attributes
    ----------
    shard_id:
        Stable 0-based id, ascending with ``start_segment``.
    period:
        The period the shard was cut for.
    start_segment:
        Index of the shard's first segment in the full series.
    num_segments:
        Whole segments in the shard (always >= 1).
    series:
        The shard's own slots — ``num_segments * period`` of them.
    """

    shard_id: int
    period: int
    start_segment: int
    num_segments: int
    series: FeatureSeries

    @property
    def start_slot(self) -> int:
        """First slot index of the shard in the full series."""
        return self.start_segment * self.period

    @property
    def num_slots(self) -> int:
        """Slots carried by the shard."""
        return self.num_segments * self.period

    def __len__(self) -> int:
        return self.num_segments

    def __repr__(self) -> str:
        return (
            f"SegmentShard(id={self.shard_id}, period={self.period}, "
            f"segments=[{self.start_segment}, "
            f"{self.start_segment + self.num_segments}))"
        )


@dataclass(frozen=True)
class EncodedShard:
    """A shard's segments pre-encoded as bitmasks over one vocabulary.

    The encoded twin of :class:`SegmentShard`: same identity fields, but
    the slots are replaced by one int mask per segment.  Masks from shards
    sharing a vocabulary merge by plain counter addition; shards encoded
    against *different* vocabularies are reconciled with
    :meth:`~repro.encoding.vocabulary.LetterVocabulary.remap_table`.
    Pickling ships small ints plus one letter tuple instead of slot sets.
    """

    shard_id: int
    period: int
    start_segment: int
    num_segments: int
    vocab: LetterVocabulary
    masks: tuple[int, ...]

    def __len__(self) -> int:
        return self.num_segments

    def __repr__(self) -> str:
        return (
            f"EncodedShard(id={self.shard_id}, period={self.period}, "
            f"segments=[{self.start_segment}, "
            f"{self.start_segment + self.num_segments}), "
            f"letters={len(self.vocab)})"
        )


def encode_shard(
    shard: SegmentShard, vocab: LetterVocabulary
) -> EncodedShard:
    """Encode a shard's segments against a fixed vocabulary (one pass).

    Letters outside ``vocab`` are dropped by the encoder — encoding *is*
    the projection onto ``C_max`` when ``vocab`` holds the ``C_max``
    letters, so the masks are exactly the shard's segment hits.
    """
    encoder = SegmentEncoder(vocab, shard.period)
    return EncodedShard(
        shard_id=shard.shard_id,
        period=shard.period,
        start_segment=shard.start_segment,
        num_segments=shard.num_segments,
        vocab=vocab,
        masks=tuple(encoder.encode_series(shard.series)),
    )


def plan_chunks(
    num_segments: int,
    num_shards: int | None = None,
    chunk_size: int | None = None,
) -> list[tuple[int, int]]:
    """The ``(start, stop)`` segment ranges of a partition plan.

    Exactly one sizing knob applies: ``chunk_size`` fixes the segments per
    shard (the last shard may be smaller); otherwise ``num_shards`` splits
    as evenly as possible (sizes differ by at most one), clipped so no
    shard is empty.

    >>> plan_chunks(10, num_shards=4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    >>> plan_chunks(10, chunk_size=4)
    [(0, 4), (4, 8), (8, 10)]
    """
    if num_segments < 1:
        raise EngineError(f"nothing to partition: {num_segments} segments")
    if chunk_size is not None:
        if num_shards is not None:
            raise EngineError("pass either num_shards or chunk_size, not both")
        if chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
        return [
            (start, min(start + chunk_size, num_segments))
            for start in range(0, num_segments, chunk_size)
        ]
    shards = 1 if num_shards is None else num_shards
    if shards < 1:
        raise EngineError(f"num_shards must be >= 1, got {shards}")
    shards = min(shards, num_segments)
    base, extra = divmod(num_segments, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def partition_segments(
    series: FeatureSeries,
    period: int,
    num_shards: int | None = None,
    chunk_size: int | None = None,
) -> list[SegmentShard]:
    """Split a series into contiguous segment shards with stable ids.

    Every whole segment lands in exactly one shard and shard order follows
    segment order, so concatenating the shards' slots reproduces the first
    ``m * period`` slots of the series.

    >>> shards = partition_segments(
    ...     FeatureSeries.from_symbols("abdabcabd"), 3, num_shards=2
    ... )
    >>> [(s.shard_id, s.start_segment, s.num_segments) for s in shards]
    [(0, 0, 2), (1, 2, 1)]
    """
    num_segments = series.num_periods(period)
    if num_segments == 0:
        raise EngineError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    return [
        SegmentShard(
            shard_id=shard_id,
            period=period,
            start_segment=start,
            num_segments=stop - start,
            series=series.slice_segments(period, start, stop),
        )
        for shard_id, (start, stop) in enumerate(
            plan_chunks(num_segments, num_shards=num_shards, chunk_size=chunk_size)
        )
    ]
