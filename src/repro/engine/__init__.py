"""repro.engine — sharded parallel mining with mergeable partial results.

The max-subpattern hit-set method (Algorithm 3.2) is two associative passes
over period segments: scan 1 counts letters into a ``Counter`` and scan 2
registers per-segment hits in a :class:`~repro.tree.MaxSubpatternTree`.
Both states are additive over disjoint segment sets, so the series can be
split into contiguous segment shards, each shard mined independently, and
the partial results merged — producing output letter-for-letter identical
to the serial miner.

Layout
------
``partition``
    Split a :class:`~repro.timeseries.feature_series.FeatureSeries` into
    contiguous :class:`SegmentShard` chunks with stable shard ids.
``worker``
    The picklable per-shard work functions (letter counting, hit
    collection, whole-period mining) executed on the workers.
``merge``
    Deterministic merging of partial counters and partial trees.
``executor``
    Pluggable serial / thread / process backends behind one interface,
    with per-shard error capture and serial-retry degradation.
``parallel``
    The :class:`ParallelMiner` facade: ``mine(period, workers=N)`` and
    per-period fan-out for period ranges.
``stats``
    Per-shard timings and scan accounting, surfaced on the result.

Quickstart
----------
>>> from repro.engine import ParallelMiner
>>> miner = ParallelMiner("abdabcabdabc", min_conf=0.9)
>>> sorted(str(p) for p in miner.mine(3, workers=2))
['*b*', 'a**', 'ab*']
"""

from repro.engine.executor import (
    BackendLadder,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ShardOutcome,
    ThreadBackend,
    resolve_backend,
    run_shards,
    visible_cpus,
)
from repro.engine.merge import (
    hits_to_tree,
    hits_to_tree_letters,
    merge_counters,
    merge_hit_counters,
    merge_trees,
)
from repro.engine.parallel import ParallelMiner
from repro.engine.partition import (
    EncodedShard,
    SegmentShard,
    encode_shard,
    partition_segments,
    plan_chunks,
)
from repro.engine.stats import DegradationEvent, EngineStats, ShardStats
from repro.engine.worker import (
    collect_shard_hits,
    collect_shard_hits_legacy,
    count_shard_letters,
    mine_period_task,
)

__all__ = [
    "BackendLadder",
    "DegradationEvent",
    "EncodedShard",
    "EngineStats",
    "ExecutionBackend",
    "ParallelMiner",
    "ProcessBackend",
    "SegmentShard",
    "SerialBackend",
    "ShardOutcome",
    "ShardStats",
    "ThreadBackend",
    "collect_shard_hits",
    "collect_shard_hits_legacy",
    "count_shard_letters",
    "encode_shard",
    "hits_to_tree",
    "hits_to_tree_letters",
    "merge_counters",
    "merge_hit_counters",
    "merge_trees",
    "mine_period_task",
    "partition_segments",
    "plan_chunks",
    "resolve_backend",
    "run_shards",
    "visible_cpus",
]
