"""Deterministic merging of per-shard partial results.

Both states the hit-set miner derives from the data are associative and
commutative over disjoint segment sets:

* scan 1 produces a letter ``Counter`` — counters add;
* scan 2 produces per-segment hits — the max-subpattern tree's node counts
  add (:meth:`~repro.tree.max_subpattern_tree.MaxSubpatternTree.merge`).

So any grouping or ordering of shard merges yields the same totals, and the
merged state is *exactly* the serial miner's state — not an approximation.
The equivalence suite (``tests/test_engine.py``) asserts this letter for
letter against :func:`repro.core.hitset.mine_single_period_hitset`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from functools import reduce

from repro.core.errors import EngineError
from repro.core.pattern import Letter, Pattern
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.tree.max_subpattern_tree import MaxSubpatternTree


def merge_counters(counters: Iterable[Counter]) -> Counter:
    """Sum partial letter counters (scan-1 state) into one.

    >>> merge_counters([Counter(a=1), Counter(a=2, b=1)])
    Counter({'a': 3, 'b': 1})
    """
    merged: Counter = Counter()
    for counter in counters:
        merged.update(counter)
    return merged


def merge_hit_counters(counters: Iterable[Counter]) -> Counter:
    """Sum partial hit-mask counters (scan-2 state) into one.

    All inputs must share one bit order (the run's sorted ``C_max``
    letters), which :class:`~repro.engine.parallel.ParallelMiner`
    guarantees by fixing the order before fan-out.
    """
    return merge_counters(counters)


def hits_to_tree(
    period: int,
    letter_order: Sequence[Letter],
    hit_counter: Mapping[int, int],
) -> MaxSubpatternTree:
    """Materialize a hit-mask counter as a max-subpattern tree.

    ``hit_counter`` is any mask-to-count mapping — a scan-2 ``Counter``
    from the workers or a plain dict loaded from the
    :class:`~repro.kernels.cache.CountCache`.

    One :meth:`~repro.tree.max_subpattern_tree.MaxSubpatternTree.insert_mask`
    per *distinct* mask — on periodic data distinct hits are far fewer than
    segments, so this is also where the engine's single-shard speed
    advantage over the per-segment serial insertion comes from.  When
    ``letter_order`` is already sorted (the engine always sorts before
    fan-out) its bit order coincides with the tree vocabulary's and masks
    insert untranslated; otherwise they are remapped first.
    """
    if not letter_order:
        raise EngineError("cannot build a tree for an empty C_max")
    tree = MaxSubpatternTree(Pattern.from_letters(period, letter_order))
    wire_vocab = LetterVocabulary(letter_order, period=period)
    if wire_vocab == tree.vocab:
        for mask, count in hit_counter.items():
            tree.insert_mask(mask, count=count)
    else:
        table = wire_vocab.remap_table(tree.vocab)
        for mask, count in hit_counter.items():
            tree.insert_mask(remap_mask(mask, table), count=count)
    return tree


def hits_to_tree_letters(
    period: int,
    letter_order: Sequence[Letter],
    hit_counter: Counter,
) -> MaxSubpatternTree:
    """Letter-tuple counterpart of :func:`hits_to_tree` (bisection path).

    Consumes the payload of
    :func:`~repro.engine.worker.collect_shard_hits_legacy`: a counter keyed
    by sorted letter tuples instead of bitmasks.
    """
    if not letter_order:
        raise EngineError("cannot build a tree for an empty C_max")
    tree = MaxSubpatternTree(Pattern.from_letters(period, letter_order))
    for letters, count in hit_counter.items():
        tree.insert_letters(letters, count=count)
    return tree


def merge_trees(trees: Sequence[MaxSubpatternTree]) -> MaxSubpatternTree:
    """Fold partial trees left-to-right into the first one.

    The fold order does not affect any count (merging is commutative and
    associative); it only determines which tree object is mutated and
    returned.
    """
    if not trees:
        raise EngineError("no partial trees to merge")
    return reduce(lambda left, right: left.merge(right), trees)
