"""Picklable per-shard work functions executed on the workers.

Every function here takes one picklable task object and returns one
picklable payload, so the same callables run unchanged on the serial,
thread, and process backends.  Nothing in this module touches global state:
a shard's output depends only on its task, which is what makes the merged
result deterministic regardless of scheduling order.

The scan-2 kernel works on integer bitmasks over the ``C_max`` letters
(one bit per letter in sorted-letter order) instead of per-segment
``frozenset`` algebra: a segment's hit is accumulated with ``mask |= bit``
lookups and identical hits collapse in a ``Counter`` keyed by the mask.
Decoding back to letter sets happens once per *distinct* hit at merge time
(:func:`repro.engine.merge.hits_to_tree`), not once per segment.
"""

from __future__ import annotations

from collections import Counter

from repro.core.counting import min_count
from repro.core.pattern import Letter
from repro.engine.partition import SegmentShard

#: Scan-1 task: just the shard (the period rides on it).
LetterTask = SegmentShard

#: Scan-2 task: the shard plus the sorted ``C_max`` letters defining the
#: bit order shared by every shard of the run.
HitTask = tuple[SegmentShard, tuple[Letter, ...]]


def count_shard_letters(shard: SegmentShard) -> Counter:
    """Scan 1 over one shard: count every ``(offset, feature)`` letter.

    Returns the shard's partial F1 counter; summing the counters of all
    shards gives exactly the full-series letter counts because each whole
    segment lives in exactly one shard.
    """
    counts: Counter = Counter()
    period = shard.period
    for index, slot in enumerate(shard.series.slots):
        if not slot:
            continue
        offset = index % period
        for feature in slot:
            counts[(offset, feature)] += 1
    return counts


def collect_shard_hits(task: HitTask) -> Counter:
    """Scan 2 over one shard: the multiset of segment hits as bitmasks.

    ``letter_order`` fixes bit ``i`` to ``letter_order[i]``; the returned
    counter maps each distinct hit mask (with at least two bits set) to the
    number of shard segments producing it.  Hits with fewer than two
    letters are dropped here, mirroring the serial tree's insertion rule.
    """
    shard, letter_order = task
    period = shard.period
    offset_bits: list[dict[str, int]] = [{} for _ in range(period)]
    for bit_index, (offset, feature) in enumerate(letter_order):
        offset_bits[offset][feature] = 1 << bit_index
    hits: Counter = Counter()
    slots = shard.series.slots
    index = 0
    for _ in range(shard.num_segments):
        mask = 0
        for offset in range(period):
            slot = slots[index]
            index += 1
            if slot:
                table = offset_bits[offset]
                if table:
                    for feature in slot:
                        bit = table.get(feature)
                        if bit:
                            mask |= bit
        if mask.bit_count() >= 2:
            hits[mask] += 1
    return hits


def mine_period_task(
    task: tuple[SegmentShard, float, int | None],
) -> tuple[int, int, list[tuple[tuple[Letter, ...], int]], dict]:
    """Mine one whole period on a worker (per-period fan-out).

    The task's shard covers *all* whole segments of its period — period
    fan-out parallelizes across periods, not within one.  Returns primitive
    data only (letters as sorted tuples, stats as a plain dict) so the
    payload pickles cheaply and the parent rebuilds ``Pattern`` objects
    once.
    """
    shard, min_conf, max_letters = task
    period = shard.period
    letter_counts = count_shard_letters(shard)
    threshold = min_count(min_conf, shard.num_segments)
    f1 = {
        letter: count
        for letter, count in letter_counts.items()
        if count >= threshold
    }
    stats = {"scans": 1, "tree_nodes": 0, "hit_set_size": 0, "candidate_counts": {}}
    if not f1:
        return period, shard.num_segments, [], stats
    # Local import: worker.py must stay importable before merge.py during
    # package initialization.
    from repro.engine.merge import hits_to_tree

    letter_order = tuple(sorted(f1))
    hit_counter = collect_shard_hits((shard, letter_order))
    tree = hits_to_tree(period, letter_order, hit_counter)
    counts, candidate_counts = tree.derive_frequent(
        threshold, f1, max_letters=max_letters
    )
    stats.update(
        scans=2,
        tree_nodes=tree.node_count,
        hit_set_size=tree.hit_set_size,
        candidate_counts=candidate_counts,
    )
    payload = [
        (tuple(sorted(letters)), count) for letters, count in counts.items()
    ]
    return period, shard.num_segments, payload, stats
