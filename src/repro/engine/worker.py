"""Picklable per-shard work functions executed on the workers.

Every function here takes one picklable task object and returns one
picklable payload, so the same callables run unchanged on the serial,
thread, and process backends.  Nothing in this module touches global state:
a shard's output depends only on its task, which is what makes the merged
result deterministic regardless of scheduling order.

The scan kernels are the shared encoding stack: scan 1 is
:func:`repro.core.counting.letter_counts_for_segments` and scan 2 encodes
the shard once into a contiguous
:class:`~repro.kernels.store.SegmentStore` against the run's ``C_max``
vocabulary, collapsing identical hits in a ``Counter`` keyed by the
mask.  Decoding back to letter sets happens
once per *distinct* hit at merge time
(:func:`repro.engine.merge.hits_to_tree`), not once per segment.
"""

from __future__ import annotations

from collections import Counter

from repro.core.counting import letter_counts_for_segments, min_count
from repro.core.pattern import Letter
from repro.encoding.vocabulary import LetterVocabulary
from repro.engine.partition import SegmentShard
from repro.kernels.store import SegmentStore

#: Scan-1 task: just the shard (the period rides on it).
LetterTask = SegmentShard

#: Scan-2 task: the shard plus the sorted ``C_max`` letters defining the
#: bit order shared by every shard of the run.
HitTask = tuple[SegmentShard, tuple[Letter, ...]]

#: Per-period task: shard covering the whole period, threshold, letter
#: cap, the encode flag (``--no-encode`` escape hatch), and the counting
#: kernel name (``columnar`` / ``batched`` / ``legacy``).
PeriodTask = tuple[SegmentShard, float, "int | None", bool, str]

#: Per-period payload: period, segment count, the worker's sorted C_max
#: vocabulary as a letter tuple, ``(mask, count)`` rows over that
#: vocabulary, and primitive stats.
PeriodPayload = tuple[
    int, int, tuple[Letter, ...], list[tuple[int, int]], dict
]


def count_shard_letters(shard: SegmentShard) -> Counter:
    """Scan 1 over one shard: count every ``(offset, feature)`` letter.

    Returns the shard's partial F1 counter; summing the counters of all
    shards gives exactly the full-series letter counts because each whole
    segment lives in exactly one shard.
    """
    return letter_counts_for_segments(shard.series.segments(shard.period))


def collect_shard_hits(task: HitTask) -> Counter:
    """Scan 2 over one shard: the multiset of segment hits as bitmasks.

    ``letter_order`` fixes bit ``i`` to ``letter_order[i]``; the returned
    counter maps each distinct hit mask (with at least two bits set) to the
    number of shard segments producing it.  Hits with fewer than two
    letters are dropped here, mirroring the serial tree's insertion rule.
    """
    shard, letter_order = task
    vocab = LetterVocabulary(letter_order, period=shard.period)
    # One scan into a contiguous SegmentStore, then one pass over its
    # *distinct* masks — identical totals to counting segment by segment.
    # For packed vocabularies the store answers through the columnar
    # kernels (chunked ``np.unique`` + vectorized popcount filter), and a
    # store whose buffer lives on disk would have arrived here as just a
    # file path (the store pickles by path and the worker re-maps it).
    store = SegmentStore.from_series(shard.series, shard.period, vocab)
    return store.hit_counter()


def collect_shard_hits_legacy(task: HitTask) -> Counter:
    """Scan 2 on letter sets — the pre-encoding kernel (bisection path).

    Returns a counter keyed by sorted letter *tuples* instead of masks;
    merge with :func:`repro.engine.merge.hits_to_tree_letters`.  Kept so
    ``--no-encode`` exercises a mask-free worker end to end.
    """
    shard, letter_order = task
    period = shard.period
    cmax = frozenset(letter_order)  # repro: ignore[REP501] -- one-off setup, not per-segment
    hits: Counter = Counter()
    slots = shard.series.slots
    index = 0
    for _ in range(shard.num_segments):
        letters = []
        for offset in range(period):
            slot = slots[index]
            index += 1
            for feature in slot:
                letter = (offset, feature)
                if letter in cmax:
                    letters.append(letter)
        if len(letters) >= 2:
            hits[tuple(sorted(letters))] += 1
    return hits


def mine_period_task(task: PeriodTask) -> PeriodPayload:
    """Mine one whole period on a worker (per-period fan-out).

    The task's shard covers *all* whole segments of its period — period
    fan-out parallelizes across periods, not within one.  Returns primitive
    data only (the vocabulary as a sorted letter tuple, patterns as int
    masks over it, stats as a plain dict) so the payload pickles cheaply
    and the parent rebuilds ``Pattern`` objects once.
    """
    shard, min_conf, max_letters, encode, kernel = task
    period = shard.period
    letter_counts = count_shard_letters(shard)
    threshold = min_count(min_conf, shard.num_segments)
    f1 = {
        letter: count
        for letter, count in letter_counts.items()
        if count >= threshold
    }
    stats = {"scans": 1, "tree_nodes": 0, "hit_set_size": 0, "candidate_counts": {}}
    if not f1:
        return period, shard.num_segments, (), [], stats
    # Local import: worker.py must stay importable before merge.py during
    # package initialization.
    from repro.engine.merge import hits_to_tree, hits_to_tree_letters

    letter_order = tuple(sorted(f1))
    if encode:
        hit_counter = collect_shard_hits((shard, letter_order))
        tree = hits_to_tree(period, letter_order, hit_counter)
    else:
        hit_counter = collect_shard_hits_legacy((shard, letter_order))
        tree = hits_to_tree_letters(period, letter_order, hit_counter)
    counts, candidate_counts = tree.derive_frequent(
        threshold, f1, max_letters=max_letters, kernel=kernel
    )
    stats.update(
        scans=2,
        tree_nodes=tree.node_count,
        hit_set_size=tree.hit_set_size,
        candidate_counts=candidate_counts,
    )
    vocab = tree.vocab
    payload = [
        (vocab.encode_letters(letters), count)
        for letters, count in counts.items()
    ]
    return period, shard.num_segments, tuple(vocab), payload, stats
