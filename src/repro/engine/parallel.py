"""The :class:`ParallelMiner` facade — sharded hit-set mining.

``mine(period, workers=N)`` runs Algorithm 3.2 as two shard fan-outs:

1. **Scan 1** — each worker counts the letters of its contiguous segment
   shard; the partial counters merge into the exact full-series F1 and the
   candidate max-pattern ``C_max``.
2. **Scan 2** — each worker collects its shard's segment hits against
   ``C_max`` (as bitmask multisets); each shard's hits become a partial
   max-subpattern tree and the trees merge by count union.

Derivation (Algorithm 4.2) then runs once on the merged tree, so the
frequent set and every count are identical to
:func:`repro.core.hitset.mine_single_period_hitset` — the equivalence the
randomized suite in ``tests/test_engine.py`` enforces.

``mine_periods`` / ``mine_period_range`` parallelize differently: one task
per period (per-period fan-out), each worker mining its whole period
independently — the parallel form of Algorithm 3.3's loop.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import Any

from repro.core.counting import check_min_conf, frequent_letter_set, min_count
from repro.core.errors import EngineError, MiningError
from repro.core.multiperiod import (
    MultiPeriodResult,
    _validated_periods,
    period_range,
)
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.engine.executor import (
    BackendLadder,
    ExecutionBackend,
    ShardOutcome,
    resolve_backend,
    run_shards,
    visible_cpus,
)
from repro.resilience.context import ResilienceContext
from repro.resilience.journal import CheckpointJournal, series_fingerprint
from repro.encoding.vocabulary import LetterVocabulary
from repro.engine.merge import (
    hits_to_tree,
    hits_to_tree_letters,
    merge_counters,
    merge_trees,
)
from repro.engine.partition import SegmentShard, partition_segments
from repro.engine.stats import EngineStats, ShardStats
from repro.engine.worker import (
    PeriodTask,
    collect_shard_hits,
    collect_shard_hits_legacy,
    count_shard_letters,
    mine_period_task,
)
from repro.kernels import KERNELS
from repro.kernels.cache import CountCache
from repro.kernels.profile import MiningProfile
from repro.timeseries.feature_series import FeatureSeries, as_feature_series


def default_workers() -> int:
    """The worker count used when none is given: the visible CPU count."""
    return visible_cpus()


def _run_key(
    series: FeatureSeries,
    shards: Sequence[SegmentShard],
    **params: Any,
) -> dict[str, Any]:
    """The journal run key: everything that shapes this run's payloads.

    A resumed journal must match on series content, partition plan, and
    the mining parameters — resuming with, say, a different worker count
    produces a different plan and is rejected up front rather than
    silently merging incompatible shards.
    """
    key: dict[str, Any] = {
        "series": series_fingerprint(series),
        "series_len": len(series),
        "plan": [
            [shard.shard_id, shard.period, shard.start_segment, shard.num_segments]
            for shard in shards
        ],
    }
    key.update(params)
    return key


def _attach_journal(
    resilience: ResilienceContext | None,
    journal_path: str | Path | None,
    run_key: dict[str, Any],
) -> tuple[ResilienceContext | None, CheckpointJournal | None]:
    """The context a run should use, opening a journal when asked.

    ``journal_path`` overrides any journal already on the context.  The
    second element is the journal *this call* opened (the caller owns
    closing it); ``None`` when the caller passed their own.
    """
    if journal_path is None:
        return resilience, None
    journal = CheckpointJournal(journal_path, run_key)
    base = resilience if resilience is not None else ResilienceContext()
    return _dc_replace(base, journal=journal), journal


def _plain_series(data: FeatureSeries | str | Iterable) -> FeatureSeries:
    """Coerce input to a real :class:`FeatureSeries` (shards need slicing).

    Scan-counting wrappers are unwrapped: a sharded run spreads each scan
    over workers, so its I/O ledger lives in :class:`EngineStats`
    (``slots_scanned`` / ``scan_equivalents``) instead.
    """
    series = as_feature_series(data)
    if isinstance(series, FeatureSeries):
        return series
    inner = getattr(series, "series", None)
    if isinstance(inner, FeatureSeries):
        return inner
    raise EngineError(
        f"cannot shard a {type(series).__name__}; pass a FeatureSeries"
    )


class ParallelMiner:
    """Sharded, multi-worker counterpart of :class:`PartialPeriodicMiner`.

    Parameters
    ----------
    series:
        A :class:`FeatureSeries`, a symbol string, or any iterable of
        slots.  Scan-counting wrappers are unwrapped (see
        :class:`EngineStats` for the parallel cost ledger).
    min_conf:
        Default confidence threshold, overridable per call.
    workers:
        Default worker count; ``None`` uses the visible CPU count.
    backend:
        ``"auto"`` (serial for one worker, processes otherwise),
        ``"serial"``, ``"thread"``, ``"process"``, or an
        :class:`~repro.engine.executor.ExecutionBackend` instance.
    chunk_size:
        Segments per shard; ``None`` splits evenly into one shard per
        worker.
    encode:
        Default ``True`` ships scan 2 through the bitmask kernels;
        ``False`` routes workers and merge through the legacy letter-set
        path (the ``--no-encode`` escape hatch).  Results are identical.
    kernel:
        ``"batched"`` (default) derives the frequent set on the
        single-pass superset-sum kernel; ``"columnar"`` additionally runs
        each worker's shard scans as vectorized numpy passes over the
        shard's store column; ``"legacy"`` keeps the original
        per-candidate walk (the ``--kernel legacy`` escape hatch).
        Results are identical.  Shard stores that live on disk pickle as
        their file path — the worker re-maps the file instead of copying
        the buffer through the task queue.

    Examples
    --------
    >>> miner = ParallelMiner("abdabcabdabc", min_conf=0.9)
    >>> result = miner.mine(3, workers=2)
    >>> sorted(str(p) for p in result)
    ['*b*', 'a**', 'ab*']
    >>> result.engine.workers
    2
    """

    def __init__(
        self,
        series: FeatureSeries | str | Iterable,
        min_conf: float = 0.5,
        workers: int | None = None,
        backend: str | ExecutionBackend = "auto",
        chunk_size: int | None = None,
        encode: bool = True,
        kernel: str = "batched",
    ):
        check_min_conf(min_conf)
        if kernel not in KERNELS:
            raise EngineError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        self.series = _plain_series(series)
        self.min_conf = min_conf
        self.workers = default_workers() if workers is None else workers
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        self.backend = backend
        self.chunk_size = chunk_size
        self.encode = encode
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Single-period mining (sharded Algorithm 3.2)
    # ------------------------------------------------------------------

    def mine(
        self,
        period: int,
        min_conf: float | None = None,
        workers: int | None = None,
        backend: str | ExecutionBackend | None = None,
        chunk_size: int | None = None,
        max_letters: int | None = None,
        cache: CountCache | None = None,
        profile: MiningProfile | None = None,
        resilience: ResilienceContext | None = None,
        journal_path: str | Path | None = None,
    ) -> MiningResult:
        """All frequent patterns of one period, mined over segment shards.

        Letter-for-letter identical to
        :func:`~repro.core.hitset.mine_single_period_hitset`; the result
        additionally carries :attr:`~repro.core.result.MiningResult.engine`
        with the per-shard ledger.

        ``cache`` (a :class:`~repro.kernels.cache.CountCache`) short-
        circuits whole fan-outs: a cached scan skips its worker phase
        entirely and ``stats.scans`` counts only the fan-outs that actually
        ran.  ``profile`` accumulates per-stage wall times and cache
        counters alongside the engine ledger.

        ``resilience`` supplies the retry policy, per-shard timeout, and
        wall-clock deadline (see :mod:`repro.resilience`); ``journal_path``
        checkpoints every completed shard there and resumes from any
        matching entries already present, overriding a journal on the
        context.
        """
        min_conf = self.min_conf if min_conf is None else min_conf
        check_min_conf(min_conf)
        if max_letters is not None and max_letters < 1:
            raise MiningError(f"max_letters must be >= 1, got {max_letters}")
        workers = self.workers if workers is None else workers
        chunk_size = self.chunk_size if chunk_size is None else chunk_size
        started = time.perf_counter()

        num_periods = self.series.num_periods(period)
        if num_periods == 0:
            raise MiningError(
                f"series of length {len(self.series)} has no whole period "
                f"of {period}"
            )
        shards = partition_segments(
            self.series,
            period,
            num_shards=None if chunk_size is not None else workers,
            chunk_size=chunk_size,
        )
        resolved = resolve_backend(
            self.backend if backend is None else backend, workers
        )
        ctx, owned_journal = _attach_journal(
            resilience,
            journal_path,
            _run_key(
                self.series,
                shards,
                period=period,
                min_conf=min_conf,
                encode=self.encode,
                kernel=self.kernel,
            ),
        )
        cache_key = (
            cache.key_for(self.series, period) if cache is not None else None
        )
        ladder = BackendLadder(resolved)
        engine = EngineStats(backend=resolved.name, workers=workers)
        engine.partition_s = time.perf_counter() - started
        if profile is not None:
            profile.add_stage(
                "partition", engine.partition_s, items=len(shards)
            )
        stats = MiningStats()
        try:
            # ----- Scan 1: per-shard letter counters -> F1 ---------------
            letter_counts = (
                cache.get_letter_counts(cache_key)
                if cache is not None
                else None
            )
            if cache is not None and profile is not None:
                profile.count(
                    "cache_hits" if letter_counts is not None else "cache_misses"
                )
            if letter_counts is None:
                scan_started = time.perf_counter()
                outcomes = run_shards(
                    ladder, count_shard_letters, shards, ctx, phase="f1"
                )
                self._record(engine, "f1", shards, outcomes)
                if profile is not None:
                    profile.add_stage(
                        "scan1",
                        time.perf_counter() - scan_started,
                        items=num_periods,
                    )
                merge_started = time.perf_counter()
                letter_counts = merge_counters(
                    outcome.value for outcome in outcomes
                )
                engine.merge_s += time.perf_counter() - merge_started
                stats.scans += 1
                if cache is not None:
                    cache.put_letter_counts(cache_key, letter_counts)
            threshold = min_count(min_conf, num_periods)
            f1 = frequent_letter_set(letter_counts, threshold)

            if not f1:
                engine.degradations = list(ladder.degradations)
                engine.total_s = time.perf_counter() - started
                return MiningResult(
                    algorithm="parallel-hitset",
                    period=period,
                    min_conf=min_conf,
                    num_periods=num_periods,
                    counts={},
                    stats=stats,
                    engine=engine,
                )

            # ----- Scan 2: per-shard hits -> partial trees -> merged tree
            letter_order = tuple(sorted(f1))
            tree = None
            if cache is not None:
                hit_table = cache.get_hit_table(cache_key, letter_order)
                if profile is not None:
                    profile.count(
                        "cache_hits" if hit_table is not None else "cache_misses"
                    )
                if hit_table is not None:
                    merge_started = time.perf_counter()
                    tree = hits_to_tree(period, letter_order, hit_table)
                    engine.merge_s += time.perf_counter() - merge_started
            if tree is None:
                if ctx is not None:
                    # Scan-2 payloads are bitmasks over this exact ordering;
                    # a resumed journal must have been built against it.
                    ctx.pin_meta(
                        "hits",
                        [[offset, feature] for offset, feature in letter_order],
                    )
                hit_worker = (
                    collect_shard_hits
                    if self.encode
                    else collect_shard_hits_legacy
                )
                to_tree = hits_to_tree if self.encode else hits_to_tree_letters
                scan_started = time.perf_counter()
                outcomes = run_shards(
                    ladder,
                    hit_worker,
                    [(shard, letter_order) for shard in shards],
                    ctx,
                    phase="hits",
                )
                self._record(engine, "hits", shards, outcomes)
                if profile is not None:
                    profile.add_stage(
                        "scan2",
                        time.perf_counter() - scan_started,
                        items=num_periods,
                    )
                merge_started = time.perf_counter()
                tree = merge_trees(
                    [
                        to_tree(period, letter_order, outcome.value)
                        for outcome in outcomes
                    ]
                )
                engine.merge_s += time.perf_counter() - merge_started
                stats.scans += 1
                if cache is not None:
                    cache.put_hit_table(
                        cache_key, letter_order, tree.stored_hits()
                    )
        finally:
            if owned_journal is not None:
                owned_journal.close()
        stats.tree_nodes = tree.node_count
        stats.hit_set_size = tree.hit_set_size

        # ----- Derivation (Algorithm 4.2, parent-side) -------------------
        derive_started = time.perf_counter()
        counts, candidate_counts = tree.derive_frequent(
            threshold, f1, max_letters=max_letters, kernel=self.kernel
        )
        engine.derive_s = time.perf_counter() - derive_started
        if profile is not None:
            profile.add_stage("merge", engine.merge_s)
            profile.add_stage(
                "derive",
                engine.derive_s,
                items=sum(candidate_counts.values()),
            )
        stats.candidate_counts = candidate_counts
        patterns = {
            Pattern.from_letters(period, letters): count
            for letters, count in counts.items()
        }
        engine.degradations = list(ladder.degradations)
        engine.total_s = time.perf_counter() - started
        return MiningResult(
            algorithm="parallel-hitset",
            period=period,
            min_conf=min_conf,
            num_periods=num_periods,
            counts=patterns,
            stats=stats,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # Multi-period mining (per-period fan-out)
    # ------------------------------------------------------------------

    def mine_periods(
        self,
        periods: Iterable[int],
        min_conf: float | None = None,
        workers: int | None = None,
        backend: str | ExecutionBackend | None = None,
        min_repetitions: int = 1,
        max_letters: int | None = None,
        resilience: ResilienceContext | None = None,
        journal_path: str | Path | None = None,
    ) -> MultiPeriodResult:
        """Mine many periods with one worker task per period.

        The parallel form of Algorithm 3.3's loop: each task mines its
        whole period independently (2 scans per period).  Counts per
        period are identical to the serial loop.  ``resilience`` and
        ``journal_path`` behave as in :meth:`mine`; here each checkpointed
        shard is one whole mined period.
        """
        min_conf = self.min_conf if min_conf is None else min_conf
        check_min_conf(min_conf)
        workers = self.workers if workers is None else workers
        started = time.perf_counter()
        usable = _validated_periods(self.series, periods, min_repetitions)
        resolved = resolve_backend(
            self.backend if backend is None else backend, workers
        )
        engine = EngineStats(backend=resolved.name, workers=workers)

        tasks: list[PeriodTask] = []
        shards: list[SegmentShard] = []
        for index, period in enumerate(usable):
            num_segments = len(self.series) // period
            shard = SegmentShard(
                shard_id=index,
                period=period,
                start_segment=0,
                num_segments=num_segments,
                series=self.series.slice_segments(period, 0, num_segments),
            )
            shards.append(shard)
            tasks.append(
                (shard, min_conf, max_letters, self.encode, self.kernel)
            )
        ctx, owned_journal = _attach_journal(
            resilience,
            journal_path,
            _run_key(
                self.series,
                shards,
                min_conf=min_conf,
                encode=self.encode,
                kernel=self.kernel,
                max_letters=max_letters,
                min_repetitions=min_repetitions,
            ),
        )
        ladder = BackendLadder(resolved)
        try:
            outcomes = run_shards(
                ladder, mine_period_task, tasks, ctx, phase="period"
            )
        finally:
            if owned_journal is not None:
                owned_journal.close()
        engine.degradations = list(ladder.degradations)

        result = MultiPeriodResult(
            algorithm="parallel-looping[hitset]",
            min_conf=min_conf,
            engine=engine,
        )
        for (shard, _, _, _, _), outcome in zip(tasks, outcomes):
            period, num_periods, vocab_letters, payload, stat_values = outcome.value
            stats = MiningStats(
                scans=stat_values["scans"],
                tree_nodes=stat_values["tree_nodes"],
                hit_set_size=stat_values["hit_set_size"],
                candidate_counts=dict(stat_values["candidate_counts"]),
            )
            engine.shards.append(
                ShardStats(
                    shard_id=shard.shard_id,
                    phase="period",
                    segments=stats.scans * shard.num_segments,
                    slots=stats.scans * shard.num_slots,
                    elapsed_s=outcome.elapsed_s,
                    retried=outcome.retried,
                    attempts=outcome.attempts,
                    resumed=outcome.resumed,
                )
            )
            vocab = LetterVocabulary(vocab_letters, period=period)
            result.results[period] = MiningResult(
                algorithm="parallel-hitset",
                period=period,
                min_conf=min_conf,
                num_periods=num_periods,
                counts={
                    Pattern.from_mask(vocab, mask): count
                    for mask, count in payload
                },
                stats=stats,
                engine=engine,
            )
            result.scans += stats.scans
        engine.total_s = time.perf_counter() - started
        return result

    def mine_period_range(
        self,
        low: int,
        high: int,
        min_conf: float | None = None,
        workers: int | None = None,
        backend: str | ExecutionBackend | None = None,
        min_repetitions: int = 1,
        max_letters: int | None = None,
        resilience: ResilienceContext | None = None,
        journal_path: str | Path | None = None,
    ) -> MultiPeriodResult:
        """Mine every period in ``[low, high]`` with per-period fan-out."""
        return self.mine_periods(
            period_range(low, high),
            min_conf=min_conf,
            workers=workers,
            backend=backend,
            min_repetitions=min_repetitions,
            max_letters=max_letters,
            resilience=resilience,
            journal_path=journal_path,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _record(
        engine: EngineStats,
        phase: str,
        shards: Sequence[SegmentShard],
        outcomes: Sequence[ShardOutcome],
    ) -> None:
        """Append one ShardStats row per shard outcome of a phase."""
        for shard, outcome in zip(shards, outcomes):
            engine.shards.append(
                ShardStats(
                    shard_id=shard.shard_id,
                    phase=phase,
                    segments=shard.num_segments,
                    slots=shard.num_slots,
                    elapsed_s=outcome.elapsed_s,
                    retried=outcome.retried,
                    attempts=outcome.attempts,
                    resumed=outcome.resumed,
                )
            )

    def __repr__(self) -> str:
        return (
            f"ParallelMiner(len={len(self.series)}, "
            f"min_conf={self.min_conf}, workers={self.workers}, "
            f"backend={self.backend!r})"
        )
