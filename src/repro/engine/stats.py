"""Per-shard accounting for parallel mining runs.

The serial miners account for cost in scans
(:class:`~repro.timeseries.scan.ScanCountingSeries`); a sharded run spreads
each scan over workers, so the equivalent figure is *slots scanned summed
over shards*.  :class:`EngineStats` keeps that ledger — per-shard segment
and slot tallies with wall-clock timings, plus the parent-side partition,
merge, and derivation times — and rides on
:attr:`repro.core.result.MiningResult.engine` without touching the result's
frequent set.

``EngineStats.scan_equivalents(series_len)`` converts the ledger back into
the paper's unit: a two-phase run over ``m`` whole segments reports exactly
``2 * m * period / series_len`` scans' worth of slot reads, matching what a
``ScanCountingSeries`` would have counted for the serial miner (modulo the
dropped trailing partial segment).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class ShardStats:
    """One shard's contribution to one phase of a run."""

    shard_id: int
    #: Which pass produced this row: ``"f1"`` (scan 1), ``"hits"``
    #: (scan 2), or ``"period"`` (whole-period fan-out).
    phase: str
    segments: int
    slots: int
    elapsed_s: float
    #: True when the shard failed on the pool and was re-run serially.
    retried: bool = False


@dataclass(slots=True)
class EngineStats:
    """The full ledger of one parallel mining run."""

    backend: str
    workers: int
    shards: list[ShardStats] = field(default_factory=list)
    partition_s: float = 0.0
    merge_s: float = 0.0
    derive_s: float = 0.0
    total_s: float = 0.0

    @property
    def num_shards(self) -> int:
        """Distinct shard ids seen across phases."""
        return len({(shard.phase, shard.shard_id) for shard in self.shards})

    @property
    def slots_scanned(self) -> int:
        """Total slots read across all shards and phases."""
        return sum(shard.slots for shard in self.shards)

    @property
    def segments_scanned(self) -> int:
        """Total segments read across all shards and phases."""
        return sum(shard.segments for shard in self.shards)

    @property
    def shard_time_s(self) -> float:
        """Summed worker time (CPU-ish; > wall time when shards overlap)."""
        return sum(shard.elapsed_s for shard in self.shards)

    @property
    def shards_retried(self) -> int:
        """Shards that degraded to the serial retry."""
        return sum(1 for shard in self.shards if shard.retried)

    def scan_equivalents(self, series_len: int) -> float:
        """Slots scanned expressed in full passes over the series."""
        if series_len <= 0:
            return 0.0
        return self.slots_scanned / series_len

    def summary(self) -> str:
        """One-line human summary of the run."""
        return (
            f"engine[{self.backend}]: workers={self.workers} "
            f"shards={self.num_shards} slots={self.slots_scanned} "
            f"retried={self.shards_retried} "
            f"merge={self.merge_s * 1e3:.1f}ms total={self.total_s:.3f}s"
        )

    def __repr__(self) -> str:
        return f"EngineStats({self.summary()})"
