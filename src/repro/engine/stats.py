"""Per-shard accounting for parallel mining runs.

The serial miners account for cost in scans
(:class:`~repro.timeseries.scan.ScanCountingSeries`); a sharded run spreads
each scan over workers, so the equivalent figure is *slots scanned summed
over shards*.  :class:`EngineStats` keeps that ledger — per-shard segment
and slot tallies with wall-clock timings, plus the parent-side partition,
merge, and derivation times — and rides on
:attr:`repro.core.result.MiningResult.engine` without touching the result's
frequent set.

``EngineStats.scan_equivalents(series_len)`` converts the ledger back into
the paper's unit: a two-phase run over ``m`` whole segments reports exactly
``2 * m * period / series_len`` scans' worth of slot reads, matching what a
``ScanCountingSeries`` would have counted for the serial miner (modulo the
dropped trailing partial segment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Re-exported here because the rest of the run accounting lives in this
# module; the class itself is kernel-layer (used by serial miners too).
from repro.kernels.profile import MiningProfile, StageTiming

__all__ = [
    "DegradationEvent",
    "EngineStats",
    "MiningProfile",
    "ShardStats",
    "StageTiming",
]


@dataclass(slots=True)
class ShardStats:
    """One shard's contribution to one phase of a run."""

    shard_id: int
    #: Which pass produced this row: ``"f1"`` (scan 1), ``"hits"``
    #: (scan 2), or ``"period"`` (whole-period fan-out).
    phase: str
    segments: int
    slots: int
    elapsed_s: float
    #: True when the shard failed at least once and was re-executed.
    retried: bool = False
    #: Total executions this shard consumed (1 = clean first attempt).
    attempts: int = 1
    #: True when the shard's payload was replayed from a checkpoint
    #: journal instead of being executed this run.
    resumed: bool = False


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One rung taken down the backend degradation ladder.

    Recorded when a pool breaks mid-run (e.g. ``BrokenProcessPool``) and
    the engine demotes the remainder of the run to a weaker but sturdier
    backend (process -> thread -> serial).
    """

    #: Phase during which the pool broke.
    phase: str
    #: Backend name the run was using when it broke.
    from_backend: str
    #: Backend name the remainder of the run fell back to.
    to_backend: str
    #: Exception class name that broke the pool.
    reason: str

    def describe(self) -> str:
        """Human-readable one-liner for CLI output."""
        return (
            f"{self.phase}: {self.from_backend} -> {self.to_backend} "
            f"({self.reason})"
        )


@dataclass(slots=True)
class EngineStats:
    """The full ledger of one parallel mining run."""

    backend: str
    workers: int
    shards: list[ShardStats] = field(default_factory=list)
    partition_s: float = 0.0
    merge_s: float = 0.0
    derive_s: float = 0.0
    total_s: float = 0.0
    #: Backend demotions taken while the run was in flight, in order.
    degradations: list[DegradationEvent] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        """Distinct shard ids seen across phases."""
        return len({(shard.phase, shard.shard_id) for shard in self.shards})

    @property
    def slots_scanned(self) -> int:
        """Total slots read across all shards and phases."""
        return sum(shard.slots for shard in self.shards)

    @property
    def segments_scanned(self) -> int:
        """Total segments read across all shards and phases."""
        return sum(shard.segments for shard in self.shards)

    @property
    def shard_time_s(self) -> float:
        """Summed worker time (CPU-ish; > wall time when shards overlap)."""
        return sum(shard.elapsed_s for shard in self.shards)

    @property
    def shards_retried(self) -> int:
        """Shards that needed more than one execution."""
        return sum(1 for shard in self.shards if shard.retried)

    @property
    def shards_resumed(self) -> int:
        """Shards replayed from a checkpoint journal."""
        return sum(1 for shard in self.shards if shard.resumed)

    def scan_equivalents(self, series_len: int) -> float:
        """Slots scanned expressed in full passes over the series."""
        if series_len <= 0:
            return 0.0
        return self.slots_scanned / series_len

    def summary(self) -> str:
        """One-line human summary of the run."""
        line = (
            f"engine[{self.backend}]: workers={self.workers} "
            f"shards={self.num_shards} slots={self.slots_scanned} "
            f"retried={self.shards_retried} "
        )
        if self.shards_resumed:
            line += f"resumed={self.shards_resumed} "
        if self.degradations:
            line += f"degraded={len(self.degradations)} "
        line += f"merge={self.merge_s * 1e3:.1f}ms total={self.total_s:.3f}s"
        return line

    def __repr__(self) -> str:
        return f"EngineStats({self.summary()})"
