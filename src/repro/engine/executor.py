"""Pluggable execution backends for shard fan-out.

One interface — :meth:`ExecutionBackend.map` — three implementations:

``SerialBackend``
    Runs tasks in the calling thread.  Zero overhead; the reference
    against which the others are verified.
``ThreadBackend``
    A ``ThreadPoolExecutor``.  Shares memory (no pickling), but the GIL
    serializes pure-Python mining — it pays off only when shards are tiny
    or the work releases the GIL.
``ProcessBackend``
    A ``ProcessPoolExecutor``.  Real CPU parallelism for the pure-Python
    kernels at the cost of pickling each task and payload; the default for
    ``workers > 1``.

Failure policy: backends never raise for a failing task.  Each task yields
a :class:`ShardOutcome` carrying either the value or the error string, and
:func:`run_shards` retries failed shards serially in the parent process —
one bad shard (or a broken worker pool) degrades to a serial retry instead
of killing the whole job.  Only a shard that *also* fails serially raises
:class:`~repro.core.errors.EngineError`.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.errors import EngineError


@dataclass(slots=True)
class ShardOutcome:
    """What happened to one task: its value or its error, plus timing."""

    index: int
    #: The task's return value; ``Any`` because each fan-out phase ships a
    #: different payload (counters, hit multisets, whole MiningResults).
    value: Any = None
    error: str | None = None
    elapsed_s: float = 0.0
    retried: bool = False

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.error is None


def _timed_call(fn: Callable, task: object) -> tuple[object, float]:
    """Run one task and measure only the work, not queue or pickle time.

    Module-level so process backends can pickle it by reference.
    """
    started = time.perf_counter()
    value = fn(task)
    return value, time.perf_counter() - started


class ExecutionBackend(ABC):
    """Run one picklable function over a sequence of tasks."""

    #: Short name used in stats and CLI output.
    name: str = "abstract"

    @abstractmethod
    def map(self, fn: Callable, tasks: Sequence) -> list[ShardOutcome]:
        """One outcome per task, in task order; never raises per-task."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread."""

    name = "serial"

    def map(self, fn: Callable, tasks: Sequence) -> list[ShardOutcome]:
        outcomes: list[ShardOutcome] = []
        for index, task in enumerate(tasks):
            try:
                value, elapsed = _timed_call(fn, task)
                outcomes.append(
                    ShardOutcome(index=index, value=value, elapsed_s=elapsed)
                )
            except Exception as error:  # repro: ignore[REP404] -- per-shard capture: the error becomes a ShardOutcome and run_shards retries serially
                outcomes.append(ShardOutcome(index=index, error=str(error)))
        return outcomes


@dataclass
class _PoolBackend(ExecutionBackend):
    """Shared future-collection logic for thread and process pools."""

    workers: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")

    def _pool(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def map(self, fn: Callable, tasks: Sequence) -> list[ShardOutcome]:
        if not tasks:
            return []
        outcomes: list[ShardOutcome] = []
        max_workers = min(self.workers, len(tasks))
        try:
            with self._pool(max_workers) as pool:
                futures = [
                    pool.submit(_timed_call, fn, task) for task in tasks
                ]
                for index, future in enumerate(futures):
                    try:
                        value, elapsed = future.result()
                        outcomes.append(
                            ShardOutcome(
                                index=index, value=value, elapsed_s=elapsed
                            )
                        )
                    except Exception as error:  # repro: ignore[REP404] -- per-future capture incl. BrokenProcessPool; failed shards are retried serially
                        outcomes.append(
                            ShardOutcome(index=index, error=str(error) or repr(error))
                        )
        except Exception as error:  # repro: ignore[REP404] -- pool creation/teardown failure (e.g. no usable multiprocessing) degrades every unfinished task to the serial retry
            done = {outcome.index for outcome in outcomes}
            outcomes.extend(
                ShardOutcome(index=index, error=str(error) or repr(error))
                for index in range(len(tasks))
                if index not in done
            )
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes


@dataclass
class ThreadBackend(_PoolBackend):
    """Fan out over a thread pool (shared memory, GIL-bound)."""

    name = "thread"

    def _pool(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-engine"
        )

    def __repr__(self) -> str:
        return f"ThreadBackend(workers={self.workers})"


@dataclass
class ProcessBackend(_PoolBackend):
    """Fan out over worker processes (true parallelism, pickling cost)."""

    name = "process"
    #: Optional multiprocessing context name ("fork", "spawn", ...);
    #: ``None`` uses the platform default.
    mp_context: str | None = field(default=None)

    def _pool(self, max_workers: int) -> Executor:
        context = None
        if self.mp_context is not None:
            import multiprocessing

            context = multiprocessing.get_context(self.mp_context)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def __repr__(self) -> str:
        return f"ProcessBackend(workers={self.workers})"


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_backend(
    backend: str | ExecutionBackend | None,
    workers: int,
) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    ``None`` or ``"auto"`` picks :class:`SerialBackend` for one worker,
    :class:`ProcessBackend` when more than one CPU is visible (the mining
    kernels are CPU-bound pure Python, where threads cannot help), and
    :class:`ThreadBackend` on a single-CPU host — processes could not run
    concurrently there anyway, and threads at least avoid pickling the
    shards.  An instance passes through unchanged.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    spec = "auto" if backend is None else backend
    if spec == "auto":
        if workers == 1:
            spec = "serial"
        else:
            spec = "process" if visible_cpus() > 1 else "thread"
    if spec == "serial":
        return SerialBackend()
    if spec == "thread":
        return ThreadBackend(workers=workers)
    if spec == "process":
        return ProcessBackend(workers=workers)
    raise EngineError(
        f"unknown backend {backend!r}; choose 'auto', 'serial', "
        "'thread' or 'process'"
    )


def run_shards(
    backend: ExecutionBackend,
    fn: Callable,
    tasks: Sequence,
) -> list[ShardOutcome]:
    """Run tasks on a backend, retrying any failed shard serially.

    Returns outcomes in task order, all successful; raises
    :class:`EngineError` naming the shard if the serial retry fails too.
    """
    outcomes = backend.map(fn, tasks)
    if len(outcomes) != len(tasks):
        raise EngineError(
            f"backend {backend.name!r} returned {len(outcomes)} outcomes "
            f"for {len(tasks)} tasks"
        )
    for position, outcome in enumerate(outcomes):
        if outcome.ok:
            continue
        try:
            value, elapsed = _timed_call(fn, tasks[outcome.index])
        except Exception as error:  # repro: ignore[REP404] -- last-resort serial retry; any failure here is re-raised as EngineError with both causes
            raise EngineError(
                f"shard {outcome.index} failed on backend "
                f"{backend.name!r} ({outcome.error}) and again on the "
                f"serial retry: {error}"
            ) from error
        outcomes[position] = replace(
            outcome, value=value, error=None, elapsed_s=elapsed, retried=True
        )
    return outcomes
