"""Pluggable execution backends for shard fan-out.

One interface — :meth:`ExecutionBackend.map` — three implementations:

``SerialBackend``
    Runs tasks in the calling thread.  Zero overhead; the reference
    against which the others are verified.
``ThreadBackend``
    A ``ThreadPoolExecutor``.  Shares memory (no pickling), but the GIL
    serializes pure-Python mining — it pays off only when shards are tiny
    or the work releases the GIL.
``ProcessBackend``
    A ``ProcessPoolExecutor``.  Real CPU parallelism for the pure-Python
    kernels at the cost of pickling each task and payload; the default for
    ``workers > 1``.

Failure policy: backends never raise for a failing task.  Each task yields
a :class:`ShardOutcome` carrying either the value or the error (message
plus exception class name), and :func:`run_shards` feeds failures through
a :class:`~repro.resilience.policy.RetryPolicy`:

* a **broken pool** (``BrokenProcessPool`` and friends) demotes the run
  one rung down the backend ladder — process -> thread -> serial — for
  the remainder of the run, without charging the affected shards an
  attempt;
* an ordinary **task failure** is classified by exception class name:
  fatal (deterministic input errors) aborts immediately, retryable gets
  bounded in-parent serial retries with deterministic jittered backoff;
* a shard that overruns ``shard_timeout_s`` — or a run that overruns its
  wall-clock :class:`~repro.resilience.deadline.Deadline` — fails with
  ``ShardTimeout``, which is retryable like any transient fault.

With the default policy (two attempts, no resilience context passed)
this reproduces the engine's historical contract: one backend attempt,
one serial retry, then :class:`~repro.core.errors.EngineError`.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.errors import EngineError, ShardTimeout
from repro.engine.stats import DegradationEvent
from repro.resilience.backoff import sleep
from repro.resilience.context import ResilienceContext
from repro.resilience.deadline import Deadline
from repro.resilience.policy import FailureAction, RetryPolicy

#: Exception class names that mean the *pool* died, not the task: the
#: retry ladder demotes the backend instead of charging the shard.
POOL_BREAK_TYPES = frozenset(  # repro: ignore[REP501] -- module-level constant of class-name strings, not per-segment letter work
    {"BrokenExecutor", "BrokenProcessPool", "BrokenThreadPool"}
)


@dataclass(slots=True)
class ShardOutcome:
    """What happened to one task: its value or its error, plus timing."""

    index: int
    #: The task's return value; ``Any`` because each fan-out phase ships a
    #: different payload (counters, hit multisets, whole MiningResults).
    value: Any = None
    error: str | None = None
    #: Exception class name for failed tasks — what the retry policy
    #: classifies on, since errors cross process boundaries as strings.
    error_type: str | None = None
    elapsed_s: float = 0.0
    retried: bool = False
    #: Executions this shard consumed (0 = replayed from a checkpoint).
    attempts: int = 1
    #: True when the value came from a checkpoint journal, not a worker.
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.error is None


def _timed_call(fn: Callable, task: object) -> tuple[object, float]:
    """Run one task and measure only the work, not queue or pickle time.

    Module-level so process backends can pickle it by reference.
    """
    started = time.perf_counter()
    value = fn(task)
    return value, time.perf_counter() - started


def _failure(index: int, error: BaseException) -> ShardOutcome:
    """A failed outcome capturing both message and class name."""
    return ShardOutcome(
        index=index,
        error=str(error) or repr(error),
        error_type=type(error).__name__,
    )


def _timeout_outcome(
    index: int, timeout_s: float | None, deadline: Deadline | None
) -> ShardOutcome:
    """A ShardTimeout-typed failure for an overrunning or cancelled task."""
    if deadline is not None and deadline.expired:
        message = f"run deadline of {deadline.budget_s}s expired"
    else:
        message = f"shard overran its {timeout_s}s budget"
    return ShardOutcome(index=index, error=message, error_type="ShardTimeout")


def _wait_budget(
    timeout_s: float | None, deadline: Deadline | None
) -> float | None:
    """Seconds a backend may block on one task; ``None`` = unbounded."""
    budgets = []
    if timeout_s is not None:
        budgets.append(timeout_s)
    if deadline is not None:
        budgets.append(deadline.remaining())
    return min(budgets) if budgets else None


class ExecutionBackend(ABC):
    """Run one picklable function over a sequence of tasks."""

    #: Short name used in stats and CLI output.
    name: str = "abstract"

    @abstractmethod
    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        timeout_s: float | None = None,
        deadline: Deadline | None = None,
    ) -> list[ShardOutcome]:
        """One outcome per task, in task order; never raises per-task.

        ``timeout_s`` bounds how long the backend may block on any single
        task and ``deadline`` caps the whole call; tasks past either limit
        come back as ``ShardTimeout``-typed failures.  Cancellation is
        cooperative — a worker already computing is abandoned, not
        preempted.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread.

    Timeouts are necessarily post-hoc here: an inline task cannot be
    interrupted, so an overrunning one is marked failed *after* it
    returns, and a task whose turn comes after the deadline expired is
    skipped outright.
    """

    name = "serial"

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        timeout_s: float | None = None,
        deadline: Deadline | None = None,
    ) -> list[ShardOutcome]:
        outcomes: list[ShardOutcome] = []
        for index, task in enumerate(tasks):
            if deadline is not None and deadline.expired:
                outcomes.append(_timeout_outcome(index, timeout_s, deadline))
                continue
            try:
                value, elapsed = _timed_call(fn, task)
            except Exception as error:  # repro: ignore[REP404] -- per-shard capture: the error becomes a ShardOutcome and run_shards applies the retry policy
                outcomes.append(_failure(index, error))
                continue
            if timeout_s is not None and elapsed > timeout_s:
                outcomes.append(_timeout_outcome(index, timeout_s, deadline))
            else:
                outcomes.append(
                    ShardOutcome(index=index, value=value, elapsed_s=elapsed)
                )
        return outcomes


@dataclass
class _PoolBackend(ExecutionBackend):
    """Shared future-collection logic for thread and process pools."""

    workers: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")

    def _pool(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        timeout_s: float | None = None,
        deadline: Deadline | None = None,
    ) -> list[ShardOutcome]:
        if not tasks:
            return []
        outcomes: list[ShardOutcome] = []
        max_workers = min(self.workers, len(tasks))
        pool: Executor | None = None
        timed_out = False
        try:
            pool = self._pool(max_workers)
            futures = [pool.submit(_timed_call, fn, task) for task in tasks]
            for index, future in enumerate(futures):
                wait = _wait_budget(timeout_s, deadline)
                if wait is not None and wait <= 0 and not future.done():
                    future.cancel()
                    outcomes.append(_timeout_outcome(index, timeout_s, deadline))
                    timed_out = True
                    continue
                try:
                    value, elapsed = future.result(timeout=wait)
                    outcomes.append(
                        ShardOutcome(
                            index=index, value=value, elapsed_s=elapsed
                        )
                    )
                except _FutureTimeout:
                    future.cancel()
                    outcomes.append(_timeout_outcome(index, timeout_s, deadline))
                    timed_out = True
                except Exception as error:  # repro: ignore[REP404] -- per-future capture incl. BrokenProcessPool; run_shards classifies by error_type
                    outcomes.append(_failure(index, error))
        except Exception as error:  # repro: ignore[REP404] -- pool creation/teardown failure (e.g. no usable multiprocessing) fails every unfinished task into the retry ladder
            done = {outcome.index for outcome in outcomes}
            outcomes.extend(
                _failure(index, error)
                for index in range(len(tasks))
                if index not in done
            )
        finally:
            if pool is not None:
                # A timed-out task may still be running; don't block the
                # parent on it — abandon the pool and let it drain.
                pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes


@dataclass
class ThreadBackend(_PoolBackend):
    """Fan out over a thread pool (shared memory, GIL-bound)."""

    name = "thread"

    def _pool(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-engine"
        )

    def __repr__(self) -> str:
        return f"ThreadBackend(workers={self.workers})"


@dataclass
class ProcessBackend(_PoolBackend):
    """Fan out over worker processes (true parallelism, pickling cost)."""

    name = "process"
    #: Optional multiprocessing context name ("fork", "spawn", ...);
    #: ``None`` uses the platform default.
    mp_context: str | None = field(default=None)

    def _pool(self, max_workers: int) -> Executor:
        context = None
        if self.mp_context is not None:
            import multiprocessing

            context = multiprocessing.get_context(self.mp_context)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def __repr__(self) -> str:
        return f"ProcessBackend(workers={self.workers})"


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_backend(
    backend: str | ExecutionBackend | None,
    workers: int,
) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    ``None`` or ``"auto"`` picks :class:`SerialBackend` for one worker,
    :class:`ProcessBackend` when more than one CPU is visible (the mining
    kernels are CPU-bound pure Python, where threads cannot help), and
    :class:`ThreadBackend` on a single-CPU host — processes could not run
    concurrently there anyway, and threads at least avoid pickling the
    shards.  An instance passes through unchanged.

    When ``REPRO_CHAOS_SEED`` is set in the environment, spec-resolved
    backends are wrapped in a fault-injecting
    :class:`~repro.resilience.chaos.ChaosBackend` (instances pass through
    unwrapped — tests that hand-build a backend get exactly that backend).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    spec = "auto" if backend is None else backend
    if spec == "auto":
        if workers == 1:
            spec = "serial"
        else:
            spec = "process" if visible_cpus() > 1 else "thread"
    if spec == "serial":
        resolved: ExecutionBackend = SerialBackend()
    elif spec == "thread":
        resolved = ThreadBackend(workers=workers)
    elif spec == "process":
        resolved = ProcessBackend(workers=workers)
    else:
        raise EngineError(
            f"unknown backend {backend!r}; choose 'auto', 'serial', "
            "'thread' or 'process'"
        )
    # Imported lazily: chaos subclasses ExecutionBackend, so a module-level
    # import here would cycle back through repro.resilience.
    from repro.resilience.chaos import chaos_from_env

    config = chaos_from_env()
    if config is not None:
        from repro.resilience.chaos import ChaosBackend

        return ChaosBackend(inner=resolved, config=config)
    return resolved


@dataclass(slots=True)
class BackendLadder:
    """The degradation ladder one run walks down when pools break.

    Holds the *current* backend (demotions are sticky for the remainder
    of the run) and the ordered record of every rung taken, which the
    miner copies into :class:`~repro.engine.stats.EngineStats`.
    """

    backend: ExecutionBackend
    degradations: list[DegradationEvent] = field(default_factory=list)

    def demote(self, phase: str, reason: str) -> bool:
        """Step down one rung; False when already at the bottom."""
        demoted = _demote(self.backend)
        if demoted is None:
            return False
        self.degradations.append(
            DegradationEvent(
                phase=phase,
                from_backend=self.backend.name,
                to_backend=demoted.name,
                reason=reason,
            )
        )
        self.backend = demoted
        return True


def _demote(backend: ExecutionBackend) -> ExecutionBackend | None:
    """The next rung down from a backend, or ``None`` at the bottom.

    Wrappers that expose ``inner``/``rewrap`` (the chaos backend) are
    demoted through: the inner backend steps down and the wrapper is
    rebuilt around it, so fault injection survives demotion.
    """
    inner = getattr(backend, "inner", None)
    if inner is not None and hasattr(backend, "rewrap"):
        demoted = _demote(inner)
        return None if demoted is None else backend.rewrap(demoted)
    if backend.name == "process":
        return ThreadBackend(workers=getattr(backend, "workers", 2))
    if backend.name == "thread":
        return SerialBackend()
    return None


def _backend_map(
    backend: ExecutionBackend,
    fn: Callable,
    tasks: Sequence,
    ctx: ResilienceContext,
) -> list[ShardOutcome]:
    """One backend round, passing limits only when any are set.

    Keeps third-party backends with the pre-resilience ``map(fn, tasks)``
    signature working for limit-free runs.
    """
    if ctx.shard_timeout_s is None and ctx.deadline is None:
        outcomes = backend.map(fn, tasks)
    else:
        outcomes = backend.map(
            fn, tasks, timeout_s=ctx.shard_timeout_s, deadline=ctx.deadline
        )
    if len(outcomes) != len(tasks):
        raise EngineError(
            f"backend {backend.name!r} returned {len(outcomes)} outcomes "
            f"for {len(tasks)} tasks"
        )
    return outcomes


#: Limit-free two-attempt context reproducing the historical contract of
#: ``run_shards`` (one backend attempt, one serial retry, no sleeping).
_LEGACY_CONTEXT = ResilienceContext(policy=RetryPolicy(backoff_base_s=0.0))


def run_shards(
    backend: ExecutionBackend | BackendLadder,
    fn: Callable,
    tasks: Sequence,
    resilience: ResilienceContext | None = None,
    *,
    phase: str = "run",
) -> list[ShardOutcome]:
    """Run tasks on a backend under the resilience contract.

    Returns outcomes in task order, all successful.  Failure handling, in
    order of application:

    1. shards already in the context's checkpoint journal are replayed,
       not executed (``resumed=True``, zero attempts charged);
    2. a broken pool demotes the ladder (process -> thread -> serial) and
       re-runs only the shards the break swallowed, free of charge;
    3. fatally-classified task errors raise :class:`EngineError` at once;
    4. retryable errors get in-parent serial retries with deterministic
       backoff until the policy's attempt budget is exhausted — then
       :class:`EngineError`;
    5. an expired run deadline raises
       :class:`~repro.core.errors.ShardTimeout`.

    Every successful shard is checkpointed the moment it completes, so a
    later crash resumes past it.  Pass a :class:`BackendLadder` to make
    demotions stick across several ``run_shards`` calls of one run.
    """
    ladder = (
        backend if isinstance(backend, BackendLadder) else BackendLadder(backend)
    )
    ctx = resilience if resilience is not None else _LEGACY_CONTEXT

    results: dict[int, ShardOutcome] = {}
    attempts: dict[int, int] = {}
    failures: dict[int, ShardOutcome] = {}

    for index, (value, elapsed) in ctx.restored(phase, len(tasks)).items():
        results[index] = ShardOutcome(
            index=index,
            value=value,
            elapsed_s=elapsed,
            attempts=0,
            resumed=True,
        )
    to_run = [index for index in range(len(tasks)) if index not in results]

    # Phase A: backend rounds.  One map per ladder rung; only shards a
    # pool break swallowed are re-mapped, and only after a demotion.
    while to_run:
        current = ladder.backend
        raw = _backend_map(current, fn, [tasks[i] for i in to_run], ctx)
        pool_broken: list[int] = []
        for outcome, index in zip(raw, to_run):
            if outcome.ok:
                attempts[index] = attempts.get(index, 0) + 1
                results[index] = replace(
                    outcome, index=index, attempts=attempts[index]
                )
                ctx.checkpoint(phase, index, outcome.value, outcome.elapsed_s)
            elif outcome.error_type in POOL_BREAK_TYPES:
                pool_broken.append(index)
            else:
                attempts[index] = attempts.get(index, 0) + 1
                failures[index] = replace(outcome, index=index)
        if not pool_broken:
            break
        reason = raw[to_run.index(pool_broken[0])].error_type or "broken pool"
        if ladder.demote(phase, reason):
            to_run = pool_broken
            continue
        # Bottom of the ladder: charge the shards and fall through to the
        # serial retry loop like any other failure.
        for index in pool_broken:
            attempts[index] = attempts.get(index, 0) + 1
            failures[index] = replace(
                raw[to_run.index(index)], index=index
            )
        break

    # Phase B: bounded in-parent serial retries for ordinary failures.
    for index in sorted(failures):
        outcome = failures[index]
        while not outcome.ok:
            action = ctx.policy.classify(outcome.error_type)
            if action is FailureAction.FAIL:
                raise EngineError(
                    f"shard {index} failed with non-retryable "
                    f"{outcome.error_type} on backend "
                    f"{ladder.backend.name!r}: {outcome.error}"
                )
            if ctx.policy.exhausted(attempts[index]):
                raise EngineError(
                    f"shard {index} failed on backend "
                    f"{ladder.backend.name!r} and exhausted its "
                    f"{ctx.policy.max_attempts}-attempt budget "
                    f"(last error: {outcome.error})"
                )
            if ctx.deadline is not None and ctx.deadline.expired:
                raise ShardTimeout(
                    f"run deadline of {ctx.deadline.budget_s}s expired with "
                    f"shard {index} still failing: {outcome.error}"
                )
            delay = ctx.policy.delay_s(attempts[index], shard=index)
            if ctx.deadline is not None:
                delay = min(delay, ctx.deadline.remaining())
            sleep(delay)
            attempts[index] += 1
            try:
                value, elapsed = _timed_call(fn, tasks[index])
            except Exception as error:  # repro: ignore[REP404] -- in-parent retry; the failure is re-classified on the next loop turn
                outcome = replace(
                    _failure(index, error), attempts=attempts[index]
                )
                continue
            outcome = ShardOutcome(
                index=index,
                value=value,
                elapsed_s=elapsed,
                retried=True,
                attempts=attempts[index],
            )
        results[index] = outcome
        ctx.checkpoint(phase, index, outcome.value, outcome.elapsed_s)

    ordered = [results[index] for index in range(len(tasks))]
    for position, outcome in enumerate(ordered):
        if outcome.attempts > 1 and not outcome.retried:
            ordered[position] = replace(outcome, retried=True)
    return ordered
