"""Nodes of the max-subpattern tree.

Each node represents one subpattern of the candidate max-pattern ``C_max``,
identified by the set of ``C_max`` letters it is *missing*.  The root misses
nothing; each edge removes exactly one more letter, and — following
Algorithm 4.1 — edges are taken in canonical letter order, so the missing
tuple along any root-to-node path is strictly increasing.
"""

from __future__ import annotations

from repro.core.pattern import Letter


class MaxSubpatternNode:
    """One node of the max-subpattern tree.

    Attributes
    ----------
    missing:
        The sorted tuple of ``C_max`` letters absent from this node's
        pattern.  ``()`` for the root.
    missing_mask:
        The same missing set as a bitmask over the owning tree's
        vocabulary (bit ``i`` = sorted ``C_max`` letter ``i``).  ``0`` for
        the root and for standalone nodes built outside a tree.
    count:
        Number of period segments whose hit max-subpattern is exactly this
        node's pattern.  Intermediate nodes created on the way to a deeper
        insertion keep count 0, as in the paper.
    parent:
        The node one missing-letter shorter (``None`` for the root).
    children:
        Mapping from the additionally-missing letter to the child node.
    """

    __slots__ = ("missing", "missing_mask", "count", "parent", "children")

    def __init__(
        self,
        missing: tuple[Letter, ...],
        parent: "MaxSubpatternNode | None" = None,
        missing_mask: int = 0,
    ):
        self.missing = missing
        self.missing_mask = missing_mask
        self.count = 0
        self.parent = parent
        self.children: dict[Letter, MaxSubpatternNode] = {}

    @property
    def depth(self) -> int:
        """Number of letters missing relative to ``C_max`` (root = 0)."""
        return len(self.missing)

    @property
    def is_root(self) -> bool:
        """True for the ``C_max`` node itself."""
        return not self.missing

    def child(self, letter: Letter) -> "MaxSubpatternNode | None":
        """The child missing additionally ``letter``, or ``None``."""
        return self.children.get(letter)

    def add_child(self, letter: Letter, bit: int = 0) -> "MaxSubpatternNode":
        """Create (or return) the child missing additionally ``letter``.

        The letter must be greater than the node's last missing letter, so
        that missing tuples stay sorted along every path.  ``bit`` is the
        letter's single-bit mask in the owning tree's vocabulary; the
        child's ``missing_mask`` extends this node's by it.
        """
        existing = self.children.get(letter)
        if existing is not None:
            return existing
        if self.missing and letter <= self.missing[-1]:
            raise ValueError(
                f"child letter {letter!r} must follow {self.missing[-1]!r} "
                "in canonical order"
            )
        child = MaxSubpatternNode(
            self.missing + (letter,),
            parent=self,
            missing_mask=self.missing_mask | bit,
        )
        self.children[letter] = child
        return child

    def __repr__(self) -> str:
        missing = ",".join(f"~{feature}@{offset}" for offset, feature in self.missing)
        return f"MaxSubpatternNode(missing=[{missing}], count={self.count})"
