"""The max-subpattern tree (paper Section 4)."""

from repro.tree.max_subpattern_tree import MaxSubpatternTree, tree_from_hits
from repro.tree.node import MaxSubpatternNode

__all__ = ["MaxSubpatternNode", "MaxSubpatternTree", "tree_from_hits"]
