"""The max-subpattern tree (Section 4 of the paper).

The tree registers, for each period segment scanned, its *hit* — the maximal
subpattern of the candidate max-pattern ``C_max`` true in that segment
(Algorithm 4.1) — and afterwards lets us derive the frequency count of
*every* subpattern of ``C_max`` without touching the series again
(Algorithm 4.2).

Count semantics: a node's ``count`` is the number of segments whose hit is
*exactly* that node's pattern.  The total frequency count of a pattern ``X``
is the sum of counts over all nodes whose pattern is a superpattern of
``X`` — the node itself plus its *reachable ancestors* in the paper's
terminology.

Following the paper, hits with fewer than two letters are not inserted: the
counts of 1-letter patterns are already known exactly from the F1 scan, and
a 1-letter node could never contribute to the count of any multi-letter
pattern.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.candidates import generate_candidates
from repro.core.counting import segment_letters
from repro.core.errors import MiningError, PatternError
from repro.core.pattern import Letter, Pattern
from repro.tree.node import MaxSubpatternNode
from repro.timeseries.feature_series import FeatureSeries, Segment


class MaxSubpatternTree:
    """Hit registration and frequent-pattern derivation for one ``C_max``.

    Parameters
    ----------
    max_pattern:
        The candidate max-pattern built from the frequent 1-patterns
        (see :mod:`repro.core.maxpattern`).

    Examples
    --------
    >>> cmax = Pattern.from_string("a{b1,b2}*d*")
    >>> tree = MaxSubpatternTree(cmax)
    >>> _ = tree.insert(Pattern.from_string("a{b2}*d*"))
    >>> _ = tree.insert(Pattern.from_string("a{b1,b2}*d*"))
    >>> tree.count_of(Pattern.from_string("a**d*"))
    2
    """

    __slots__ = ("_max_pattern", "_letters", "_root", "_index", "_total_hits")

    def __init__(self, max_pattern: Pattern):
        if max_pattern.is_trivial:
            raise MiningError("C_max must contain at least one letter")
        self._max_pattern = max_pattern
        self._letters = max_pattern.letters
        self._root = MaxSubpatternNode(())
        #: Index of every existing node by its missing-letter frozenset.
        self._index: dict[frozenset[Letter], MaxSubpatternNode] = {
            frozenset(): self._root
        }
        self._total_hits = 0

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def max_pattern(self) -> Pattern:
        """The candidate max-pattern at the root."""
        return self._max_pattern

    @property
    def root(self) -> MaxSubpatternNode:
        """The root node (pattern ``C_max``)."""
        return self._root

    @property
    def node_count(self) -> int:
        """Total nodes in the tree, including zero-count path nodes."""
        return len(self._index)

    @property
    def hit_set_size(self) -> int:
        """Nodes with a non-zero count — the size of the hit set."""
        return sum(1 for node in self._index.values() if node.count)

    @property
    def total_hits(self) -> int:
        """Total segments registered (sum of all node counts)."""
        return self._total_hits

    def nodes(self) -> Iterator[MaxSubpatternNode]:
        """Iterate all nodes (arbitrary order)."""
        return iter(self._index.values())

    def pattern_of(self, node: MaxSubpatternNode) -> Pattern:
        """The pattern a node stands for: ``C_max`` minus its missing letters."""
        return Pattern.from_letters(
            self._max_pattern.period, self._letters - set(node.missing)
        )

    def find_node(self, pattern: Pattern) -> MaxSubpatternNode | None:
        """The node holding exactly this subpattern of ``C_max``, if present."""
        missing = self._missing_of(pattern)
        return self._index.get(frozenset(missing))

    # ------------------------------------------------------------------
    # Insertion — Algorithm 4.1
    # ------------------------------------------------------------------

    def insert(self, pattern: Pattern, count: int = 1) -> MaxSubpatternNode:
        """Register a hit max-subpattern (Algorithm 4.1).

        Walks from the root following the missing letters in canonical
        order, creating any absent nodes on the path with count 0, then
        bumps the target node's count.
        """
        if count < 1:
            raise MiningError(f"insert count must be >= 1, got {count}")
        missing = self._missing_of(pattern)
        if len(self._letters) - len(missing) < 1:
            raise MiningError("cannot insert the empty (all-*) pattern")
        return self._insert_missing(missing, count)

    def insert_letters(
        self, letters: Iterable[Letter], count: int = 1
    ) -> MaxSubpatternNode:
        """Letter-set form of :meth:`insert` — no :class:`Pattern` needed.

        The hot path for merge and for bulk hit registration: callers that
        already hold the hit as a set of ``(offset, feature)`` letters skip
        the pattern construction entirely.
        """
        if count < 1:
            raise MiningError(f"insert count must be >= 1, got {count}")
        letter_set = frozenset(letters)
        if not letter_set <= self._letters:
            raise PatternError(
                f"letters {sorted(letter_set - self._letters)} are not in C_max"
            )
        if not letter_set:
            raise MiningError("cannot insert the empty (all-*) pattern")
        return self._insert_missing(sorted(self._letters - letter_set), count)

    def _insert_missing(
        self, missing: Iterable[Letter], count: int
    ) -> MaxSubpatternNode:
        """Walk/extend the path of a sorted missing tuple and bump its count."""
        node = self._root
        for letter in missing:
            existing = node.child(letter)
            if existing is None:
                existing = node.add_child(letter)
                self._index[frozenset(existing.missing)] = existing
            node = existing
        node.count += count
        self._total_hits += count
        return node

    def hit_of_segment(self, segment: Segment) -> frozenset[Letter]:
        """The hit of a segment: its letters intersected with ``C_max``'s."""
        return segment_letters(segment) & self._letters

    def insert_segment(self, segment: Segment) -> MaxSubpatternNode | None:
        """Compute a segment's hit and register it if it has >= 2 letters.

        Returns the updated node, or ``None`` when the hit was empty or a
        single letter (1-letter counts live in the F1 scan, not the tree).
        """
        hit = self.hit_of_segment(segment)
        if len(hit) < 2:
            return None
        return self.insert(
            Pattern.from_letters(self._max_pattern.period, hit)
        )

    def insert_all_segments(self, series: FeatureSeries) -> int:
        """Scan 2 of Algorithm 3.2: register the hit of every segment.

        Returns the number of segments whose hit was stored.
        """
        stored = 0
        for segment in series.segments(self._max_pattern.period):
            if self.insert_segment(segment) is not None:
                stored += 1
        return stored

    # ------------------------------------------------------------------
    # Merging — partial trees from disjoint segment shards
    # ------------------------------------------------------------------

    def merge(self, other: "MaxSubpatternTree") -> "MaxSubpatternTree":
        """Union another tree's hit counts into this one (in place).

        Both trees must have been built for the *same* ``C_max``.  Because a
        node's count is the number of segments whose hit is exactly that
        node's pattern, and segments are partitioned between the trees,
        merging is plain addition of per-pattern counts — the operation is
        commutative and associative, which is what makes sharded mining
        (:mod:`repro.engine`) exact rather than approximate.

        Returns ``self`` so merges fold naturally::

            functools.reduce(lambda a, b: a.merge(b), partial_trees)

        Examples
        --------
        >>> cmax = Pattern.from_string("ab*d*")
        >>> left, right = MaxSubpatternTree(cmax), MaxSubpatternTree(cmax)
        >>> _ = left.insert(Pattern.from_string("ab***"))
        >>> _ = right.insert(Pattern.from_string("ab*d*"))
        >>> _ = right.insert(Pattern.from_string("ab***"))
        >>> left.merge(right).count_of(Pattern.from_string("ab***"))
        3
        """
        if other is self:
            raise MiningError("cannot merge a tree into itself")
        if (
            other._letters != self._letters
            or other._max_pattern.period != self._max_pattern.period
        ):
            raise MiningError(
                f"cannot merge trees with different C_max: "
                f"{self._max_pattern} vs {other._max_pattern}"
            )
        for node in other._index.values():
            if node.count:
                self._insert_missing(node.missing, node.count)
        return self

    def hit_counts(self) -> dict[frozenset[Letter], int]:
        """The stored hits as ``{pattern letters: exact-hit count}``.

        Only nodes with a non-zero count appear; this is the complete
        mergeable state of the tree (rebuilding a tree from it and merging
        is equivalent to merging the tree itself).
        """
        return {
            self._letters - set(node.missing): node.count
            for node in self._index.values()
            if node.count
        }

    # ------------------------------------------------------------------
    # Ancestors
    # ------------------------------------------------------------------

    def linked_ancestors(
        self, node: MaxSubpatternNode
    ) -> list[MaxSubpatternNode]:
        """Ancestors on the physical path to the root (missing prefixes)."""
        ancestors: list[MaxSubpatternNode] = []
        current = node.parent
        while current is not None:
            ancestors.append(current)
            current = current.parent
        return ancestors

    def reachable_ancestors(
        self, node: MaxSubpatternNode
    ) -> list[MaxSubpatternNode]:
        """All existing nodes whose pattern properly contains the node's.

        These are the nodes whose missing set is a proper subset of the
        node's missing set — including the not-physically-linked ones the
        paper's Example 4.2 walks through.
        """
        missing = frozenset(node.missing)
        if len(missing) <= 20:
            found: list[MaxSubpatternNode] = []
            ordered = sorted(missing)
            for mask in range(1 << len(ordered)):
                if mask == (1 << len(ordered)) - 1:
                    continue  # the node itself is not its own ancestor
                subset = frozenset(
                    ordered[i] for i in range(len(ordered)) if mask >> i & 1
                )
                candidate = self._index.get(subset)
                if candidate is not None:
                    found.append(candidate)
            return found
        return [
            candidate
            for key, candidate in self._index.items()
            if key < missing
        ]

    # ------------------------------------------------------------------
    # Counting and derivation — Algorithm 4.2
    # ------------------------------------------------------------------

    def count_of(self, pattern: Pattern) -> int:
        """Frequency count of any subpattern of ``C_max`` (letters >= 2).

        Sums the counts of the node itself and all its reachable
        ancestors — equivalently, of every stored node whose missing set is
        disjoint from the pattern's letters.

        1-letter patterns are intentionally rejected: their exact counts
        come from the F1 scan and are not represented in the tree.
        """
        letters = self._letters_of(pattern)
        if len(letters) < 2:
            raise MiningError(
                "the tree only counts patterns with >= 2 letters; "
                "1-pattern counts come from the F1 scan"
            )
        return self.count_of_letters(letters)

    def count_of_letters(self, letters: frozenset[Letter]) -> int:
        """Letter-set form of :meth:`count_of` (no validation, hot path)."""
        total = 0
        for node in self._index.values():
            if node.count and not letters.intersection(node.missing):
                total += node.count
        return total

    def derive_frequent(
        self,
        threshold: int,
        f1_counts: Mapping[Letter, int],
        max_letters: int | None = None,
    ) -> tuple[dict[frozenset[Letter], int], dict[int, int]]:
        """Algorithm 4.2: all frequent patterns from the hit counts.

        Level-wise Apriori over the tree: level 1 is ``F1`` (counts from the
        first scan), level k+1 candidates come from apriori-gen on level k
        and are counted against the stored hits.

        ``max_letters`` optionally caps the derived pattern size.  The
        complete frequent set is exponential on degenerate inputs (e.g. a
        feature present at every offset of every segment), so callers that
        only need short patterns should cap the derivation.

        Returns
        -------
        (counts, candidate_counts):
            ``counts`` maps each frequent letter set to its frequency count;
            ``candidate_counts`` records candidates examined per level for
            the cost statistics.
        """
        counts: dict[frozenset[Letter], int] = {
            frozenset((letter,)): count for letter, count in f1_counts.items()
        }
        candidate_counts = {1: len(f1_counts)}
        frequent_level = set(counts)
        level = 1
        # Pre-extract the non-zero nodes once as integer bitmasks over the
        # C_max letters; the superpattern test per (candidate, node) pair
        # becomes a single `candidate_mask & missing_mask == 0`.
        bit_of = {
            letter: 1 << index
            for index, letter in enumerate(sorted(self._letters))
        }
        stored = [
            (
                sum(bit_of[letter] for letter in node.missing),
                node.count,
            )
            for node in self._index.values()
            if node.count
        ]
        while frequent_level:
            if max_letters is not None and level >= max_letters:
                break
            candidates = generate_candidates(frequent_level)
            if not candidates:
                break
            level += 1
            candidate_counts[level] = len(candidates)
            frequent_level = set()
            for candidate in candidates:
                mask = 0
                for letter in candidate:
                    mask |= bit_of[letter]
                total = 0
                for missing_mask, count in stored:
                    if not mask & missing_mask:
                        total += count
                if total >= threshold:
                    counts[candidate] = total
                    frequent_level.add(candidate)
        return counts, candidate_counts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _letters_of(self, pattern: Pattern) -> frozenset[Letter]:
        if pattern.period != self._max_pattern.period:
            raise PatternError(
                f"pattern period {pattern.period} != tree period "
                f"{self._max_pattern.period}"
            )
        letters = pattern.letters
        if not letters <= self._letters:
            raise PatternError(f"{pattern} is not a subpattern of C_max")
        return letters

    def _missing_of(self, pattern: Pattern) -> list[Letter]:
        letters = self._letters_of(pattern)
        return sorted(self._letters - letters)

    def __repr__(self) -> str:
        return (
            f"MaxSubpatternTree(C_max={self._max_pattern}, "
            f"nodes={self.node_count}, hits={self.hit_set_size})"
        )


def tree_from_hits(
    max_pattern: Pattern,
    hits: Iterable[tuple[Pattern, int]],
) -> MaxSubpatternTree:
    """Build a tree directly from ``(pattern, count)`` pairs (test helper)."""
    tree = MaxSubpatternTree(max_pattern)
    for pattern, count in hits:
        tree.insert(pattern, count)
    return tree
