"""The max-subpattern tree (Section 4 of the paper).

The tree registers, for each period segment scanned, its *hit* — the maximal
subpattern of the candidate max-pattern ``C_max`` true in that segment
(Algorithm 4.1) — and afterwards lets us derive the frequency count of
*every* subpattern of ``C_max`` without touching the series again
(Algorithm 4.2).

Count semantics: a node's ``count`` is the number of segments whose hit is
*exactly* that node's pattern.  The total frequency count of a pattern ``X``
is the sum of counts over all nodes whose pattern is a superpattern of
``X`` — the node itself plus its *reachable ancestors* in the paper's
terminology.

Representation: every subpattern of ``C_max`` is an int bitmask over the
tree's :class:`~repro.encoding.vocabulary.LetterVocabulary` (the sorted
``C_max`` letters), and the node index is keyed by *missing-letter* masks.
Hit registration, merging, ancestor enumeration and derivation all run on
masks; letters reappear only at the API boundary (``hit_counts``,
``pattern_of``, ``derive_frequent`` results).

Following the paper, hits with fewer than two letters are not inserted: the
counts of 1-letter patterns are already known exactly from the F1 scan, and
a 1-letter node could never contribute to the count of any multi-letter
pattern.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping

from repro.core.candidates import generate_candidate_masks
from repro.core.counting import segment_letters
from repro.core.errors import EncodingError, MiningError, PatternError
from repro.core.pattern import Letter, Pattern
from repro.encoding.codec import SegmentEncoder
from repro.encoding.vocabulary import LetterVocabulary
from repro.kernels.batched import (
    MAX_TABLE_BITS,
    SubmaskCountTable,
    batched_count_masks,
    derive_frequent_masks,
)
from repro.tree.node import MaxSubpatternNode
from repro.timeseries.feature_series import FeatureSeries, Segment


class MaxSubpatternTree:
    """Hit registration and frequent-pattern derivation for one ``C_max``.

    Parameters
    ----------
    max_pattern:
        The candidate max-pattern built from the frequent 1-patterns
        (see :mod:`repro.core.maxpattern`).

    Examples
    --------
    >>> cmax = Pattern.from_string("a{b1,b2}*d*")
    >>> tree = MaxSubpatternTree(cmax)
    >>> _ = tree.insert(Pattern.from_string("a{b2}*d*"))
    >>> _ = tree.insert(Pattern.from_string("a{b1,b2}*d*"))
    >>> tree.count_of(Pattern.from_string("a**d*"))
    2
    """

    __slots__ = (
        "_max_pattern",
        "_letters",
        "_vocab",
        "_full_mask",
        "_root",
        "_index",
        "_total_hits",
        "_hit_set_size",
        "_stored_rows",
        "_hit_memo",
        "_count_table",
    )

    def __init__(self, max_pattern: Pattern):
        if max_pattern.is_trivial:
            raise MiningError("C_max must contain at least one letter")
        self._max_pattern = max_pattern
        self._letters = max_pattern.letters
        #: Bit order of every mask in the tree: sorted C_max letters.
        self._vocab = LetterVocabulary.from_letters(
            self._letters, period=max_pattern.period
        )
        self._full_mask = self._vocab.full_mask
        self._root = MaxSubpatternNode(())
        #: Index of every existing node by its missing-letter bitmask.
        self._index: dict[int, MaxSubpatternNode] = {0: self._root}
        self._total_hits = 0
        #: Nodes with non-zero count, maintained on insert (O(1) reads).
        self._hit_set_size = 0
        #: Memoized ``(missing_mask, count)`` rows of non-zero nodes;
        #: invalidated by any insert/merge (see :meth:`_insert_missing_mask`).
        self._stored_rows: list[tuple[int, int]] | None = None
        #: Memoized :meth:`hit_counts` result, same invalidation.
        self._hit_memo: dict[frozenset[Letter], int] | None = None
        #: Memoized superset-sum table over the full C_max universe, same
        #: invalidation; serves every batched count/derivation until the
        #: next insert (see :meth:`_superset_table`).
        self._count_table: SubmaskCountTable | None = None

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def max_pattern(self) -> Pattern:
        """The candidate max-pattern at the root."""
        return self._max_pattern

    @property
    def vocab(self) -> LetterVocabulary:
        """The sorted ``C_max`` letter vocabulary fixing the bit order."""
        return self._vocab

    @property
    def root(self) -> MaxSubpatternNode:
        """The root node (pattern ``C_max``)."""
        return self._root

    @property
    def node_count(self) -> int:
        """Total nodes in the tree, including zero-count path nodes."""
        return len(self._index)

    @property
    def hit_set_size(self) -> int:
        """Nodes with a non-zero count — the size of the hit set.

        Maintained incrementally on insertion; reading it never scans the
        index.
        """
        return self._hit_set_size

    @property
    def total_hits(self) -> int:
        """Total segments registered (sum of all node counts)."""
        return self._total_hits

    def nodes(self) -> Iterator[MaxSubpatternNode]:
        """Iterate all nodes (arbitrary order)."""
        return iter(self._index.values())

    def pattern_of(self, node: MaxSubpatternNode) -> Pattern:
        """The pattern a node stands for: ``C_max`` minus its missing letters."""
        return Pattern.from_mask(
            self._vocab, self._full_mask & ~node.missing_mask
        )

    def find_node(self, pattern: Pattern) -> MaxSubpatternNode | None:
        """The node holding exactly this subpattern of ``C_max``, if present."""
        mask = self._mask_of(pattern)
        return self._index.get(self._full_mask & ~mask)

    # ------------------------------------------------------------------
    # Insertion — Algorithm 4.1
    # ------------------------------------------------------------------

    def insert(self, pattern: Pattern, count: int = 1) -> MaxSubpatternNode:
        """Register a hit max-subpattern (Algorithm 4.1).

        Walks from the root following the missing letters in canonical
        order, creating any absent nodes on the path with count 0, then
        bumps the target node's count.
        """
        if count < 1:
            raise MiningError(f"insert count must be >= 1, got {count}")
        mask = self._mask_of(pattern)
        if not mask:
            raise MiningError("cannot insert the empty (all-*) pattern")
        return self._insert_missing_mask(self._full_mask & ~mask, count)

    def insert_letters(
        self, letters: Iterable[Letter], count: int = 1
    ) -> MaxSubpatternNode:
        """Letter-set form of :meth:`insert` — no :class:`Pattern` needed.

        Callers that hold the hit as ``(offset, feature)`` letters skip the
        pattern construction entirely; callers that already hold it as a
        bitmask should use :meth:`insert_mask` instead.
        """
        if count < 1:
            raise MiningError(f"insert count must be >= 1, got {count}")
        letters = tuple(letters)
        try:
            mask = self._vocab.encode_letters(letters)
        except EncodingError:
            raise PatternError(
                f"letters {sorted(set(letters) - self._letters)} "
                "are not in C_max"
            ) from None
        if not mask:
            raise MiningError("cannot insert the empty (all-*) pattern")
        return self._insert_missing_mask(self._full_mask & ~mask, count)

    def insert_mask(self, mask: int, count: int = 1) -> MaxSubpatternNode:
        """Bitmask form of :meth:`insert` — the hot path.

        ``mask`` is the hit's letter set over :attr:`vocab`.  Repeated
        distinct hits cost one dict probe each; only the first occurrence
        of a hit walks/extends the tree.
        """
        if count < 1:
            raise MiningError(f"insert count must be >= 1, got {count}")
        if mask < 0 or mask & ~self._full_mask:
            raise PatternError(
                f"mask {mask:#x} has bits outside C_max "
                f"(full mask {self._full_mask:#x})"
            )
        if not mask:
            raise MiningError("cannot insert the empty (all-*) pattern")
        return self._insert_missing_mask(self._full_mask & ~mask, count)

    def _insert_missing_mask(
        self, missing_mask: int, count: int
    ) -> MaxSubpatternNode:
        """Bump the node of a missing-mask, creating its path if absent.

        The single mutation point of the tree (``insert``/``insert_mask``/
        ``merge`` all land here), so it is also where the memoized hit
        state invalidates.
        """
        node = self._index.get(missing_mask)
        if node is None:
            node = self._create_path(missing_mask)
        if not node.count:
            self._hit_set_size += 1
        node.count += count
        self._total_hits += count
        self._stored_rows = None
        self._hit_memo = None
        self._count_table = None
        return node

    def _create_path(self, missing_mask: int) -> MaxSubpatternNode:
        """Walk/extend the root path of a missing-mask (Algorithm 4.1).

        Missing tuples are sorted along every path, and bit order equals
        sorted-letter order, so the path's prefixes are exactly the
        ascending-bit prefixes of ``missing_mask`` — each already indexed
        or created here.
        """
        vocab = self._vocab
        index = self._index
        node = self._root
        prefix = 0
        remaining = missing_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            prefix |= low
            existing = index.get(prefix)
            if existing is None:
                existing = node.add_child(vocab[low.bit_length() - 1], bit=low)
                index[prefix] = existing
            node = existing
        return node

    # ------------------------------------------------------------------
    # Retirement — exact inverse of insertion
    # ------------------------------------------------------------------

    def remove_mask(self, mask: int, count: int = 1) -> None:
        """Unregister ``count`` previously inserted hits (exact inverse).

        The retirement half of windowed streaming: a segment leaving the
        window subtracts exactly the hit it contributed on entry, so a
        tree maintained by matched ``insert_mask``/``remove_mask`` pairs
        equals one freshly built from the surviving segments (a tested
        invariant).  Removing more than was inserted raises — counts can
        never silently go negative.

        Nodes whose count returns to zero are pruned when they are leaves,
        ascending the path while the ancestors are themselves empty
        childless non-roots; interior nodes stay as zero-count path nodes,
        exactly as insertion would have created them.
        """
        if count < 1:
            raise MiningError(f"remove count must be >= 1, got {count}")
        if mask < 0 or mask & ~self._full_mask:
            raise PatternError(
                f"mask {mask:#x} has bits outside C_max "
                f"(full mask {self._full_mask:#x})"
            )
        if not mask:
            raise MiningError("cannot remove the empty (all-*) pattern")
        missing_mask = self._full_mask & ~mask
        node = self._index.get(missing_mask)
        if node is None or node.count < count:
            stored = 0 if node is None else node.count
            raise MiningError(
                f"cannot remove {count} hit(s) of mask {mask:#x}: "
                f"only {stored} stored"
            )
        node.count -= count
        self._total_hits -= count
        if not node.count:
            self._hit_set_size -= 1
            self._prune(node, missing_mask)
        self._stored_rows = None
        self._hit_memo = None
        self._count_table = None

    def _prune(self, node: MaxSubpatternNode, missing_mask: int) -> None:
        """Drop a zero-count leaf and any emptied ancestors above it.

        Mirrors :meth:`_create_path`: each node's index key is its
        ancestor prefix of ``missing_mask``, so ascending strips the
        highest set bit per step.
        """
        index = self._index
        while (
            not node.count
            and not node.children
            and node.parent is not None
        ):
            parent = node.parent
            del parent.children[node.missing[-1]]
            del index[missing_mask]
            missing_mask &= ~(1 << (missing_mask.bit_length() - 1))
            node = parent

    def hit_of_segment(self, segment: Segment) -> frozenset[Letter]:
        """The hit of a segment: its letters intersected with ``C_max``'s."""
        return segment_letters(segment) & self._letters

    def insert_segment(self, segment: Segment) -> MaxSubpatternNode | None:
        """Compute a segment's hit and register it if it has >= 2 letters.

        Returns the updated node, or ``None`` when the hit was empty or a
        single letter (1-letter counts live in the F1 scan, not the tree).
        """
        hit = self.hit_of_segment(segment)
        if len(hit) < 2:
            return None
        return self.insert(
            Pattern.from_letters(self._max_pattern.period, hit)
        )

    def insert_all_segments(
        self, series: FeatureSeries, encode: bool = True
    ) -> int:
        """Scan 2 of Algorithm 3.2: register the hit of every segment.

        The default path encodes each segment into a bitmask
        (:class:`~repro.encoding.codec.SegmentEncoder` projects onto the
        ``C_max`` letters as a side effect), collapses identical hits in a
        counter, and inserts once per *distinct* hit — on periodic data
        distinct hits are far fewer than segments.  ``encode=False`` keeps
        the legacy per-segment letter-set insertion for bisection.

        Returns the number of segments whose hit was stored.
        """
        if not encode:
            stored = 0
            for segment in series.segments(self._max_pattern.period):
                if self.insert_segment(segment) is not None:
                    stored += 1
            return stored
        encoder = SegmentEncoder(self._vocab)
        hits: Counter = Counter()
        for segment in series.segments(self._max_pattern.period):
            mask = encoder.encode_segment(segment)
            if mask & (mask - 1):  # at least two bits set
                hits[mask] += 1
        full_mask = self._full_mask
        stored = 0
        for mask, count in hits.items():
            self._insert_missing_mask(full_mask & ~mask, count)
            stored += count
        return stored

    # ------------------------------------------------------------------
    # Merging — partial trees from disjoint segment shards
    # ------------------------------------------------------------------

    def merge(self, other: "MaxSubpatternTree") -> "MaxSubpatternTree":
        """Union another tree's hit counts into this one (in place).

        Both trees must have been built for the *same* ``C_max``.  Because a
        node's count is the number of segments whose hit is exactly that
        node's pattern, and segments are partitioned between the trees,
        merging is plain addition of per-pattern counts — the operation is
        commutative and associative, which is what makes sharded mining
        (:mod:`repro.engine`) exact rather than approximate.  Equal
        ``C_max`` also means equal vocabularies (both sort the same
        letters), so the other tree's masks transfer without remapping.

        Returns ``self`` so merges fold naturally::

            functools.reduce(lambda a, b: a.merge(b), partial_trees)

        Examples
        --------
        >>> cmax = Pattern.from_string("ab*d*")
        >>> left, right = MaxSubpatternTree(cmax), MaxSubpatternTree(cmax)
        >>> _ = left.insert(Pattern.from_string("ab***"))
        >>> _ = right.insert(Pattern.from_string("ab*d*"))
        >>> _ = right.insert(Pattern.from_string("ab***"))
        >>> left.merge(right).count_of(Pattern.from_string("ab***"))
        3
        """
        if other is self:
            raise MiningError("cannot merge a tree into itself")
        if (
            other._letters != self._letters
            or other._max_pattern.period != self._max_pattern.period
        ):
            raise MiningError(
                f"cannot merge trees with different C_max: "
                f"{self._max_pattern} vs {other._max_pattern}"
            )
        for node in other._index.values():
            if node.count:
                self._insert_missing_mask(node.missing_mask, node.count)
        return self

    def _missing_rows(self) -> list[tuple[int, int]]:
        """Memoized ``(missing_mask, count)`` rows of the non-zero nodes.

        Built once per tree state and shared by every counting entry point
        — repeated ``count_of_mask`` calls and the legacy derivation no
        longer rescan the index per query.
        """
        rows = self._stored_rows
        if rows is None:
            rows = [
                (node.missing_mask, node.count)
                for node in self._index.values()
                if node.count
            ]
            self._stored_rows = rows
        return rows

    def stored_hits(self) -> dict[int, int]:
        """The stored hits as ``{hit mask: count}`` over :attr:`vocab`.

        The bitmask twin of :meth:`hit_counts` — the table the
        :class:`~repro.kernels.cache.CountCache` memoizes and the batched
        kernels consume.
        """
        full_mask = self._full_mask
        return {
            full_mask & ~missing: count
            for missing, count in self._missing_rows()
        }

    def hit_counts(self) -> dict[frozenset[Letter], int]:
        """The stored hits as ``{pattern letters: exact-hit count}``.

        Only nodes with a non-zero count appear; this is the complete
        mergeable state of the tree (rebuilding a tree from it and merging
        is equivalent to merging the tree itself).  The decoded mapping is
        memoized until the next insert/merge; callers get a fresh shallow
        copy each time.
        """
        memo = self._hit_memo
        if memo is None:
            vocab = self._vocab
            full_mask = self._full_mask
            memo = {
                vocab.decode_mask(full_mask & ~missing): count
                for missing, count in self._missing_rows()
            }
            self._hit_memo = memo
        return dict(memo)

    # ------------------------------------------------------------------
    # Ancestors
    # ------------------------------------------------------------------

    def linked_ancestors(
        self, node: MaxSubpatternNode
    ) -> list[MaxSubpatternNode]:
        """Ancestors on the physical path to the root (missing prefixes)."""
        ancestors: list[MaxSubpatternNode] = []
        current = node.parent
        while current is not None:
            ancestors.append(current)
            current = current.parent
        return ancestors

    def reachable_ancestors(
        self, node: MaxSubpatternNode
    ) -> list[MaxSubpatternNode]:
        """All existing nodes whose pattern properly contains the node's.

        These are the nodes whose missing set is a proper subset of the
        node's missing set — including the not-physically-linked ones the
        paper's Example 4.2 walks through.  Proper submasks are enumerated
        directly via ``sub = (sub - 1) & mask``; past 20 missing letters a
        scan of the (far smaller) index takes over.
        """
        missing_mask = node.missing_mask
        if not missing_mask:
            return []  # the root misses nothing; no proper submasks exist
        if missing_mask.bit_count() <= 20:
            found: list[MaxSubpatternNode] = []
            index = self._index
            sub = (missing_mask - 1) & missing_mask
            while True:
                candidate = index.get(sub)
                if candidate is not None:
                    found.append(candidate)
                if not sub:
                    return found
                sub = (sub - 1) & missing_mask
        return [
            candidate
            for key, candidate in self._index.items()
            if key != missing_mask and key | missing_mask == missing_mask
        ]

    # ------------------------------------------------------------------
    # Counting and derivation — Algorithm 4.2
    # ------------------------------------------------------------------

    def count_of(self, pattern: Pattern) -> int:
        """Frequency count of any subpattern of ``C_max`` (letters >= 2).

        Sums the counts of the node itself and all its reachable
        ancestors — equivalently, of every stored node whose missing set is
        disjoint from the pattern's letters.

        1-letter patterns are intentionally rejected: their exact counts
        come from the F1 scan and are not represented in the tree.
        """
        mask = self._mask_of(pattern)
        if mask.bit_count() < 2:
            raise MiningError(
                "the tree only counts patterns with >= 2 letters; "
                "1-pattern counts come from the F1 scan"
            )
        return self.count_of_mask(mask)

    def count_of_letters(self, letters: Iterable[Letter]) -> int:
        """Letter-set form of :meth:`count_of` (no size validation)."""
        return self.count_of_mask(self._vocab.encode_letters(letters))

    def count_of_mask(self, mask: int) -> int:
        """Bitmask form of :meth:`count_of` — the hot lookup.

        One ``candidate & missing == 0`` disjointness test per stored
        (memoized) row.  Batch queries over a whole candidate set should
        use :meth:`count_masks` instead, which never loops candidates
        times stored rows.
        """
        total = 0
        for missing_mask, count in self._missing_rows():
            if not mask & missing_mask:
                total += count
        return total

    def _superset_table(self) -> SubmaskCountTable | None:
        """Memoized superset-sum table over the full C_max universe.

        Built on first batched count/derivation and reused until the next
        insert/merge (the same invalidation as the other memos), so
        repeated derivations — threshold sweeps, re-queries — pay the table
        build once.  ``None`` when C_max is too wide for a dense table; the
        callers then fall back to the sparse projection kernel.
        """
        if self._full_mask.bit_count() > MAX_TABLE_BITS:
            return None
        table = self._count_table
        if table is None:
            table = SubmaskCountTable.from_hits(
                self.stored_hits().items(), self._full_mask
            )
            self._count_table = table
        return table

    def count_masks(self, masks: Iterable[int]) -> dict[int, int]:
        """Counts of a whole candidate mask set in one bottom-up pass.

        The batched form of :meth:`count_of_mask`: answers from the
        memoized full-universe superset-sum table when C_max fits one,
        falling back to :func:`repro.kernels.batched.batched_count_masks`
        (the sparse projection kernel) otherwise — never a loop of
        candidates times stored rows.
        """
        table = self._superset_table()
        if table is not None:
            return table.counts(masks)
        return batched_count_masks(
            self.stored_hits().items(), list(masks)
        )

    def derive_frequent(
        self,
        threshold: int,
        f1_counts: Mapping[Letter, int],
        max_letters: int | None = None,
        kernel: str = "batched",
    ) -> tuple[dict[frozenset[Letter], int], dict[int, int]]:
        """Algorithm 4.2: all frequent patterns from the hit counts.

        Level-wise Apriori over the tree: level 1 is ``F1`` (counts from the
        first scan), level k+1 candidates come from apriori-gen on level k
        and are counted against the stored hits.  The whole derivation runs
        on bitmasks (candidate generation included); results decode to
        letter sets once, on return.

        ``kernel`` selects the counting strategy: ``"batched"`` (default)
        answers every level from one superset-sum pass over the stored
        hits (:func:`repro.kernels.batched.derive_frequent_masks`);
        ``"columnar"`` shares that derivation (the columnar tier differs
        in the scans, not here — the tree's hit rows are already the
        distinct-mask collapse); ``"legacy"`` keeps the original
        per-candidate loop as the escape hatch and equivalence oracle.
        Outputs are identical.

        ``max_letters`` optionally caps the derived pattern size.  The
        complete frequent set is exponential on degenerate inputs (e.g. a
        feature present at every offset of every segment), so callers that
        only need short patterns should cap the derivation.

        Returns
        -------
        (counts, candidate_counts):
            ``counts`` maps each frequent letter set to its frequency count;
            ``candidate_counts`` records candidates examined per level for
            the cost statistics.
        """
        vocab = self._vocab
        f1_bit_counts = {
            vocab.bit_of(letter): count for letter, count in f1_counts.items()
        }
        if kernel in ("batched", "columnar"):
            # The memoized full-universe table always covers F1 (F1 letters
            # are C_max letters), so the hit rows are only materialized
            # when no dense table exists.
            table = self._superset_table()
            hits = (
                () if table is not None else self.stored_hits().items()
            )
            mask_counts, candidate_counts = derive_frequent_masks(
                hits,
                threshold,
                f1_bit_counts,
                max_letters=max_letters,
                table=table,
            )
        elif kernel == "legacy":
            mask_counts, candidate_counts = self._derive_frequent_legacy(
                threshold, f1_bit_counts, max_letters
            )
        else:
            raise MiningError(
                f"unknown kernel {kernel!r}; use 'columnar', 'batched' "
                "or 'legacy'"
            )
        counts = {
            vocab.decode_mask(mask): count
            for mask, count in mask_counts.items()
        }
        return counts, candidate_counts

    def _derive_frequent_legacy(
        self,
        threshold: int,
        f1_bit_counts: Mapping[int, int],
        max_letters: int | None,
    ) -> tuple[dict[int, int], dict[int, int]]:
        """The original per-candidate derivation loop (equivalence oracle).

        One pass over the stored rows per candidate — the quadratic shape
        the batched kernel replaces; kept verbatim so ``--kernel legacy``
        bisects kernel regressions and the tests can hold the two equal.
        """
        mask_counts = dict(f1_bit_counts)
        candidate_counts = {1: len(f1_bit_counts)}
        frequent_level = set(mask_counts)
        level = 1
        stored = self._missing_rows()
        while frequent_level:
            if max_letters is not None and level >= max_letters:
                break
            candidates = generate_candidate_masks(frequent_level)
            if not candidates:
                break
            level += 1
            candidate_counts[level] = len(candidates)
            frequent_level = set()
            for candidate in candidates:
                total = 0
                # repro: the per-candidate scan the batched kernel avoids.
                for missing_mask, count in stored:
                    if not candidate & missing_mask:
                        total += count
                if total >= threshold:
                    mask_counts[candidate] = total
                    frequent_level.add(candidate)
        return mask_counts, candidate_counts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mask_of(self, pattern: Pattern) -> int:
        """A subpattern's bitmask over the tree vocabulary, validated."""
        if pattern.period != self._max_pattern.period:
            raise PatternError(
                f"pattern period {pattern.period} != tree period "
                f"{self._max_pattern.period}"
            )
        try:
            return self._vocab.encode_letters(pattern.letters)
        except EncodingError:
            raise PatternError(
                f"{pattern} is not a subpattern of C_max"
            ) from None

    def __repr__(self) -> str:
        return (
            f"MaxSubpatternTree(C_max={self._max_pattern}, "
            f"nodes={self.node_count}, hits={self.hit_set_size})"
        )


def tree_from_hits(
    max_pattern: Pattern,
    hits: Iterable[tuple[Pattern, int]],
) -> MaxSubpatternTree:
    """Build a tree directly from ``(pattern, count)`` pairs (test helper)."""
    tree = MaxSubpatternTree(max_pattern)
    for pattern, count in hits:
        tree.insert(pattern, count)
    return tree
