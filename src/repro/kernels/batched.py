"""Batched candidate counting — one pass over the hits, all candidates at once.

The legacy derivation path (Algorithm 4.2 as first implemented in
:mod:`repro.tree.max_subpattern_tree`) answers each candidate with its own
pass over the stored hits: ``candidates x stored`` disjointness tests per
level.  The paper's observation that the tree already holds *all* the
information needed for *every* subpattern count invites the batched dual:
walk the stored hits once and push each hit's count into every candidate it
covers.

Two kernels implement that, picked automatically by candidate-universe
width:

* :class:`SubmaskCountTable` — the superset-sum (zeta) transform.
  Project every stored hit onto the candidate universe, scatter the counts
  into a ``2^n`` table, then run the standard in-place superset-sum so that
  ``table[X] = sum(count(T) for T superset of X)``.  Cost ``O(2^n * n)``
  once, then every candidate of every level is a single table lookup.  With
  the paper's Table-1 parameters (``|F1| = 12``) the table has 4096 entries
  — far below the work of even one legacy level.  When the hit rows are few
  and narrow (small inputs), the same table is built as a sparse dict by
  enumerating each distinct projection's submasks instead — identical
  lookups, without paying the ``2^n`` sweep.
* **Sparse projection fallback** — when the universe is too wide for a
  table, collapse the stored hits to *distinct projections* onto the
  universe (the per-level memo: hits sharing a projection are touched
  once), then per projection either enumerate its submasks (when
  ``2^popcount`` is small) or scan the candidate list.

Both return exactly the per-candidate totals the legacy loop computes — the
randomized sweep in ``tests/test_kernels.py`` holds them equal to each
other and to brute force.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.candidates import generate_candidate_masks
from repro.core.errors import MiningError

#: Widest candidate universe (in bits) the dense table kernel handles; a
#: ``2^16``-entry list is ~0.5 MB and builds in milliseconds, while wider
#: universes fall back to the sparse projection kernel.
MAX_TABLE_BITS = 16

#: ``(hit mask, count)`` rows — the mergeable scan-2 state all kernels eat.
HitRows = Iterable[tuple[int, int]]


def project_hit_counts(hits: HitRows, universe: int) -> dict[int, int]:
    """Collapse hit rows to distinct projections onto a candidate universe.

    Hits agreeing on ``mask & universe`` are interchangeable for every
    candidate drawn from ``universe``, so their counts merge — this is the
    shared memo both batched kernels start from.
    """
    projected: dict[int, int] = {}
    for mask, count in hits:
        key = mask & universe
        projected[key] = projected.get(key, 0) + count
    return projected


class SubmaskCountTable:
    """Superset-sum table: ``count(X)`` for every ``X`` in a universe.

    Built once from hit rows, then :meth:`count` answers any submask of the
    universe in O(popcount) — the whole candidate set of a derivation costs
    one table build plus one lookup per candidate.

    :meth:`from_hits` picks the cheaper of two equivalent representations:
    a dense ``2^n`` array swept by the in-place superset sum, or — when the
    distinct projections are few and narrow enough that enumerating all of
    their submasks costs less than the sweep — a sparse dict holding only
    the submasks that actually occur (absent keys count zero).

    Examples
    --------
    >>> table = SubmaskCountTable.from_hits([(0b111, 2), (0b011, 1)], 0b111)
    >>> table.count(0b011), table.count(0b100), table.count(0b101)
    (3, 2, 2)
    """

    __slots__ = (
        "_universe",
        "_table",
        "_sparse_table",
        "_dense_bits",
        "_compact_identity",
    )

    def __init__(
        self,
        universe: int,
        table: "np.ndarray | None" = None,
        sparse_table: "dict[int, int] | None" = None,
    ):
        if (table is None) == (sparse_table is None):
            raise MiningError(
                "exactly one of table / sparse_table must be given"
            )
        self._universe = universe
        self._table = table if table is not None else np.zeros(1, np.int64)
        # Sparse dict tables key on raw (uncompacted) masks; absent keys
        # count zero.
        self._sparse_table = sparse_table
        # Map each universe bit to its dense position so sparse universes
        # (candidate letters that are not the low bits) compact correctly.
        self._dense_bits: dict[int, int] = {}
        dense = 1
        remaining = universe
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            self._dense_bits[low] = dense
            dense <<= 1
        self._compact_identity = universe == len(self._table) - 1

    @classmethod
    def from_hits(cls, hits: HitRows, universe: int) -> "SubmaskCountTable":
        """Scatter hit counts into the universe and superset-sum in place."""
        bits = universe.bit_count()
        if bits > MAX_TABLE_BITS:
            raise MiningError(
                f"universe of {bits} bits exceeds the dense-table limit "
                f"({MAX_TABLE_BITS}); use the sparse kernel"
            )
        projected = project_hit_counts(hits, universe)
        size = 1 << bits
        # The dense sweep is ``bits`` vectorized passes over a ``2^bits``
        # array; direct submask enumeration pays one Python dict update per
        # enumerated submask (``sum(2^popcount(row))`` of them), each worth
        # roughly an order of magnitude more than a vector element.  Go
        # sparse only when the enumeration is decisively cheaper — few,
        # narrow rows under a wide universe.
        enumeration_cost = 0
        for projection in projected:
            enumeration_cost += 1 << projection.bit_count()
            if enumeration_cost * 16 > size:
                break
        if enumeration_cost * 16 <= size:
            sparse_table: dict[int, int] = {}
            for projection, count in projected.items():
                sub = projection
                while True:
                    sparse_table[sub] = sparse_table.get(sub, 0) + count
                    if not sub:
                        break
                    sub = (sub - 1) & projection
            return cls(universe, sparse_table=sparse_table)
        table = np.zeros(size, np.int64)
        self = cls(universe, table)
        for projection, count in projected.items():
            table[self._compact(projection)] += count
        # In-place superset sum: after processing bit i, table[s] holds the
        # total over all supersets of s within the bits processed so far.
        # Viewing the table as (blocks, 2, 2^i), the middle axis is bit i:
        # one vectorized add folds every with-bit half into its without-bit
        # partner.
        for i in range(bits):
            halves = table.reshape(-1, 2, 1 << i)
            halves[:, 0, :] += halves[:, 1, :]
        return self

    @property
    def universe(self) -> int:
        """The candidate universe the table was built over."""
        return self._universe

    def _compact(self, mask: int) -> int:
        """Repack a submask of the universe onto dense low bits."""
        if self._compact_identity:
            return mask
        out = 0
        dense_bits = self._dense_bits
        while mask:
            low = mask & -mask
            out |= dense_bits[low]
            mask ^= low
        return out

    def count(self, mask: int) -> int:
        """Total hit count over all stored hits containing ``mask``."""
        key = mask & self._universe
        sparse = self._sparse_table
        if sparse is not None:
            return sparse.get(key, 0)
        return int(self._table[self._compact(key)])

    def counts(self, masks: Iterable[int]) -> dict[int, int]:
        """:meth:`count` over a whole candidate set."""
        mask_list = list(masks)
        sparse = self._sparse_table
        if sparse is not None:
            universe = self._universe
            return {
                mask: sparse.get(mask & universe, 0) for mask in mask_list
            }
        universe = self._universe
        if self._compact_identity:
            indices = [mask & universe for mask in mask_list]
        else:
            indices = [self._compact(mask & universe) for mask in mask_list]
        values = self._table[
            np.fromiter(indices, np.intp, len(indices))
        ].tolist()
        return dict(zip(mask_list, values))

    def __repr__(self) -> str:
        return (
            f"SubmaskCountTable(bits={self._universe.bit_count()}, "
            f"total={self.count(0)})"
        )


def batched_count_masks(
    hits: HitRows,
    candidates: Sequence[int],
    max_table_bits: int = MAX_TABLE_BITS,
) -> dict[int, int]:
    """Counts of every candidate mask against the hit rows, in one pass.

    Equivalent to ``{c: sum(n for mask, n in hits if c & ~mask == 0)}``
    but never loops candidates-times-hits: a dense superset-sum table when
    the combined candidate universe fits ``max_table_bits``, the sparse
    projection kernel otherwise.
    """
    if not candidates:
        return {}
    universe = 0
    for candidate in candidates:
        universe |= candidate
    if universe.bit_count() <= max_table_bits:
        table = SubmaskCountTable.from_hits(hits, universe)
        return table.counts(candidates)
    return _sparse_count_masks(hits, candidates, universe)


def _sparse_count_masks(
    hits: HitRows,
    candidates: Sequence[int],
    universe: int,
) -> dict[int, int]:
    """Projection kernel for universes too wide for a dense table.

    Each distinct projection either enumerates its own submasks (cheap when
    the projection is narrow) or scans the candidate list once — never both,
    and never once per (candidate, hit) pair.
    """
    counts = dict.fromkeys(candidates, 0)
    # Enumerating 2^popcount submasks beats scanning the candidate list
    # only while the subset count stays below the list length.
    enumeration_limit = max(len(candidates), 8)
    for projection, count in project_hit_counts(hits, universe).items():
        if (1 << projection.bit_count()) <= enumeration_limit:
            sub = projection
            while True:
                if sub in counts:
                    counts[sub] += count
                if not sub:
                    break
                sub = (sub - 1) & projection
        else:
            for candidate in candidates:
                if not candidate & ~projection:
                    counts[candidate] += count
    return counts


def derive_frequent_masks(
    hits: HitRows,
    threshold: int,
    f1_bit_counts: Mapping[int, int],
    max_letters: int | None = None,
    max_table_bits: int = MAX_TABLE_BITS,
    table: "SubmaskCountTable | None" = None,
) -> tuple[dict[int, int], dict[int, int]]:
    """Algorithm 4.2 on the batched kernels — all frequent masks at once.

    Drop-in mask-level replacement for the legacy per-candidate loop in
    :meth:`~repro.tree.max_subpattern_tree.MaxSubpatternTree.derive_frequent`:
    same level-wise apriori-gen, but every level's candidates are counted
    by one :class:`SubmaskCountTable` lookup apiece (the table is built
    once, up front, over the F1 universe) instead of one pass over the
    stored hits apiece.

    Parameters
    ----------
    hits:
        ``(hit mask, count)`` rows — e.g. a tree's stored hits or a
        :meth:`~repro.kernels.store.SegmentStore.hit_counter` item view.
    threshold:
        The integer frequency threshold.
    f1_bit_counts:
        Level 1: single-bit mask of each frequent letter to its exact count
        from the F1 scan.
    max_letters:
        Optional cap on derived pattern size, as in the legacy path.
    table:
        Optional prebuilt :class:`SubmaskCountTable` whose universe covers
        the F1 letters — e.g. the tree's memoized full-universe table, so
        repeated derivations skip the build entirely.  Ignored (a fresh
        table is built) when its universe does not cover F1.

    Returns
    -------
    (mask_counts, candidate_counts):
        Frequent masks with counts, and candidates examined per level.
    """
    mask_counts = dict(f1_bit_counts)
    candidate_counts = {1: len(f1_bit_counts)}
    frequent_level = set(mask_counts)
    universe = 0
    for bit in f1_bit_counts:
        universe |= bit
    if table is not None and universe & ~table.universe:
        table = None
    hit_rows: list[tuple[int, int]] | None = None
    if frequent_level and table is None:
        if universe.bit_count() <= max_table_bits:
            table = SubmaskCountTable.from_hits(hits, universe)
        else:
            hit_rows = list(hits)
    level = 1
    while frequent_level:
        if max_letters is not None and level >= max_letters:
            break
        candidates = generate_candidate_masks(frequent_level)
        if not candidates:
            break
        level += 1
        candidate_counts[level] = len(candidates)
        if table is not None:
            level_counts = table.counts(candidates)
        else:
            assert hit_rows is not None
            level_counts = _sparse_count_masks(
                hit_rows, list(candidates), universe
            )
        frequent_level = {
            candidate
            for candidate, total in level_counts.items()
            if total >= threshold
        }
        for candidate in frequent_level:
            mask_counts[candidate] = level_counts[candidate]
    return mask_counts, candidate_counts
