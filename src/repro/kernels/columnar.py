"""Columnar scan kernels — vectorized mask ops over the segment column.

A packed :class:`~repro.kernels.store.SegmentStore` already lays the
encoded series out as a contiguous ``array('Q')`` buffer (or an mmap'd
on-disk file).  This module reinterprets that buffer as a numpy ``uint64``
column — zero-copy via ``np.frombuffer`` / ``np.memmap`` — and runs every
scan kernel as a bulk array op instead of a Python loop:

* **Scan 1** (letter counting) — unpack the column to a bit matrix in
  fixed-size chunks and sum each bit lane: one ``popcount``-style pass
  yields the occurrence count of all 64 letters at once
  (:func:`letter_bit_totals`).
* **Scan 2** (hit collection) — ``np.unique`` over the column collapses
  segments to the distinct-mask multiset (:func:`distinct_counts`); a
  vectorized ``np.bitwise_count`` filter keeps the >= 2-letter hits
  (:func:`hit_counter`), and projecting hits onto the tree vocabulary is
  one shift/OR sweep per kept bit lane (:func:`remap_counts`).
* **Verification** — candidate counts as a broadcast AND/compare reduction
  over the distinct-mask table: ``(rows & candidate) == candidate`` for a
  whole candidate block, then one matvec with the row counts
  (:func:`count_masks`).
* **Sparse alphabets** — :class:`LetterBitmapIndex` holds one packed
  occurrence bitmap per letter; a candidate's count is the popcount of the
  AND of its letters' bitmaps, and a letter with zero occurrences
  short-circuits the whole candidate without touching the column.

Every kernel works in bounded chunks (:data:`CHUNK_ROWS`), so the same
code path serves in-memory columns and mmap'd stores far larger than RAM:
peak working memory is ``O(CHUNK_ROWS + distinct masks)`` regardless of
column length.  All kernels are exact — the differential fuzzer
(:mod:`repro.devtools.fuzz`) and the randomized sweeps in
``tests/test_columnar.py`` hold them letter-identical to the batched and
legacy tiers and to brute force.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.encoding.vocabulary import LetterVocabulary

#: Rows (segment masks) processed per chunk by every columnar kernel.
#: 64Ki rows = 512 KiB of column per chunk — small enough that mmap'd
#: stores mine in bounded memory, large enough to amortize numpy call
#: overhead.  Kept a multiple of 8 so per-chunk bit matrices pack into
#: whole bitmap bytes.
CHUNK_ROWS = 1 << 16

#: Bit width of a packed segment mask (one ``uint64`` per segment).
COLUMN_BITS = 64


def as_uint64(column: "np.ndarray") -> "np.ndarray":
    """The column as little-endian ``uint64`` (no copy on native LE data).

    Every kernel below slices raw bytes out of the masks, so the byte
    order must be pinned; on big-endian hosts this is one byteswapped
    copy, on the common case it is the input array unchanged.
    """
    return np.ascontiguousarray(column, dtype="<u8")


def letter_bit_totals(column: "np.ndarray") -> "np.ndarray":
    """Scan 1 as one vectorized pass: occurrence count of every bit lane.

    Returns a ``(64,)`` int64 vector where entry ``i`` is the number of
    column rows with bit ``i`` set — the frequency count of letter ``i``.
    Runs chunk-wise: unpack each chunk's bytes to a ``rows x 64`` bit
    matrix and column-sum it.
    """
    column = as_uint64(column)
    totals = np.zeros(COLUMN_BITS, np.int64)
    for start in range(0, len(column), CHUNK_ROWS):
        chunk = column[start : start + CHUNK_ROWS]
        bits = np.unpackbits(chunk.view(np.uint8), bitorder="little")
        totals += bits.reshape(-1, COLUMN_BITS).sum(axis=0, dtype=np.int64)
    return totals


def letter_counts(column: "np.ndarray", vocab: LetterVocabulary) -> Counter:
    """Scan-1 state: letter -> occurrence count, from the bit totals.

    Letters with zero occurrences are omitted, matching
    :func:`repro.core.counting.letter_counts_for_segments`.
    """
    totals = letter_bit_totals(column)
    counts: Counter = Counter()
    for letter_id, letter in enumerate(vocab):
        total = int(totals[letter_id])
        if total:
            counts[letter] = total
    return counts


def distinct_counts(column: "np.ndarray") -> Counter:
    """Scan-2 state: the distinct-mask multiset, via chunked ``np.unique``.

    Chunking bounds the sort working set on mmap'd columns; per-chunk
    results merge into one counter keyed by plain Python ints (periodic
    data has orders of magnitude fewer distinct masks than segments, so
    the merge touches few keys).
    """
    column = as_uint64(column)
    merged: dict[int, int] = {}
    for start in range(0, len(column), CHUNK_ROWS):
        values, counts = np.unique(
            column[start : start + CHUNK_ROWS], return_counts=True
        )
        for value, count in zip(values.tolist(), counts.tolist()):
            merged[value] = merged.get(value, 0) + count
    return Counter(merged)


def hit_counter(distinct: Counter, min_letters: int = 2) -> Counter:
    """Distinct masks with at least ``min_letters`` bits — the tree's hits.

    The popcount filter runs vectorized over the distinct keys
    (``np.bitwise_count``), not per segment.
    """
    if not distinct:
        return Counter()
    values = np.fromiter(distinct.keys(), np.uint64, count=len(distinct))
    kept = values[np.bitwise_count(values) >= min_letters]
    return Counter({int(value): distinct[int(value)] for value in kept})


def remap_counts(
    distinct: Counter, table: Sequence[int], min_letters: int = 2
) -> Counter:
    """Project distinct-mask counts onto a target vocabulary, vectorized.

    The scan-2 "hit" computation over an already-encoded column: ``table``
    is a :meth:`~repro.encoding.vocabulary.LetterVocabulary.remap_table`
    (source bit -> target bit, ``-1`` drops the letter).  Each kept source
    bit is shifted to its target lane with one shift/AND/OR over the whole
    distinct-key vector; projected masks that collide are re-aggregated
    with ``np.unique`` and a weighted bincount, and the popcount filter
    keeps the >= ``min_letters`` hits.  Identical results to remapping
    each mask with :func:`repro.encoding.vocabulary.remap_mask`.
    """
    if not distinct:
        return Counter()
    keys = np.fromiter(distinct.keys(), np.uint64, count=len(distinct))
    weights = np.fromiter(distinct.values(), np.int64, count=len(distinct))
    projected = np.zeros_like(keys)
    one = np.uint64(1)
    for source_bit, target_bit in enumerate(table):
        if target_bit >= 0:
            projected |= (
                (keys >> np.uint64(source_bit)) & one
            ) << np.uint64(target_bit)
    kept = np.bitwise_count(projected) >= min_letters
    if not kept.any():
        return Counter()
    values, inverse = np.unique(projected[kept], return_inverse=True)
    totals = np.bincount(
        inverse, weights=weights[kept], minlength=len(values)
    ).astype(np.int64)
    return Counter(
        dict(zip(values.tolist(), totals.tolist()))
    )


#: Candidate rows per broadcast block in :func:`count_masks`; bounds the
#: ``candidates x distinct`` boolean matrix at ~``512 * distinct`` bytes.
_CANDIDATE_BLOCK = 512


def count_masks(
    distinct: Counter, masks: Sequence[int]
) -> dict[int, int]:
    """Verification: frequency counts of many candidates in one reduction.

    For each block of candidates ``C`` and the distinct rows ``R`` with
    counts ``n``: ``covers = (R & C[:, None]) == C[:, None]`` is the
    subset test for the whole block at once, and ``covers @ n`` the
    per-candidate totals.  Identical results to
    :func:`repro.kernels.batched.batched_count_masks`.
    """
    if not masks:
        return {}
    if not distinct:
        return {int(mask): 0 for mask in masks}
    rows = np.fromiter(distinct.keys(), np.uint64, count=len(distinct))
    row_counts = np.fromiter(
        distinct.values(), np.int64, count=len(distinct)
    )
    candidates = np.fromiter(masks, np.uint64, count=len(masks))
    out: dict[int, int] = {}
    for start in range(0, len(candidates), _CANDIDATE_BLOCK):
        block = candidates[start : start + _CANDIDATE_BLOCK, None]
        covers = (rows[None, :] & block) == block
        totals = covers @ row_counts
        for mask, total in zip(
            candidates[start : start + _CANDIDATE_BLOCK].tolist(),
            totals.tolist(),
        ):
            out[mask] = total
    return out


class LetterBitmapIndex:
    """Per-letter occurrence bitmaps — the sparse-alphabet fast path.

    Row ``i`` of :attr:`bitmaps` is a packed bitset over the segments:
    bit ``j`` set iff segment ``j`` contains letter ``i``.  A candidate's
    frequency count is then the popcount of the AND of its letters' rows
    — ``O(segments / 8)`` bytes per letter instead of a pass over the
    distinct-mask table — and any letter with zero occurrences
    short-circuits the candidate to 0 without touching a single bitmap.

    Built in one chunked pass over the column (the same bit matrix scan 1
    unpacks), so constructing the index costs one scan and answers both
    scan-1 letter totals (:attr:`totals`) and arbitrarily many candidate
    verifications.
    """

    __slots__ = ("bitmaps", "totals", "num_segments")

    def __init__(
        self,
        bitmaps: "np.ndarray",
        totals: "np.ndarray",
        num_segments: int,
    ):
        self.bitmaps = bitmaps
        self.totals = totals
        self.num_segments = num_segments

    @classmethod
    def from_column(cls, column: "np.ndarray") -> "LetterBitmapIndex":
        """Build the index chunk-wise; bounded memory on mmap'd columns."""
        column = as_uint64(column)
        num_segments = len(column)
        chunks: list[np.ndarray] = []
        for start in range(0, num_segments, CHUNK_ROWS):
            chunk = column[start : start + CHUNK_ROWS]
            bits = np.unpackbits(chunk.view(np.uint8), bitorder="little")
            matrix = bits.reshape(-1, COLUMN_BITS)
            # Transpose to letter-major and pack each letter's lane; the
            # chunk size is a multiple of 8 so chunk boundaries land on
            # whole bitmap bytes.
            chunks.append(
                np.packbits(
                    np.ascontiguousarray(matrix.T), axis=1, bitorder="little"
                )
            )
        if chunks:
            bitmaps = np.concatenate(chunks, axis=1)
        else:
            bitmaps = np.zeros((COLUMN_BITS, 0), np.uint8)
        totals = np.bitwise_count(bitmaps).sum(axis=1, dtype=np.int64)
        return cls(bitmaps, totals, num_segments)

    def letter_counts(self, vocab: LetterVocabulary) -> Counter:
        """Scan-1 state from the index (free once the index exists)."""
        counts: Counter = Counter()
        for letter_id, letter in enumerate(vocab):
            total = int(self.totals[letter_id])
            if total:
                counts[letter] = total
        return counts

    def count_mask(self, mask: int) -> int:
        """One candidate's frequency count by bitmap intersection."""
        if mask == 0:
            return self.num_segments
        bits = sorted(
            _iter_bits(mask), key=lambda bit: int(self.totals[bit])
        )
        # Rarest letter first: a zero-support letter answers immediately
        # and the intersection shrinks fastest.
        if int(self.totals[bits[0]]) == 0:
            return 0
        acc = self.bitmaps[bits[0]]
        for bit in bits[1:]:
            acc = acc & self.bitmaps[bit]
        return int(np.bitwise_count(acc).sum())

    def count_masks(self, masks: Iterable[int]) -> dict[int, int]:
        """Batched candidate counts over the per-letter bitmaps."""
        return {int(mask): self.count_mask(int(mask)) for mask in masks}


def _iter_bits(mask: int) -> Iterable[int]:
    """Yield the set bit positions of a mask, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


__all__ = [
    "CHUNK_ROWS",
    "COLUMN_BITS",
    "LetterBitmapIndex",
    "as_uint64",
    "count_masks",
    "distinct_counts",
    "hit_counter",
    "letter_bit_totals",
    "letter_counts",
    "remap_counts",
]
