"""Batched counting kernels and the cross-query count cache.

The performance layer under every miner:

* :mod:`~repro.kernels.batched` — single-pass candidate counting: the
  dense superset-sum table and the sparse projection kernel that replace
  the legacy per-candidate walks of Algorithm 4.2;
* :mod:`~repro.kernels.store` — :class:`SegmentStore`, the contiguous
  ``array``-backed buffer of encoded segments shared by scan 1, scan 2 and
  verification;
* :mod:`~repro.kernels.cache` — :class:`CountCache`, memoized scan results
  keyed by (series fingerprint, period, letter-order hash) so re-mining at
  a different ``min_conf`` never rescans the data;
* :mod:`~repro.kernels.profile` — :class:`MiningProfile`, the per-stage
  wall-time/cache-counter ledger behind ``ppm mine --profile``.

Every kernel is an exact drop-in: the legacy paths remain selectable
(``kernel="legacy"`` / ``--kernel legacy``) as the equivalence oracle, and
the randomized sweep in ``tests/test_kernels.py`` holds batched == legacy
== brute force.  See ``docs/kernels.md``.
"""

from repro.kernels.batched import (
    MAX_TABLE_BITS,
    SubmaskCountTable,
    batched_count_masks,
    derive_frequent_masks,
    project_hit_counts,
)
from repro.kernels.cache import CacheKey, CacheStats, CountCache, letters_hash
from repro.kernels.profile import MiningProfile, StageTiming
from repro.kernels.store import SegmentStore

#: The selectable counting kernels; "batched" is the default everywhere.
KERNELS = ("batched", "legacy")

__all__ = [
    "KERNELS",
    "MAX_TABLE_BITS",
    "CacheKey",
    "CacheStats",
    "CountCache",
    "MiningProfile",
    "SegmentStore",
    "StageTiming",
    "SubmaskCountTable",
    "batched_count_masks",
    "derive_frequent_masks",
    "letters_hash",
    "project_hit_counts",
]
