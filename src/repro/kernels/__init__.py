"""Batched and columnar counting kernels plus the cross-query count cache.

The performance layer under every miner:

* :mod:`~repro.kernels.batched` — single-pass candidate counting: the
  dense superset-sum table and the sparse projection kernel that replace
  the legacy per-candidate walks of Algorithm 4.2;
* :mod:`~repro.kernels.columnar` — the vectorized scan tier
  (``kernel="columnar"``): the store buffer viewed as a numpy ``uint64``
  column, scan 1 as one unpack-and-sum pass, scan 2 as chunked
  ``np.unique``, verification as a broadcast AND/compare reduction, and
  per-letter occurrence bitmap indexes for sparse alphabets;
* :mod:`~repro.kernels.store` — :class:`SegmentStore`, the contiguous
  ``array``-backed buffer of encoded segments shared by scan 1, scan 2 and
  verification — persistable to disk (:meth:`SegmentStore.to_file` /
  :meth:`SegmentStore.from_file`) and spillable during the encode pass
  (:class:`StoreOptions`), so out-of-core series mine over ``np.memmap``;
* :mod:`~repro.kernels.cache` — :class:`CountCache`, memoized scan results
  keyed by (series fingerprint, period, letter-order hash) so re-mining at
  a different ``min_conf`` never rescans the data;
* :mod:`~repro.kernels.profile` — :class:`MiningProfile`, the per-stage
  wall-time/cache-counter ledger behind ``ppm mine --profile``.

Every kernel is an exact drop-in: the legacy paths remain selectable
(``kernel="legacy"`` / ``--kernel legacy``) as the equivalence oracle, the
randomized sweeps in ``tests/test_kernels.py`` / ``tests/test_columnar.py``
hold columnar == batched == legacy == brute force, and the differential
fuzzer (:mod:`repro.devtools.fuzz`, ``ppm fuzz``) hammers the same
invariant across randomized corners.  See ``docs/kernels.md``.
"""

from repro.kernels.batched import (
    MAX_TABLE_BITS,
    SubmaskCountTable,
    batched_count_masks,
    derive_frequent_masks,
    project_hit_counts,
)
from repro.kernels.cache import CacheKey, CacheStats, CountCache, letters_hash
from repro.kernels.columnar import LetterBitmapIndex
from repro.kernels.profile import MiningProfile, StageTiming
from repro.kernels.store import (
    SegmentStore,
    StoreOptions,
    WideVocabularyError,
)

#: The selectable counting kernels; "batched" is the default everywhere.
#: "columnar" runs both scans as vectorized array ops over the store
#: column (falling back to the batched paths when the vocabulary is too
#: wide to pack); "legacy" keeps the per-candidate walks as the oracle.
KERNELS = ("columnar", "batched", "legacy")

__all__ = [
    "KERNELS",
    "MAX_TABLE_BITS",
    "CacheKey",
    "CacheStats",
    "CountCache",
    "LetterBitmapIndex",
    "MiningProfile",
    "SegmentStore",
    "StageTiming",
    "StoreOptions",
    "SubmaskCountTable",
    "WideVocabularyError",
    "batched_count_masks",
    "derive_frequent_masks",
    "letters_hash",
    "project_hit_counts",
]
