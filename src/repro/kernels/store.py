"""The contiguous segment store — one flat buffer of encoded segments.

Scan 1, scan 2 and brute-force verification all consume the same
information: the bitmask of every whole period segment over some
vocabulary.  :class:`SegmentStore` materializes that once into a contiguous
``array('Q')`` buffer (a Python ``list`` of ints only when the vocabulary
overflows 64 bits), so that

* the buffer pickles as one compact bytes blob instead of per-segment
  objects — shard payloads and cross-process hand-off ship the raw array;
* repeated counting passes (hit collection, candidate verification, letter
  counting) iterate machine ints with zero per-segment allocation;
* the distinct-mask multiset — the complete scan-2 state of Algorithm 3.2
  — is computed once and memoized, after which every consumer works on
  ``O(distinct hits)`` rows instead of ``O(segments)``.

A store is built per ``(series, period, vocabulary)`` and is then shared by
every stage of that query — and, through
:class:`~repro.kernels.cache.CountCache`, its derived tables outlive the
query entirely.
"""

from __future__ import annotations

from array import array
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.core.errors import EncodingError
from repro.core.pattern import Letter
from repro.encoding.codec import SegmentEncoder
from repro.encoding.vocabulary import LetterVocabulary
from repro.kernels.batched import batched_count_masks
from repro.timeseries.feature_series import FeatureSeries

#: Vocabulary widths up to this many letters pack into an ``array('Q')``;
#: wider vocabularies fall back to a plain list of Python ints.
PACKED_MAX_BITS = 64


def _restore_packed(
    letters: tuple[Letter, ...], period: int, raw: bytes
) -> "SegmentStore":
    """Unpickle helper: rebuild a packed store from its raw buffer."""
    masks = array("Q")
    masks.frombytes(raw)
    vocab = LetterVocabulary(letters, period=period)
    return SegmentStore(vocab, period, masks, _prebuilt=True)


def _restore_wide(
    letters: tuple[Letter, ...], period: int, masks: tuple[int, ...]
) -> "SegmentStore":
    """Unpickle helper: rebuild a wide (>64-letter) store."""
    vocab = LetterVocabulary(letters, period=period)
    return SegmentStore(vocab, period, list(masks), _prebuilt=True)


class SegmentStore:
    """Encoded whole segments of one period in a contiguous buffer.

    Examples
    --------
    >>> series = FeatureSeries.from_symbols("abdabcabd")
    >>> store = SegmentStore.from_series(series, 3)
    >>> len(store), store.distinct_count
    (3, 2)
    >>> store.count_mask(store.vocab.encode_letters([(0, "a"), (1, "b")]))
    3
    """

    __slots__ = ("_vocab", "_period", "_masks", "_distinct", "_packed")

    def __init__(
        self,
        vocab: LetterVocabulary,
        period: int,
        masks: "array[int] | list[int] | Iterable[int]",
        _prebuilt: bool = False,
    ):
        if period < 1:
            raise EncodingError(f"period must be >= 1, got {period}")
        self._vocab = vocab
        self._period = period
        if _prebuilt:
            self._masks = masks  # type: ignore[assignment]
        elif len(vocab) <= PACKED_MAX_BITS:
            self._masks = array("Q", masks)
        else:
            self._masks = list(masks)
        self._packed = isinstance(self._masks, array)
        self._distinct: Counter | None = None

    @classmethod
    def from_series(
        cls,
        series: FeatureSeries,
        period: int,
        vocab: LetterVocabulary | None = None,
    ) -> "SegmentStore":
        """Encode every whole segment of a series into one buffer.

        With an explicit vocabulary (the usual case: the sorted ``C_max``
        letters) this is exactly one scan and letters outside the
        vocabulary are dropped — encoding *is* the hit projection.  Without
        one, the full sorted vocabulary of the series is built first (one
        extra pass).
        """
        if vocab is None:
            from repro.encoding.codec import vocabulary_of_series

            vocab = vocabulary_of_series(series, period)
        encoder = SegmentEncoder(vocab, period)
        encode = encoder.encode_segment
        return cls(
            vocab,
            period,
            (encode(segment) for segment in series.segments(period)),
        )

    # ------------------------------------------------------------------
    # Buffer accessors
    # ------------------------------------------------------------------

    @property
    def vocab(self) -> LetterVocabulary:
        """The vocabulary fixing the bit order of every stored mask."""
        return self._vocab

    @property
    def period(self) -> int:
        """The period the series was segmented by."""
        return self._period

    @property
    def packed(self) -> bool:
        """True when the buffer is a contiguous ``array('Q')``."""
        return self._packed

    @property
    def nbytes(self) -> int:
        """Size of the mask buffer in bytes (packed stores only)."""
        if isinstance(self._masks, array):
            return len(self._masks) * self._masks.itemsize
        return sum(mask.bit_length() // 8 + 1 for mask in self._masks)

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._masks)

    def __getitem__(self, index: int) -> int:
        return self._masks[index]

    def __reduce__(self):  # type: ignore[override]
        if isinstance(self._masks, array):
            return (
                _restore_packed,
                (self._vocab.letters, self._period, self._masks.tobytes()),
            )
        return (
            _restore_wide,
            (self._vocab.letters, self._period, tuple(self._masks)),
        )

    # ------------------------------------------------------------------
    # Counting kernels — every pass below runs on the flat buffer
    # ------------------------------------------------------------------

    @property
    def distinct_count(self) -> int:
        """Number of distinct segment masks (any bit count)."""
        return len(self.distinct_counts())

    def distinct_counts(self) -> Counter:
        """Multiset of distinct segment masks, memoized.

        The collapse from ``O(segments)`` to ``O(distinct masks)`` rows is
        what every batched consumer builds on; on periodic data distinct
        masks are orders of magnitude fewer than segments.
        """
        if self._distinct is None:
            self._distinct = Counter(self._masks)
        return self._distinct

    def letter_counts(self) -> Counter:
        """Scan-1 state: the count of every vocabulary letter.

        Runs on the distinct-mask memo — one bit walk per distinct mask,
        not per segment.
        """
        bit_totals: dict[int, int] = {}
        for mask, count in self.distinct_counts().items():
            while mask:
                low = mask & -mask
                bit_totals[low] = bit_totals.get(low, 0) + count
                mask ^= low
        vocab = self._vocab
        counts: Counter = Counter()
        for low, total in bit_totals.items():
            counts[vocab[low.bit_length() - 1]] = total
        return counts

    def hit_counter(self, min_letters: int = 2) -> Counter:
        """Scan-2 state: distinct masks with at least ``min_letters`` bits.

        When the store's vocabulary is the sorted ``C_max`` letters this is
        exactly the max-subpattern tree's mergeable content — feed it to
        ``insert_mask`` once per distinct hit.
        """
        return Counter(
            {
                mask: count
                for mask, count in self.distinct_counts().items()
                if mask.bit_count() >= min_letters
            }
        )

    def count_mask(self, mask: int) -> int:
        """Frequency count of one candidate mask (over distinct rows)."""
        return sum(
            count
            for stored, count in self.distinct_counts().items()
            if not mask & ~stored
        )

    def count_masks(self, masks: Sequence[int]) -> dict[int, int]:
        """Batched frequency counts of many candidates in one pass.

        Delegates to :func:`~repro.kernels.batched.batched_count_masks`
        over the distinct-mask rows — the store-level form of the verify
        loop that used to test every candidate against every segment.
        """
        return batched_count_masks(self.distinct_counts().items(), list(masks))

    def __repr__(self) -> str:
        return (
            f"SegmentStore(segments={len(self._masks)}, "
            f"period={self._period}, letters={len(self._vocab)}, "
            f"packed={self._packed})"
        )
