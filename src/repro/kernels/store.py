"""The contiguous segment store — one flat buffer of encoded segments.

Scan 1, scan 2 and brute-force verification all consume the same
information: the bitmask of every whole period segment over some
vocabulary.  :class:`SegmentStore` materializes that once into a contiguous
``array('Q')`` buffer (a Python ``list`` of ints only when the vocabulary
overflows 64 bits), so that

* the buffer pickles as one compact bytes blob instead of per-segment
  objects — shard payloads and cross-process hand-off ship the raw array,
  and mmap-backed stores ship only their file path (the worker re-maps);
* repeated counting passes (hit collection, candidate verification, letter
  counting) run as vectorized numpy kernels over the buffer viewed as a
  ``uint64`` column (:mod:`repro.kernels.columnar`) — zero-copy via
  ``np.frombuffer``;
* the distinct-mask multiset — the complete scan-2 state of Algorithm 3.2
  — is computed once and memoized, after which every consumer works on
  ``O(distinct hits)`` rows instead of ``O(segments)``.

A store is built per ``(series, period, vocabulary)`` and is then shared by
every stage of that query — and, through
:class:`~repro.kernels.cache.CountCache`, its derived tables outlive the
query entirely.

Out-of-core stores
------------------
A packed store round-trips to disk as a raw little-endian ``uint64`` file
plus a JSON sidecar (``<path>.meta.json``) carrying the letter order,
period and row count (:meth:`SegmentStore.to_file` /
:meth:`SegmentStore.from_file`).  :class:`StoreOptions` makes the build
itself out-of-core: once the encode pass crosses ``spill_bytes``, masks
stream to disk in chunks and the finished store is an ``np.memmap`` view —
series far larger than RAM encode and mine in bounded memory, because
every columnar kernel works in fixed-size chunks.
"""

from __future__ import annotations

import json
import os
from array import array
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.errors import EncodingError
from repro.core.pattern import Letter
from repro.encoding.codec import SegmentEncoder, iter_segment_letters
from repro.encoding.vocabulary import LetterVocabulary
from repro.kernels import columnar as _columnar
from repro.kernels.batched import batched_count_masks
from repro.timeseries.feature_series import FeatureSeries

#: Vocabulary widths up to this many letters pack into an ``array('Q')``;
#: wider vocabularies fall back to a plain list of Python ints.
PACKED_MAX_BITS = 64

#: Default in-memory threshold before :class:`StoreOptions` spills the
#: buffer to disk: 64 MiB of masks (8M segments).
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024

#: Rows buffered between disk flushes while spilling.
_SPILL_FLUSH_ROWS = _columnar.CHUNK_ROWS

#: Format tag written to the JSON sidecar of an on-disk store.
_STORE_FORMAT = "repro.segstore/1"


class WideVocabularyError(EncodingError):
    """Raised when a packed-only operation meets a >64-letter vocabulary."""


@dataclass(frozen=True)
class StoreOptions:
    """Where (and when) a store's buffer spills to disk.

    Attributes
    ----------
    directory:
        Directory receiving spilled store files (created on demand) —
        the CLI's ``--store-dir``.
    spill_bytes:
        In-memory threshold: once the encode pass has buffered this many
        bytes of masks, the buffer streams to disk and the finished store
        is mmap-backed.  ``0`` spills unconditionally.
    basename:
        Optional file name for the spilled store.  Defaults to a
        deterministic name derived from the series content digest and
        period, so re-running the same query overwrites (never leaks)
        its own file.
    """

    directory: str | Path
    spill_bytes: int = DEFAULT_SPILL_BYTES
    basename: str | None = None

    def __post_init__(self) -> None:
        if self.spill_bytes < 0:
            raise EncodingError(
                f"spill_bytes must be >= 0, got {self.spill_bytes}"
            )


def _restore_packed(
    letters: tuple[Letter, ...], period: int, raw: bytes
) -> "SegmentStore":
    """Unpickle helper: rebuild a packed store from its raw buffer."""
    masks = array("Q")
    masks.frombytes(raw)
    vocab = LetterVocabulary(letters, period=period)
    return SegmentStore(vocab, period, masks, _prebuilt=True)


def _restore_wide(
    letters: tuple[Letter, ...], period: int, masks: tuple[int, ...]
) -> "SegmentStore":
    """Unpickle helper: rebuild a wide (>64-letter) store."""
    vocab = LetterVocabulary(letters, period=period)
    return SegmentStore(vocab, period, list(masks), _prebuilt=True)


def _restore_mapped(path: str) -> "SegmentStore":
    """Unpickle helper: re-map an on-disk store instead of copying bytes.

    This is how engine shard payloads ship an out-of-core store across
    process boundaries — the pickle carries only the path; the worker
    maps the same file read-only.
    """
    return SegmentStore.from_file(path)


class SegmentStore:
    """Encoded whole segments of one period in a contiguous buffer.

    Examples
    --------
    >>> series = FeatureSeries.from_symbols("abdabcabd")
    >>> store = SegmentStore.from_series(series, 3)
    >>> len(store), store.distinct_count
    (3, 2)
    >>> store.count_mask(store.vocab.encode_letters([(0, "a"), (1, "b")]))
    3
    """

    __slots__ = (
        "_vocab",
        "_period",
        "_masks",
        "_distinct",
        "_packed",
        "_path",
        "_bitmaps",
    )

    def __init__(
        self,
        vocab: LetterVocabulary,
        period: int,
        masks: "array[int] | list[int] | np.ndarray | Iterable[int]",
        _prebuilt: bool = False,
    ):
        if period < 1:
            raise EncodingError(f"period must be >= 1, got {period}")
        self._vocab = vocab
        self._period = period
        if _prebuilt:
            self._masks = masks  # type: ignore[assignment]
        elif len(vocab) <= PACKED_MAX_BITS:
            self._masks = array("Q", masks)
        else:
            self._masks = list(masks)
        self._packed = isinstance(self._masks, (array, np.ndarray))
        self._distinct: Counter | None = None
        self._path: Path | None = None
        self._bitmaps: "_columnar.LetterBitmapIndex | None" = None

    @classmethod
    def from_series(
        cls,
        series: FeatureSeries,
        period: int,
        vocab: LetterVocabulary | None = None,
        options: StoreOptions | None = None,
    ) -> "SegmentStore":
        """Encode every whole segment of a series into one buffer.

        With an explicit vocabulary (the usual case: the sorted ``C_max``
        letters) this is exactly one scan and letters outside the
        vocabulary are dropped — encoding *is* the hit projection.  Without
        one, the full sorted vocabulary of the series is built first (one
        extra pass).

        ``options`` makes the build out-of-core: past the spill threshold
        the masks stream to disk and the store comes back mmap-backed.
        Wide (>64-letter) vocabularies have no fixed-width on-disk format,
        so they ignore ``options`` and stay in memory.
        """
        if vocab is None:
            from repro.encoding.codec import vocabulary_of_series

            vocab = vocabulary_of_series(series, period)
        encoder = SegmentEncoder(vocab, period)
        encode = encoder.encode_segment
        masks = (encode(segment) for segment in series.segments(period))
        if options is None or len(vocab) > PACKED_MAX_BITS:
            return cls(vocab, period, masks)
        return cls._materialize(
            vocab, period, masks, options, cls._spill_name(series, period, options)
        )

    @classmethod
    def from_series_interned(
        cls,
        series: FeatureSeries,
        period: int,
        options: StoreOptions | None = None,
    ) -> "SegmentStore":
        """One streaming scan: intern letters in arrival order while encoding.

        The columnar tier's scan-1 builder — unlike :meth:`from_series`
        with ``vocab=None`` it never pre-scans the series for the
        vocabulary, so the whole store (and the full-vocabulary letter
        counts derivable from its column) costs exactly one pass.  Bit
        order is arrival order, not sorted order; consumers project onto a
        sorted target via :meth:`LetterVocabulary.remap_table`.

        Raises :class:`WideVocabularyError` as soon as a 65th letter
        appears — the caller falls back to the batched scan paths.
        """
        vocab = LetterVocabulary((), period=period)
        intern = vocab.intern

        def masks() -> Iterator[int]:
            for segment in series.segments(period):
                mask = 0
                for letter in iter_segment_letters(segment):
                    bit_id = intern(letter)
                    if bit_id >= PACKED_MAX_BITS:
                        raise WideVocabularyError(
                            f"vocabulary exceeds {PACKED_MAX_BITS} letters "
                            f"at {letter!r}; no packed column exists"
                        )
                    mask |= 1 << bit_id
                yield mask

        if options is None:
            return cls(vocab, period, array("Q", masks()), _prebuilt=True)
        return cls._materialize(
            vocab, period, masks(), options, cls._spill_name(series, period, options)
        )

    @staticmethod
    def _spill_name(
        series: FeatureSeries, period: int, options: StoreOptions
    ) -> str:
        """Deterministic spill-file name: content digest + period."""
        if options.basename is not None:
            return options.basename
        return f"{series.content_digest()[:16]}-p{period}.seg"

    @classmethod
    def _materialize(
        cls,
        vocab: LetterVocabulary,
        period: int,
        masks: Iterable[int],
        options: StoreOptions,
        basename: str,
    ) -> "SegmentStore":
        """Collect masks, spilling the buffer to disk past the threshold.

        Below ``spill_bytes`` the result is an ordinary in-memory packed
        store; above it the masks stream to ``<directory>/<basename>``
        (written to a temp name, then atomically renamed next to its JSON
        sidecar) and the store comes back as a read-only ``np.memmap``.
        """
        buffer = array("Q")
        handle = None
        final = Path(options.directory) / basename
        tmp = final.with_name(final.name + ".tmp")
        written = 0
        try:
            for mask in masks:
                buffer.append(mask)
                if (
                    handle is None
                    and len(buffer) * buffer.itemsize >= options.spill_bytes
                ):
                    final.parent.mkdir(parents=True, exist_ok=True)
                    handle = open(tmp, "wb")
                if handle is not None and len(buffer) >= _SPILL_FLUSH_ROWS:
                    buffer.tofile(handle)
                    written += len(buffer)
                    buffer = array("Q")
        except BaseException:  # repro: ignore[REP404] -- re-raised immediately; even KeyboardInterrupt must not leak the spill temp file
            if handle is not None:
                handle.close()
                tmp.unlink(missing_ok=True)
            raise
        if handle is None:
            return cls(vocab, period, buffer, _prebuilt=True)
        if buffer:
            buffer.tofile(handle)
            written += len(buffer)
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        cls._write_meta(final, vocab.letters, period, written)
        os.replace(tmp, final)
        return cls.from_file(final)

    # ------------------------------------------------------------------
    # On-disk round trip (out-of-core stores)
    # ------------------------------------------------------------------

    @staticmethod
    def _write_meta(
        path: Path, letters: tuple[Letter, ...], period: int, segments: int
    ) -> None:
        """Write the JSON sidecar describing a raw mask file (atomically)."""
        meta = {
            "format": _STORE_FORMAT,
            "period": period,
            "segments": segments,
            "letters": [[offset, feature] for offset, feature in letters],
        }
        meta_path = Path(str(path) + ".meta.json")
        meta_tmp = meta_path.with_name(meta_path.name + ".tmp")
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        with open(meta_tmp, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(meta_tmp, meta_path)

    def to_file(self, path: "str | Path") -> Path:
        """Persist a packed store: raw little-endian ``uint64`` masks + sidecar.

        The data file is written to a temp name and renamed after its
        sidecar, so a crash mid-write never leaves a readable-but-torn
        store behind.  Wide stores have no fixed-width row format and
        raise :class:`WideVocabularyError`.
        """
        column = self.column()
        if column is None:
            raise WideVocabularyError(
                f"store with {len(self._vocab)} letters exceeds "
                f"{PACKED_MAX_BITS} bits; only packed stores persist"
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            _columnar.as_uint64(column).tofile(handle)
            handle.flush()
            os.fsync(handle.fileno())
        self._write_meta(path, self._vocab.letters, self._period, len(self))
        os.replace(tmp, path)
        return path

    @classmethod
    def from_file(cls, path: "str | Path", mmap: bool = True) -> "SegmentStore":
        """Open a persisted store; ``mmap=True`` (default) maps it read-only.

        The mmap-backed store never loads the buffer into RAM: every
        columnar kernel streams it in fixed-size chunks, so a series far
        larger than memory mines at disk bandwidth.  ``mmap=False`` reads
        the file into an ordinary in-memory ``array('Q')`` store (the
        equivalence baseline).
        """
        path = Path(path)
        meta_path = Path(str(path) + ".meta.json")
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise EncodingError(
                f"store sidecar {meta_path} is missing"
            ) from None
        except json.JSONDecodeError as error:
            raise EncodingError(
                f"store sidecar {meta_path} is corrupt: {error}"
            ) from None
        if meta.get("format") != _STORE_FORMAT:
            raise EncodingError(
                f"store sidecar {meta_path} has unknown format "
                f"{meta.get('format')!r}"
            )
        period = int(meta["period"])
        segments = int(meta["segments"])
        letters = tuple(
            (int(offset), feature) for offset, feature in meta["letters"]
        )
        expected = segments * 8
        actual = path.stat().st_size
        if actual != expected:
            raise EncodingError(
                f"store file {path} holds {actual} bytes; sidecar "
                f"promises {segments} segments ({expected} bytes)"
            )
        vocab = LetterVocabulary(letters, period=period)
        if mmap:
            masks: "np.ndarray | array[int]" = (
                np.memmap(path, dtype="<u8", mode="r")
                if segments
                else np.zeros(0, dtype="<u8")
            )
        else:
            masks = array("Q")
            masks.frombytes(path.read_bytes())
        store = cls(vocab, period, masks, _prebuilt=True)
        store._path = path
        return store

    # ------------------------------------------------------------------
    # Buffer accessors
    # ------------------------------------------------------------------

    @property
    def vocab(self) -> LetterVocabulary:
        """The vocabulary fixing the bit order of every stored mask."""
        return self._vocab

    @property
    def period(self) -> int:
        """The period the series was segmented by."""
        return self._period

    @property
    def packed(self) -> bool:
        """True when the buffer is a contiguous 64-bit row buffer."""
        return self._packed

    @property
    def mapped(self) -> bool:
        """True when the buffer is an mmap/ndarray view of an on-disk file."""
        return isinstance(self._masks, np.ndarray)

    @property
    def path(self) -> Path | None:
        """The on-disk file backing this store, when one exists."""
        return self._path

    @property
    def nbytes(self) -> int:
        """Size of the mask buffer in bytes."""
        if isinstance(self._masks, np.ndarray):
            return int(self._masks.nbytes)
        if isinstance(self._masks, array):
            return len(self._masks) * self._masks.itemsize
        return sum(
            mask.bit_length() // 8 + 1
            for mask in self._masks  # repro: ignore[REP1101] -- wide-vocab fallback: Python ints wider than 64 bits never form a numpy column
        )

    def column(self) -> "np.ndarray | None":
        """The buffer as a numpy ``uint64`` column — zero-copy.

        ``array('Q')`` buffers come back as an ``np.frombuffer`` view and
        mmap-backed stores as the map itself; both share memory with the
        store.  ``None`` for wide (>64-letter) stores, whose masks are
        arbitrary-precision Python ints.
        """
        if isinstance(self._masks, np.ndarray):
            return self._masks
        if isinstance(self._masks, array):
            return np.frombuffer(self._masks, dtype=np.uint64)
        return None

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[int]:
        if isinstance(self._masks, np.ndarray):
            return iter(self._masks.tolist())
        return iter(self._masks)

    def __getitem__(self, index: int) -> int:
        return int(self._masks[index])

    def __reduce__(self):  # type: ignore[override]
        if isinstance(self._masks, np.ndarray):
            if self._path is not None:
                # Ship the path, not the bytes: the worker re-maps the
                # same file instead of copying an out-of-core buffer
                # through the pickle stream.
                return (_restore_mapped, (str(self._path),))
            return (
                _restore_packed,
                (
                    self._vocab.letters,
                    self._period,
                    _columnar.as_uint64(self._masks).tobytes(),
                ),
            )
        if isinstance(self._masks, array):
            return (
                _restore_packed,
                (self._vocab.letters, self._period, self._masks.tobytes()),
            )
        return (
            _restore_wide,
            (self._vocab.letters, self._period, tuple(self._masks)),
        )

    # ------------------------------------------------------------------
    # Counting kernels — every pass below runs on the flat buffer
    # ------------------------------------------------------------------

    @property
    def distinct_count(self) -> int:
        """Number of distinct segment masks (any bit count)."""
        return len(self.distinct_counts())

    def distinct_counts(self) -> Counter:
        """Multiset of distinct segment masks, memoized.

        The collapse from ``O(segments)`` to ``O(distinct masks)`` rows is
        what every batched consumer builds on; on periodic data distinct
        masks are orders of magnitude fewer than segments.  The memo is
        shared by *every* counting entry point — letter counts, hit
        collection, single- and batched-mask verification — so cold-path
        callers never rebuild the pass.  Packed stores compute it as a
        chunked ``np.unique`` over the column (bounded memory on mmap'd
        buffers); only the wide fallback walks Python ints.
        """
        if self._distinct is None:
            column = self.column()
            if column is not None:
                self._distinct = _columnar.distinct_counts(column)
            else:
                counts: Counter = Counter()
                for mask in self._masks:  # repro: ignore[REP1101] -- wide-vocab fallback: >64-letter masks are Python ints, outside any numpy column
                    counts[mask] += 1
                self._distinct = counts
        return self._distinct

    def letter_counts(self) -> Counter:
        """Scan-1 state: the count of every vocabulary letter.

        Packed stores answer straight from the column — one vectorized
        unpack-and-sum pass
        (:func:`repro.kernels.columnar.letter_bit_totals`) in bounded
        chunks, so it never materializes the distinct multiset and stays
        fast even when nearly every mask is distinct (high-noise data,
        where a per-distinct-mask bit walk costs more than rescanning the
        column).  The bit walk over the distinct memo only remains for
        the wide-vocabulary fallback.
        """
        column = self.column()
        if column is not None:
            return _columnar.letter_counts(column, self._vocab)
        bit_totals: dict[int, int] = {}
        for mask, count in self.distinct_counts().items():
            while mask:
                low = mask & -mask
                bit_totals[low] = bit_totals.get(low, 0) + count
                mask ^= low
        vocab = self._vocab
        counts: Counter = Counter()
        for low, total in bit_totals.items():
            counts[vocab[low.bit_length() - 1]] = total
        return counts

    def hit_counter(self, min_letters: int = 2) -> Counter:
        """Scan-2 state: distinct masks with at least ``min_letters`` bits.

        When the store's vocabulary is the sorted ``C_max`` letters this is
        exactly the max-subpattern tree's mergeable content — feed it to
        ``insert_mask`` once per distinct hit.  Packed stores filter with
        a vectorized popcount (``np.bitwise_count``) over the distinct
        keys.
        """
        if self._packed:
            return _columnar.hit_counter(self.distinct_counts(), min_letters)
        return Counter(
            {
                mask: count
                for mask, count in self.distinct_counts().items()
                if mask.bit_count() >= min_letters
            }
        )

    def bitmap_index(self) -> "_columnar.LetterBitmapIndex":
        """The per-letter occurrence bitmap index, built once and memoized.

        The sparse-alphabet verification path: a candidate's count is the
        popcount of the AND of its letters' bitmaps, and a letter with no
        occurrences short-circuits without touching the column.  Requires
        a packed store.
        """
        if self._bitmaps is None:
            column = self.column()
            if column is None:
                raise WideVocabularyError(
                    f"store with {len(self._vocab)} letters exceeds "
                    f"{PACKED_MAX_BITS} bits; bitmap indexes need a column"
                )
            self._bitmaps = _columnar.LetterBitmapIndex.from_column(column)
        return self._bitmaps

    def count_mask(self, mask: int) -> int:
        """Frequency count of one candidate mask (over distinct rows)."""
        return sum(
            count
            for stored, count in self.distinct_counts().items()
            if not mask & ~stored
        )

    def count_masks(
        self, masks: Sequence[int], kernel: str = "batched"
    ) -> dict[int, int]:
        """Batched frequency counts of many candidates in one pass.

        ``kernel="batched"`` delegates to
        :func:`~repro.kernels.batched.batched_count_masks` over the
        distinct-mask rows; ``"columnar"`` answers with the broadcast
        AND/compare reduction (:func:`repro.kernels.columnar.count_masks`)
        — or, when the distinct table outweighs the per-letter bitmaps
        (``distinct * 8 > segments``), with the bitmap-intersection index.
        Results are identical across kernels.
        """
        ordered = list(masks)
        if kernel == "columnar" and self._packed:
            distinct = self.distinct_counts()
            if ordered and len(distinct) * 8 > len(self._masks):
                return self.bitmap_index().count_masks(ordered)
            return _columnar.count_masks(distinct, ordered)
        return batched_count_masks(self.distinct_counts().items(), ordered)

    def __repr__(self) -> str:
        return (
            f"SegmentStore(segments={len(self._masks)}, "
            f"period={self._period}, letters={len(self._vocab)}, "
            f"packed={self._packed}, mapped={self.mapped})"
        )
