"""Per-stage profiling for mining runs — the kernels' observability hook.

:class:`MiningProfile` accumulates wall-clock time, item counts and event
counters per named stage (``scan1``, ``scan2``, ``derive``, ``merge``,
``partition``) across serial and engine runs alike.  The serial miners
time their stages directly; the parallel engine adds its partition/merge
overheads and fan-out wall times; the count cache reports hits and misses
through :meth:`count`.

It renders as a fixed-width table for ``ppm mine --profile`` and as plain
JSON for ``--profile-json`` — no dependency beyond the standard library,
and importable from :mod:`repro.engine.stats` where the rest of the run
accounting lives.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

#: Canonical stage order for display; unknown stages append after these.
STAGE_ORDER = ("partition", "scan1", "tree", "scan2", "merge", "derive")


@dataclass(slots=True)
class StageTiming:
    """Accumulated cost of one named stage."""

    name: str
    elapsed_s: float = 0.0
    #: Work items the stage processed (segments, candidates, shards ...);
    #: 0 when the stage has no natural unit.
    items: int = 0
    #: Times the stage ran (a stage can repeat, e.g. per shard or level).
    calls: int = 0


class MiningProfile:
    """Mutable per-stage ledger threaded through one mining call.

    Examples
    --------
    >>> profile = MiningProfile()
    >>> with profile.stage("scan1", items=10):
    ...     pass
    >>> profile.counters.get("cache_hits", 0)
    0
    >>> "scan1" in profile.to_json()["stages"]
    True
    """

    __slots__ = ("_stages", "counters")

    def __init__(self) -> None:
        self._stages: dict[str, StageTiming] = {}
        #: Event tallies: cache_hits, cache_misses, distinct_hits, ...
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, items: int = 0) -> Iterator[StageTiming]:
        """Time a block as one run of stage ``name``."""
        timing = self._stages.setdefault(name, StageTiming(name))
        started = time.perf_counter()
        try:
            yield timing
        finally:
            timing.elapsed_s += time.perf_counter() - started
            timing.items += items
            timing.calls += 1

    def add_stage(self, name: str, elapsed_s: float, items: int = 0) -> None:
        """Record an externally-timed stage run (engine phases)."""
        timing = self._stages.setdefault(name, StageTiming(name))
        timing.elapsed_s += elapsed_s
        timing.items += items
        timing.calls += 1

    def add_items(self, name: str, items: int) -> None:
        """Attach item counts to a stage after the fact."""
        timing = self._stages.setdefault(name, StageTiming(name))
        timing.items += items

    def count(self, name: str, amount: int = 1) -> None:
        """Bump an event counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def stages(self) -> list[StageTiming]:
        """Recorded stages in canonical display order."""
        known = [
            self._stages[name] for name in STAGE_ORDER if name in self._stages
        ]
        extra = [
            timing
            for name, timing in self._stages.items()
            if name not in STAGE_ORDER
        ]
        return known + extra

    @property
    def total_s(self) -> float:
        """Summed stage time (excludes unprofiled glue)."""
        return sum(timing.elapsed_s for timing in self._stages.values())

    def table(self) -> str:
        """The fixed-width table ``ppm mine --profile`` prints."""
        lines = [
            f"{'stage':<12} {'time_ms':>10} {'items':>10} {'calls':>6}",
            "-" * 41,
        ]
        for timing in self.stages:
            lines.append(
                f"{timing.name:<12} {timing.elapsed_s * 1e3:>10.1f} "
                f"{timing.items:>10} {timing.calls:>6}"
            )
        lines.append(
            f"{'total':<12} {self.total_s * 1e3:>10.1f} {'':>10} {'':>6}"
        )
        if self.counters:
            lines.append("")
            for name in sorted(self.counters):
                lines.append(f"{name:<24} {self.counters[name]}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Plain-JSON form for ``--profile-json`` and programmatic use."""
        return {
            "stages": {
                timing.name: {
                    "elapsed_s": timing.elapsed_s,
                    "items": timing.items,
                    "calls": timing.calls,
                }
                for timing in self.stages
            },
            "counters": dict(sorted(self.counters.items())),
            "total_s": self.total_s,
        }

    def __repr__(self) -> str:
        names = ",".join(timing.name for timing in self.stages)
        return f"MiningProfile(stages=[{names}], total={self.total_s:.3f}s)"
