"""The cross-query count cache — re-mining without touching the data.

Section 4.2 of the paper points out that the max-subpattern tree built for
one ``min_conf`` already answers any *higher* threshold: the hit counts do
not depend on the threshold at all, only the F1 filter does.
:class:`CountCache` turns that observation into a query cache keyed by

* the **series fingerprint** (content digest — edits invalidate),
* the **period**, and
* the **letter-order hash** of each memoized hit table (vocabulary remaps
  invalidate).

Two tables are cached per ``(fingerprint, period)``:

* the full scan-1 **letter counts** (unfiltered, so *any* ``min_conf``
  re-derives its F1 without a scan), and
* one scan-2 **hit table** per distinct ``C_max`` letter order — the
  ``{hit mask: count}`` multiset that rebuilds the tree.

A re-query at a higher ``min_conf`` shrinks F1, so its letter order is a
*subset* of a cached one; the cached table then **projects** onto the new
order (drop absent letters via the vocabulary remap, merge colliding
projections, drop sub-2-letter rows exactly as scan-2 insertion would) —
still no scan.  A lower ``min_conf`` can grow F1 beyond any cached order
and is a legitimate miss.

With ``cache_dir`` set, entries persist as one JSON file per key and
survive the process, giving ``ppm mine --cache-dir`` warm starts.

The cache is safe to share across threads (``repro.serve`` mines on a
thread pool): every public method holds one reentrant lock, persisted
writes go through a per-writer temporary file renamed into place, and a
writer that loses a rename race simply leaves the winner's file — both
wrote equivalent content for the same key.  ``max_entries`` bounds the
cache in LRU order; eviction drops the entry from memory *and* disk and
reports it through ``on_evict``, which is how the serving layer keeps
its per-tenant ledgers in sync.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from collections import Counter, OrderedDict
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import MiningError
from repro.core.pattern import Letter
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.resilience.journal import series_fingerprint
from repro.timeseries.feature_series import FeatureSeries

#: Format tag written into every persisted cache entry.
FORMAT_TAG = "repro.countcache/1"


def letters_hash(letters: Iterable[Letter]) -> str:
    """A stable short digest of a letter order (the vocab hash of the key).

    Order-sensitive on purpose: the letter order *is* the bit order of
    every mask in a hit table, so two orders over the same letters are
    different vocabularies.
    """
    digest = hashlib.sha256()
    for offset, feature in letters:
        digest.update(f"{offset}\x1f{feature}\x1e".encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Identity of one cacheable query target: a series at a period."""

    fingerprint: str
    period: int

    @property
    def file_name(self) -> str:
        """The persisted entry's file name under ``cache_dir``."""
        return f"{self.fingerprint}-p{self.period}.json"


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/store tallies across every lookup kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Hits that were answered by projecting a superset-order table.
    projected: int = 0
    #: Entries dropped by the ``max_entries`` LRU bound or ``evict()``.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"cache: hits={self.hits} misses={self.misses} "
            f"stores={self.stores} projected={self.projected} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.2f}"
        )


@dataclass(slots=True)
class _CacheEntry:
    """In-memory state for one ``(fingerprint, period)``."""

    letter_counts: Counter | None = None
    #: letter-order hash -> (letter order, {hit mask: count}).
    hit_tables: dict[str, tuple[tuple[Letter, ...], dict[int, int]]] = field(
        default_factory=dict
    )


class CountCache:
    """Memoized scan results, optionally persisted to ``cache_dir``.

    Examples
    --------
    >>> from repro.timeseries.feature_series import FeatureSeries
    >>> cache = CountCache()
    >>> series = FeatureSeries.from_symbols("abdabcabd")
    >>> key = cache.key_for(series, 3)
    >>> cache.get_letter_counts(key) is None
    True
    """

    def __init__(
        self,
        cache_dir: "str | Path | None" = None,
        max_entries: int | None = None,
        on_evict: Callable[[CacheKey], None] | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise MiningError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        #: LRU order: oldest-touched entry first.
        self._entries: OrderedDict[CacheKey, _CacheEntry] = OrderedDict()
        self._dir = None if cache_dir is None else Path(cache_dir)
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.on_evict = on_evict
        self._lock = threading.RLock()
        #: Distinguishes concurrent writers' temporary files (with the pid).
        self._tmp_seq = itertools.count()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key_for(self, series: object, period: int) -> CacheKey:
        """The cache key of a series at a period.

        Fingerprinting reads the series content once; scan-counting
        wrappers are unwrapped first so the identity check is not billed
        as a mining scan (it is the same digest either way).
        """
        if period < 1:
            raise MiningError(f"period must be >= 1, got {period}")
        if not isinstance(series, FeatureSeries):
            inner = getattr(series, "series", None)
            if isinstance(inner, FeatureSeries):
                series = inner
        if not isinstance(series, FeatureSeries):
            raise MiningError(
                f"cannot fingerprint a {type(series).__name__}; "
                "pass a FeatureSeries"
            )
        return CacheKey(series_fingerprint(series), period)

    # ------------------------------------------------------------------
    # Letter counts (scan-1 state)
    # ------------------------------------------------------------------

    def get_letter_counts(self, key: CacheKey) -> Counter | None:
        """The full (unfiltered) letter counts of a key, or ``None``."""
        with self._lock:
            entry = self._load(key)
            if entry is None or entry.letter_counts is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return Counter(entry.letter_counts)

    def put_letter_counts(
        self, key: CacheKey, counts: Mapping[Letter, int]
    ) -> None:
        """Store the full letter counts of a key (and persist if enabled)."""
        with self._lock:
            entry = self._entry(key)
            entry.letter_counts = Counter(counts)
            self.stats.stores += 1
            self._persist(key, entry)
            self._enforce_bound()

    # ------------------------------------------------------------------
    # Hit tables (scan-2 state)
    # ------------------------------------------------------------------

    def get_hit_table(
        self, key: CacheKey, letter_order: Sequence[Letter]
    ) -> dict[int, int] | None:
        """The hit table of a key for one letter order, or ``None``.

        Answers exactly-matching orders directly and subset orders by
        projecting the narrowest cached superset table (see the module
        docstring for why the projection is exact).
        """
        with self._lock:
            entry = self._load(key)
            order = tuple(letter_order)
            if entry is not None:
                table_hash = letters_hash(order)
                cached = entry.hit_tables.get(table_hash)
                if cached is not None:
                    self.stats.hits += 1
                    return dict(cached[1])
                projected = self._project_from_superset(entry, order)
                if projected is not None:
                    # Memoize the projection so the next identical re-query
                    # is a direct hit, and persist it alongside the source
                    # table.
                    entry.hit_tables[table_hash] = (order, projected)
                    self._persist(key, entry)
                    self.stats.hits += 1
                    self.stats.projected += 1
                    return dict(projected)
            self.stats.misses += 1
            return None

    def put_hit_table(
        self,
        key: CacheKey,
        letter_order: Sequence[Letter],
        table: Mapping[int, int],
    ) -> None:
        """Store a hit table for one letter order (and persist if enabled)."""
        with self._lock:
            entry = self._entry(key)
            order = tuple(letter_order)
            entry.hit_tables[letters_hash(order)] = (order, dict(table))
            self.stats.stores += 1
            self._persist(key, entry)
            self._enforce_bound()

    @staticmethod
    def _project_from_superset(
        entry: _CacheEntry, order: tuple[Letter, ...]
    ) -> dict[int, int] | None:
        """Project the narrowest cached superset-order table onto ``order``.

        Remapping drops letters absent from ``order``, sums colliding
        projections, and discards rows that fall below two letters — the
        exact transformation scan 2 itself applies, so the projected table
        equals the table a fresh scan would have produced.
        """
        wanted = set(order)
        best: tuple[tuple[Letter, ...], dict[int, int]] | None = None
        for stored_order, table in entry.hit_tables.values():
            if wanted <= set(stored_order) and (
                best is None or len(stored_order) < len(best[0])
            ):
                best = (stored_order, table)
        if best is None:
            return None
        stored_order, table = best
        # Period-less vocabularies: only the bit orders matter for remapping.
        source = LetterVocabulary(stored_order)
        target = LetterVocabulary(order)
        remap = source.remap_table(target)
        projected: dict[int, int] = {}
        for mask, count in table.items():
            out = remap_mask(mask, remap)
            if out.bit_count() >= 2:
                projected[out] = projected.get(out, 0) + count
        return projected

    # ------------------------------------------------------------------
    # Bookkeeping and persistence
    # ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Entries currently held in memory."""
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[CacheKey]:
        """The in-memory keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry, in memory and (when persisting) on disk.

        Unlike :meth:`evict`, clearing does not fire ``on_evict`` — it is
        a whole-cache reset, not a policy decision about one entry.
        """
        with self._lock:
            self._entries.clear()
            if self._dir is not None:
                for path in self._dir.glob("*-p*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def evict(self, key: CacheKey) -> bool:
        """Drop one entry from memory and disk; ``True`` if it existed.

        Fires ``on_evict`` and counts toward ``stats.evictions`` — this is
        the hook the serving layer's quota policy calls to reclaim a
        specific tenant's entry.
        """
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            if self._dir is not None:
                try:
                    (self._dir / key.file_name).unlink()
                    existed = True
                except OSError:
                    pass
            if existed:
                self.stats.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(key)
            return existed

    def _enforce_bound(self) -> None:
        """Evict least-recently-used entries down to ``max_entries``."""
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            key, _ = self._entries.popitem(last=False)
            if self._dir is not None:
                try:
                    (self._dir / key.file_name).unlink()
                except OSError:
                    pass
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(key)

    def _entry(self, key: CacheKey) -> _CacheEntry:
        loaded = self._load(key)
        if loaded is not None:
            return loaded
        entry = _CacheEntry()
        self._entries[key] = entry
        return entry

    def _load(self, key: CacheKey) -> _CacheEntry | None:
        """The entry of a key, reading it from disk on first touch.

        Every successful lookup refreshes the key's LRU position.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if self._dir is None:
            return None
        path = self._dir / key.file_name
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("format") != FORMAT_TAG:
            return None
        entry = _CacheEntry()
        raw_letters = payload.get("letter_counts")
        if raw_letters is not None:
            entry.letter_counts = Counter(
                {
                    (int(offset), str(feature)): int(count)
                    for offset, feature, count in raw_letters
                }
            )
        for item in payload.get("hit_tables", []):
            order = tuple(
                (int(offset), str(feature)) for offset, feature in item["letters"]
            )
            table = {int(mask): int(count) for mask, count in item["rows"]}
            entry.hit_tables[letters_hash(order)] = (order, table)
        self._entries[key] = entry
        self._enforce_bound()
        return entry

    def _persist(self, key: CacheKey, entry: _CacheEntry) -> None:
        """Write one entry atomically (write-to-temp, rename into place).

        The temporary name carries the pid and a per-cache sequence
        number, so concurrent writers — other threads of this process or
        other processes sharing ``cache_dir`` — never collide on the same
        temporary file.  ``os.replace`` then makes the final rename
        atomic; a writer that loses the race simply replaces the winner's
        file with equivalent content for the same key, and any OS-level
        failure (a full or vanished cache directory, a permission flip)
        degrades to an in-memory-only entry rather than failing the mine.
        """
        if self._dir is None:
            return
        payload: dict = {
            "format": FORMAT_TAG,
            "fingerprint": key.fingerprint,
            "period": key.period,
        }
        if entry.letter_counts is not None:
            payload["letter_counts"] = [
                [offset, feature, count]
                for (offset, feature), count in sorted(
                    entry.letter_counts.items()
                )
            ]
        payload["hit_tables"] = [
            {
                "letters": [[offset, feature] for offset, feature in order],
                "rows": [[mask, count] for mask, count in sorted(table.items())],
            }
            for order, table in entry.hit_tables.values()
        ]
        path = self._dir / key.file_name
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(self._tmp_seq)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"CountCache(entries={self.entry_count}, {self.stats.summary()})"
