"""Rule mining on top of partial periodic patterns."""

from repro.rules.cyclic import Cycle, find_perfect_cycles, perfect_patterns
from repro.rules.periodic_rules import PeriodicRule, derive_rules, rules_about

__all__ = [
    "Cycle",
    "PeriodicRule",
    "derive_rules",
    "find_perfect_cycles",
    "perfect_patterns",
    "rules_about",
]
