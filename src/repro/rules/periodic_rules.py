"""Periodic association rules derived from frequent partial patterns.

Section 6 lists "mining periodic association rules based on partial
periodicity" among the natural extensions.  A periodic rule
``X => Y  [support, confidence]`` relates two letter-disjoint subpatterns of
the same period: whenever the antecedent ``X`` is true in a period segment,
the consequent ``Y`` tends to be true too.  Rule confidence is
``count(X ∪ Y) / count(X)``; support is the confidence of ``X ∪ Y`` itself.

Both counts are read off a completed :class:`~repro.core.result.MiningResult`
— no extra scans — because the Apriori property guarantees that ``X`` is
frequent whenever ``X ∪ Y`` is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult


@dataclass(frozen=True, slots=True)
class PeriodicRule:
    """One periodic association rule between subpatterns of a period."""

    antecedent: Pattern
    consequent: Pattern
    #: Frequency count of ``antecedent ∪ consequent``.
    joint_count: int
    #: ``joint_count / count(antecedent)``.
    confidence: float
    #: ``joint_count / num_periods`` — the joint pattern's confidence.
    support: float

    def __str__(self) -> str:
        return (
            f"{self.antecedent} => {self.consequent} "
            f"[support={self.support:.3f}, confidence={self.confidence:.3f}]"
        )


def derive_rules(
    result: MiningResult,
    min_rule_conf: float = 0.7,
    max_pattern_letters: int = 8,
) -> list[PeriodicRule]:
    """All periodic rules meeting a rule-confidence threshold.

    For every frequent pattern with at least two letters, every split of
    its letters into a non-empty antecedent and consequent is examined.
    ``max_pattern_letters`` bounds the per-pattern split enumeration
    (``2**letters`` splits); raise it knowingly for long patterns.

    Rules are returned sorted by descending confidence, then support.
    """
    if not 0.0 < min_rule_conf <= 1.0:
        raise MiningError(
            f"min_rule_conf must be in (0, 1], got {min_rule_conf}"
        )
    rules: list[PeriodicRule] = []
    period = result.period
    for pattern, joint_count in result.items():
        letters = pattern.sorted_letters()
        size = len(letters)
        if size < 2 or size > max_pattern_letters:
            continue
        support = joint_count / result.num_periods
        for mask in range(1, (1 << size) - 1):
            antecedent_letters = [
                letters[index] for index in range(size) if mask >> index & 1
            ]
            antecedent = Pattern.from_letters(period, antecedent_letters)
            antecedent_count = result.get(antecedent)
            if antecedent_count <= 0:
                # Cannot happen for a correctly mined result (Apriori
                # property), but guard against hand-built results.
                continue
            confidence = joint_count / antecedent_count
            if confidence >= min_rule_conf:
                consequent = Pattern.from_letters(
                    period,
                    [letters[i] for i in range(size) if not mask >> i & 1],
                )
                rules.append(
                    PeriodicRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        joint_count=joint_count,
                        confidence=confidence,
                        support=support,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
    return rules


def rules_about(
    rules: list[PeriodicRule], feature: str
) -> list[PeriodicRule]:
    """Filter rules whose consequent mentions a feature."""
    return [
        rule
        for rule in rules
        if any(feature in slot for slot in rule.consequent.positions)
    ]
