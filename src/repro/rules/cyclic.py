"""Cyclic (perfect) periodicity — the Özden et al. baseline.

Section 1 of the paper contrasts partial periodicity with the *cyclic
association rules* of Özden, Ramaswamy & Silberschatz (ICDE 1998): cyclic
patterns must recur in **every** cycle (confidence 1), which enables the
"cycle-elimination" optimization — one miss at time ``t`` eliminates every
(period, offset) cycle containing ``t``.

This module implements that baseline for feature series: sequential
detection of all perfectly periodic 1-patterns over a period range, with
cycle elimination, plus assembly into maximal perfect patterns.  The
comparison benchmark shows what perfect periodicity misses on imperfect
(real-life) data, motivating the paper's partial-periodicity relaxation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class Cycle:
    """One perfect cycle: a feature present at every ``offset mod period``."""

    period: int
    offset: int
    feature: str

    def as_pattern(self) -> Pattern:
        """The cycle as a 1-letter pattern of its period."""
        return Pattern.from_letters(self.period, [(self.offset, self.feature)])


@dataclass(slots=True)
class CyclicMiningStats:
    """Cost accounting for the cycle-elimination pass."""

    #: Candidate (feature, period, offset) cycles considered.
    candidates: int = 0
    #: Candidates eliminated before the scan finished.
    eliminated: int = 0
    #: Slots visited (always one scan).
    slots_scanned: int = 0


def find_perfect_cycles(
    series: FeatureSeries,
    max_period: int,
    min_period: int = 1,
    min_repetitions: int = 2,
) -> tuple[list[Cycle], CyclicMiningStats]:
    """All perfect cycles in one scan, using cycle elimination.

    A candidate cycle ``(period, offset, feature)`` survives iff the
    feature occurs at *every* slot congruent to ``offset`` modulo
    ``period`` (restricted to whole periods).  As soon as a slot misses the
    feature, every cycle through that slot dies — the Özden et al.
    "cycle-elimination" strategy.

    Only features present at slot positions ``< period`` can seed
    candidates, so candidate sets start small and shrink monotonically.
    """
    if min_period < 1:
        raise MiningError(f"min_period must be >= 1, got {min_period}")
    if max_period < min_period:
        raise MiningError(
            f"period range [{min_period}, {max_period}] is empty"
        )
    if min_repetitions < 2:
        raise MiningError(
            f"min_repetitions must be >= 2 for a cycle, got {min_repetitions}"
        )
    length = len(series)
    periods = [
        period
        for period in range(min_period, max_period + 1)
        if length // period >= min_repetitions
    ]
    if not periods:
        raise MiningError(
            f"no period in [{min_period}, {max_period}] repeats "
            f">= {min_repetitions} times in length {length}"
        )

    stats = CyclicMiningStats()
    # alive[(period, offset)] = set of features still perfectly periodic.
    alive: dict[tuple[int, int], set[str]] = {}
    limits = {period: (length // period) * period for period in periods}

    for index, slot in enumerate(series.iter_slots()):
        stats.slots_scanned += 1
        for period in periods:
            if index >= limits[period]:
                continue
            offset = index % period
            key = (period, offset)
            if index < period:
                # Seeding pass: the first segment proposes the candidates.
                candidates = set(slot)
                alive[key] = candidates
                stats.candidates += len(candidates)
            else:
                survivors = alive.get(key)
                if not survivors:
                    continue
                dead = survivors - slot
                if dead:
                    stats.eliminated += len(dead)
                    survivors -= dead

    cycles = [
        Cycle(period=period, offset=offset, feature=feature)
        for (period, offset), features in sorted(alive.items())
        for feature in sorted(features)
    ]
    return cycles, stats


def perfect_patterns(cycles: list[Cycle]) -> dict[int, Pattern]:
    """Assemble, per period, the maximal perfect pattern from its cycles.

    Since every cycle holds in every segment, their union per period is
    itself perfectly periodic, so one maximal pattern per period suffices.
    Periods with no surviving cycle are omitted.
    """
    by_period: dict[int, list[tuple[int, str]]] = defaultdict(list)
    for cycle in cycles:
        by_period[cycle.period].append((cycle.offset, cycle.feature))
    return {
        period: Pattern.from_letters(period, letters)
        for period, letters in sorted(by_period.items())
    }
