"""Command-line front end: ``python -m repro.devtools`` / ``ppm lint``.

Exit codes: 0 — clean (warnings allowed unless ``--strict``); 1 — at least
one error-severity finding (or any finding under ``--strict``); 2 — usage
error (unknown rule id, unreadable path).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.analyzer import analyze_paths
from repro.devtools.findings import Finding, Severity, findings_to_json
from repro.devtools.registry import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description=(
            "Domain-aware static analysis for the partial periodic "
            "pattern mining engine (rule catalog: docs/devtools.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _print_catalog() -> None:
    for rule in all_rules():
        print(f"{rule.id} {rule.name} [{rule.severity}]")
        print(f"    {rule.rationale}")


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part for part in raw.split(",") if part.strip()]


def run(
    paths: Sequence[str],
    select: str | None = None,
    ignore: str | None = None,
    strict: bool = False,
    output_format: str = "text",
) -> int:
    """Lint paths and print findings; returns the process exit code."""
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings = analyze_paths(
            paths, select=_split_ids(select), ignore=_split_ids(ignore)
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.format())
        _print_summary(findings)
    errors = sum(1 for finding in findings if finding.severity >= Severity.ERROR)
    if errors or (strict and findings):
        return 1
    return 0


def _print_summary(findings: list[Finding]) -> None:
    errors = sum(1 for finding in findings if finding.severity >= Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        print(f"{errors} error(s), {warnings} warning(s)")
    else:
        print("all clean")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools``."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalog()
        return 0
    return run(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        strict=args.strict,
        output_format=args.format,
    )
