"""Command-line front end: ``python -m repro.devtools`` / ``ppm lint``.

Exit codes: 0 — clean (warnings allowed unless ``--strict``); 1 — at least
one error-severity finding (or any finding under ``--strict``); 2 — usage
error (unknown rule id, unreadable path, invalid baseline).

``--project`` switches from per-module to whole-program analysis
(call graph + effect inference + REP111/REP311/REP811).  ``--baseline
FILE`` turns on the ratchet: findings recorded in the committed baseline
are reported as accepted and do not affect the exit code, so CI fails
only on findings *new* relative to the baseline.  ``--write-baseline
FILE`` records the current findings as the new baseline and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.analyzer import analyze_paths
from repro.devtools.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description=(
            "Domain-aware static analysis for the partial periodic "
            "pattern mining engine (rule catalog: docs/devtools.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "whole-program analysis: build the call graph, infer "
            "transitive effects, and run the interprocedural rules "
            "(REP111, REP311, REP811)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "findings ratchet: fail only on findings not recorded in "
            "this committed baseline file"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _print_catalog() -> None:
    for rule in all_rules():
        print(f"{rule.id} {rule.name} [{rule.severity}]")
        print(f"    {rule.rationale}")


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part for part in raw.split(",") if part.strip()]


def _findings_json(findings: list[Finding], baselined: set[int]) -> str:
    """The stable machine-readable report consumed by CI and the ratchet.

    Every row carries the finding fields plus ``baselined`` — whether
    the committed baseline accepts it (always ``false`` without
    ``--baseline``).
    """
    rows = []
    for index, finding in enumerate(findings):
        row = finding.to_dict()
        row["baselined"] = index in baselined
        rows.append(row)
    return json.dumps(rows, indent=2)


def run(
    paths: Sequence[str],
    select: str | None = None,
    ignore: str | None = None,
    strict: bool = False,
    output_format: str = "text",
    project: bool = False,
    baseline: str | None = None,
    write_baseline_to: str | None = None,
) -> int:
    """Lint paths and print findings; returns the process exit code."""
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        if project:
            from repro.devtools.project import analyze_project

            findings = analyze_project(
                paths, select=_split_ids(select), ignore=_split_ids(ignore)
            )
        else:
            findings = analyze_paths(
                paths, select=_split_ids(select), ignore=_split_ids(ignore)
            )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if write_baseline_to is not None:
        write_baseline(write_baseline_to, findings)
        print(
            f"recorded {len(findings)} finding(s) in {write_baseline_to}; "
            "edit the file to add a reason per entry"
        )
        return 0
    accepted = Baseline()
    if baseline is not None:
        try:
            accepted = load_baseline(baseline)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    new, known = accepted.partition(findings)
    baselined_indexes = {
        index for index, finding in enumerate(findings) if finding in accepted
    }
    if output_format == "json":
        print(_findings_json(findings, baselined_indexes))
    else:
        for finding in new:
            print(finding.format())
        _print_summary(new, len(known))
    errors = sum(1 for finding in new if finding.severity >= Severity.ERROR)
    if errors or (strict and new):
        return 1
    return 0


def _print_summary(new: list[Finding], baselined: int) -> None:
    errors = sum(1 for finding in new if finding.severity >= Severity.ERROR)
    warnings = len(new) - errors
    suffix = f" ({baselined} baselined)" if baselined else ""
    if new:
        print(f"{errors} error(s), {warnings} warning(s){suffix}")
    else:
        print(f"all clean{suffix}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools``."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalog()
        return 0
    return run(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        strict=args.strict,
        output_format=args.format,
        project=args.project,
        baseline=args.baseline,
        write_baseline_to=args.write_baseline,
    )
