"""Whole-program analysis: one parse pass, a call graph, effect inference.

Per-module linting (:func:`~repro.devtools.analyzer.analyze_paths`) sees
one file at a time, so any invariant that lives on a *call chain* — "no
coroutine under ``repro.serve`` ever reaches blocking I/O", "no submitted
shard task ever forks" — is invisible to it the moment the offending call
moves one helper away.  Project mode closes that gap:

1. every file is parsed **once** into a :class:`ModuleContext`, and the
   ordinary per-module rules run over it exactly as in file mode;
2. the contexts are indexed into a conservative
   :class:`~repro.devtools.callgraph.CallGraph`;
3. :class:`~repro.devtools.effects.EffectInference` labels every function
   with its transitive effect set (honouring trusted
   ``# repro: effect[...] -- reason`` boundary annotations);
4. the whole-program rules (:class:`~repro.devtools.registry.ProjectRule`
   subclasses — REP111, REP311, REP811) run over the resulting
   :class:`ProjectContext`;
5. the analyzer's project-only meta findings are added: ``REP003`` for a
   suppression comment that hid nothing in the whole run, ``REP004`` for
   a malformed effect annotation.

Suppressions apply to project findings exactly as to module findings —
the physical line the finding anchors to may carry
``# repro: ignore[RULE] -- reason``.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from dataclasses import dataclass

from repro.devtools.analyzer import (
    SourceAnalysis,
    analyze_source_detailed,
    iter_python_files,
    select_rules,
    selected_meta_ids,
)
from repro.devtools.callgraph import CallGraph
from repro.devtools.context import ModuleContext, module_name_of
from repro.devtools.effects import (
    EFFECT_NAMES,
    EffectAnnotation,
    EffectInference,
    parse_effect_annotations,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, Rule


@dataclass(slots=True)
class ProjectContext:
    """Everything a whole-program rule may inspect.

    ``graph`` carries every function with its resolved call edges;
    ``inference`` answers effect queries (:meth:`effects_of`,
    :meth:`origin_of`, :meth:`chain`); ``files`` maps each analyzed path
    to its per-module :class:`SourceAnalysis` (suppressions included).
    """

    graph: CallGraph
    inference: EffectInference
    files: dict[str, SourceAnalysis]

    def context_for(self, module: str) -> ModuleContext | None:
        """The parsed context of one dotted module, if it was analyzed."""
        info = self.graph.modules.get(module)
        return info.ctx if info is not None else None


def build_project(
    paths: Iterable[str | Path],
    rules: list[Rule] | None = None,
    meta_ids: frozenset[str] | None = None,
) -> tuple[ProjectContext, list[Finding]]:
    """Parse every file once; run module rules; build graph + inference.

    Returns the project context and the per-module findings (catalog
    rules plus REP000/REP001/REP002/REP004).  Used directly by tests
    that want the graph without running the project rules.
    """
    if rules is None:
        rules = select_rules()
    if meta_ids is None:
        meta_ids = selected_meta_ids()
    module_rules = [
        rule for rule in rules if not isinstance(rule, ProjectRule)
    ]
    findings: list[Finding] = []
    files: dict[str, SourceAnalysis] = {}
    annotations: dict[str, dict[int, EffectAnnotation]] = {}
    contexts: list[ModuleContext] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        analysis = analyze_source_detailed(
            source,
            path=str(path),
            module=module_name_of(path),
            rules=module_rules,
            meta_ids=meta_ids,
        )
        files[str(path)] = analysis
        findings.extend(analysis.findings)
        if analysis.ctx is None:
            continue
        contexts.append(analysis.ctx)
        notes = parse_effect_annotations(source)
        if not notes:
            continue
        annotations[analysis.ctx.module] = notes
        if "REP004" in meta_ids:
            findings.extend(
                _malformed_annotation(str(path), note)
                for note in notes.values()
                if not note.trusted
            )
    graph = CallGraph.build(contexts)
    inference = EffectInference(graph, annotations)
    return ProjectContext(graph=graph, inference=inference, files=files), findings


def analyze_project(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Whole-program lint: module rules + project rules + meta findings."""
    rules = select_rules(select=select, ignore=ignore)
    meta_ids = selected_meta_ids(select=select, ignore=ignore)
    project, findings = build_project(paths, rules=rules, meta_ids=meta_ids)
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            analysis = project.files.get(finding.path)
            if analysis is not None and analysis.suppressed(finding):
                continue
            findings.append(finding)
    if "REP003" in meta_ids:
        active_catalog = {rule.id for rule in rules}
        findings.extend(_unused_suppressions(project.files, active_catalog))
    return sorted(findings)


def _malformed_annotation(path: str, note: EffectAnnotation) -> Finding:
    problems: list[str] = []
    if note.unknown:
        known = ", ".join(sorted(EFFECT_NAMES.values()))
        problems.append(
            f"unknown effect name(s) {', '.join(note.unknown)} "
            f"(known: {known}, or 'pure')"
        )
    if not note.reason:
        problems.append(
            "missing reason; write "
            "'# repro: effect[...] -- why this boundary is verified'"
        )
    return Finding(
        path=path,
        line=note.line,
        col=0,
        rule_id="REP004",
        message=(
            "malformed effect annotation is not trusted: "
            + "; ".join(problems)
        ),
        severity=Severity.ERROR,
    )


def _unused_suppressions(
    files: dict[str, SourceAnalysis], active_catalog: set[str]
) -> list[Finding]:
    """REP003 for suppressions that hid nothing across the whole run.

    Conservative: a suppression is reported only when every rule it
    names is a catalog rule that actually ran — under ``--select`` a
    dormant suppression may simply be waiting for its rule.
    """
    findings: list[Finding] = []
    for analysis in files.values():
        if analysis.ctx is None:
            continue  # rules never ran; nothing can be called unused
        for suppression in analysis.suppressions.values():
            if not suppression.has_reason:
                continue  # already REP002
            if suppression.line in analysis.used_suppression_lines:
                continue
            if not suppression.rule_ids:
                continue
            if not all(
                rule_id in active_catalog for rule_id in suppression.rule_ids
            ):
                continue
            ids = ", ".join(suppression.rule_ids)
            findings.append(
                Finding(
                    path=analysis.ctx.path,
                    line=suppression.line,
                    col=0,
                    rule_id="REP003",
                    message=(
                        f"suppression of {ids} hides no finding; the "
                        "violation it excused is gone — delete the comment"
                    ),
                    severity=Severity.WARNING,
                )
            )
    return findings
