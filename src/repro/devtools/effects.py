"""Whole-program effect inference over the call graph.

Every function is labelled with an *effect set* — the observable side
conditions its transitive execution may exhibit:

``blocking-io``
    synchronous file/subprocess I/O (``open``, pathlib read/write
    helpers, ``os`` file manipulation, ``subprocess``);
``sleeps``
    ``time.sleep`` in any spelling;
``forks``
    process creation (``os.fork``, ``multiprocessing.Process``/``Pool``,
    ``ProcessPoolExecutor``, ``subprocess``);
``mutates-global``
    ``global`` statements or in-place writes to module-level mutables;
``nondeterministic``
    global-state randomness, wall-clock reads, uuid/urandom draws;
``unpicklable-closure``
    the function is a nested definition (never picklable by reference;
    free-variable captures are recorded for the diagnostics);
``acquires-lock``
    ``.acquire()`` calls or ``with <lock>:`` blocks.

Direct effects are read off each function's own body; the fixpoint then
propagates every effect except ``unpicklable-closure`` (a property of
the function *object*, not of its dynamic extent) through resolved call
edges.  A trusted ``# repro: effect[...]`` annotation on a ``def`` line
declares the function's effect set outright: inference neither scans its
body nor follows its calls, making annotations the sanctioned boundary
for "this helper is verified safe" (``# repro: effect[] -- why``) and
"this helper deliberately blocks" alike.  Annotations must carry a
``-- reason`` and name known effects; malformed ones are reported as
``REP004`` and ignored.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass

from repro.devtools.callgraph import CallGraph, FunctionNode
from repro.devtools.context import (
    MUTATING_CALLS,
    local_bound_names,
    module_level_mutables,
)

#: Dotted calls that block the thread outright.  Canonical table shared
#: with the syntactic REP801 rule (:mod:`repro.devtools.rules.serve`).
BLOCKING_DOTTED_PREFIXES = ("subprocess.",)
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Method names that are synchronous file I/O wherever they appear
#: (pathlib.Path helpers and raw handle reads/writes).
BLOCKING_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)

#: stdlib ``random`` attributes that construct explicitly-seeded state
#: (canonical table shared with the syntactic REP301 rule).
STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct explicitly-seeded state.
NUMPY_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    }
)


class Effect(enum.Flag):
    """One bit per effect; sets compose with ``|`` and test with ``&``."""

    NONE = 0
    BLOCKING_IO = enum.auto()
    SLEEPS = enum.auto()
    FORKS = enum.auto()
    MUTATES_GLOBAL = enum.auto()
    NONDETERMINISTIC = enum.auto()
    UNPICKLABLE_CLOSURE = enum.auto()
    ACQUIRES_LOCK = enum.auto()


#: Stable spelling used in annotations, findings, and docs.
EFFECT_NAMES: dict[Effect, str] = {
    Effect.BLOCKING_IO: "blocking-io",
    Effect.SLEEPS: "sleeps",
    Effect.FORKS: "forks",
    Effect.MUTATES_GLOBAL: "mutates-global",
    Effect.NONDETERMINISTIC: "nondeterministic",
    Effect.UNPICKLABLE_CLOSURE: "unpicklable-closure",
    Effect.ACQUIRES_LOCK: "acquires-lock",
}

#: Annotation spelling -> effect bit (plus purity markers).
NAMED_EFFECTS: dict[str, Effect] = {
    name: bit for bit, name in EFFECT_NAMES.items()
}

#: Individual bits, iteration-stable on every supported Python.
EFFECT_BITS: tuple[Effect, ...] = tuple(EFFECT_NAMES)

#: Effects that travel through call edges in the fixpoint.
PROPAGATED = (
    Effect.BLOCKING_IO
    | Effect.SLEEPS
    | Effect.FORKS
    | Effect.MUTATES_GLOBAL
    | Effect.NONDETERMINISTIC
    | Effect.ACQUIRES_LOCK
)

#: Known external callables -> the effects invoking them exhibits.
_EXTERNAL_EFFECTS: dict[str, Effect] = {
    "open": Effect.BLOCKING_IO,
    "time.sleep": Effect.SLEEPS,
    "os.fork": Effect.FORKS,
    "os.forkpty": Effect.FORKS,
    "multiprocessing.Process": Effect.FORKS,
    "multiprocessing.Pool": Effect.FORKS,
    "multiprocessing.pool.Pool": Effect.FORKS,
    "concurrent.futures.ProcessPoolExecutor": Effect.FORKS,
    "time.time": Effect.NONDETERMINISTIC,
    "time.time_ns": Effect.NONDETERMINISTIC,
    "datetime.datetime.now": Effect.NONDETERMINISTIC,
    "datetime.datetime.utcnow": Effect.NONDETERMINISTIC,
    "datetime.datetime.today": Effect.NONDETERMINISTIC,
    "datetime.date.today": Effect.NONDETERMINISTIC,
    "datetime.now": Effect.NONDETERMINISTIC,
    "datetime.utcnow": Effect.NONDETERMINISTIC,
    "date.today": Effect.NONDETERMINISTIC,
    "uuid.uuid1": Effect.NONDETERMINISTIC,
    "uuid.uuid4": Effect.NONDETERMINISTIC,
    "os.urandom": Effect.NONDETERMINISTIC,
}

#: Dotted prefixes classified wholesale.
_EXTERNAL_PREFIX_EFFECTS: tuple[tuple[str, Effect], ...] = (
    ("subprocess.", Effect.BLOCKING_IO | Effect.FORKS),
    ("os.spawn", Effect.FORKS),
    ("secrets.", Effect.NONDETERMINISTIC),
)

#: Method names that block wherever they appear (extends the serve set
#: with the file-removal helpers pathlib spells as methods).
_BLOCKING_METHOD_NAMES = BLOCKING_METHODS | frozenset(
    {"unlink", "rmdir", "mkdir", "touch", "rename", "replace"}
)

#: ``with <name>:`` receivers that look like locks.
_LOCKISH_RE = re.compile(r"lock|mutex|semaphore", re.IGNORECASE)

#: Matches one effect annotation comment.
_ANNOTATION_RE = re.compile(
    r"#\s*repro:\s*effect\[(?P<effects>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)

#: Spellings of "no effects" accepted inside ``effect[...]``.
_PURE_MARKERS = frozenset({"pure", "none"})


@dataclass(frozen=True, slots=True)
class EffectAnnotation:
    """One parsed ``# repro: effect[...]`` boundary declaration."""

    line: int
    effects: Effect
    reason: str | None
    #: Effect names that did not parse (reported as REP004).
    unknown: tuple[str, ...] = ()

    @property
    def trusted(self) -> bool:
        """Annotations bind only when well-formed: known names + reason."""
        return bool(self.reason) and not self.unknown


def parse_effect_annotations(source: str) -> dict[int, EffectAnnotation]:
    """Extract ``# repro: effect[...]`` comments, keyed by line number.

    Tokenized like suppressions so the syntax stays inert inside
    docstrings and string literals.

    >>> notes = parse_effect_annotations(
    ...     "def f():  # repro: effect[blocking-io] -- writes the journal\\n"
    ...     "    pass\\n"
    ... )
    >>> notes[1].trusted, notes[1].effects is Effect.BLOCKING_IO
    (True, True)
    """
    annotations: dict[int, EffectAnnotation] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = list(enumerate(source.splitlines(), start=1))
    for lineno, text in comments:
        match = _ANNOTATION_RE.search(text)
        if match is None:
            continue
        effects = Effect.NONE
        unknown: list[str] = []
        for part in match.group("effects").split(","):
            name = part.strip().lower()
            if not name or name in _PURE_MARKERS:
                continue
            bit = NAMED_EFFECTS.get(name)
            if bit is None:
                unknown.append(name)
            else:
                effects |= bit
        annotations[lineno] = EffectAnnotation(
            line=lineno,
            effects=effects,
            reason=match.group("reason"),
            unknown=tuple(unknown),
        )
    return annotations


@dataclass(frozen=True, slots=True)
class Origin:
    """Why a function carries one effect bit — the chain witness.

    ``callee`` names the call edge the effect arrived through; a direct
    origin instead carries the human description of the source
    expression (``time.sleep()``, ``'global' statement``).
    """

    line: int
    callee: str | None = None
    source: str | None = None
    #: Direct randomness already reported syntactically by REP301.
    rep301_covered: bool = False
    #: The effect was declared by a trusted annotation.
    annotated: bool = False


class EffectInference:
    """Direct effect extraction + transitive fixpoint over a call graph."""

    def __init__(
        self,
        graph: CallGraph,
        annotations: dict[str, dict[int, EffectAnnotation]] | None = None,
    ):
        self.graph = graph
        #: module -> line -> annotation (from :func:`parse_effect_annotations`).
        self.annotations = annotations if annotations is not None else {}
        self.direct: dict[str, Effect] = {}
        self.effects: dict[str, Effect] = {}
        self.trusted: dict[str, EffectAnnotation] = {}
        self.origins: dict[str, dict[Effect, Origin]] = {}
        self._infer()

    # ------------------------------------------------------------------
    # Direct effects
    # ------------------------------------------------------------------

    def _annotation_for(self, fn: FunctionNode) -> EffectAnnotation | None:
        per_line = self.annotations.get(fn.module)
        if not per_line:
            return None
        note = per_line.get(fn.node.lineno)
        if note is not None and note.trusted:
            return note
        return None

    def _infer(self) -> None:
        module_mutables = {
            module: module_level_mutables(info.ctx.tree)
            for module, info in self.graph.modules.items()
        }
        for key, fn in self.graph.functions.items():
            origins: dict[Effect, Origin] = {}
            note = self._annotation_for(fn)
            if note is not None:
                self.trusted[key] = note
                self.direct[key] = note.effects
                self.effects[key] = note.effects
                for bit in EFFECT_BITS:
                    if bit & note.effects:
                        origins[bit] = Origin(
                            line=fn.node.lineno,
                            source="declared by # repro: effect[...]",
                            annotated=True,
                        )
                self.origins[key] = origins
                continue
            direct = self._direct_effects(
                fn, module_mutables.get(fn.module, set()), origins
            )
            self.direct[key] = direct
            self.effects[key] = direct
            self.origins[key] = origins
        self._fixpoint()

    def _direct_effects(
        self,
        fn: FunctionNode,
        mutables: set[str],
        origins: dict[Effect, Origin],
    ) -> Effect:
        effects = Effect.NONE

        def found(bit: Effect, line: int, source: str,
                  rep301: bool = False) -> None:
            nonlocal effects
            if not bit & effects:
                origins[bit] = Origin(line=line, source=source,
                                      rep301_covered=rep301)
            effects |= bit

        if fn.is_nested:
            capture = (
                f" capturing {', '.join(sorted(fn.free_names))}"
                if fn.free_names
                else ""
            )
            found(
                Effect.UNPICKLABLE_CLOSURE,
                fn.node.lineno,
                f"nested function {fn.name}(){capture}",
            )
        for call in fn.external_calls:
            bits, source, rep301 = self._classify_external(call.dotted,
                                                           call.attr)
            if bits:
                for bit in EFFECT_BITS:
                    if bit & bits:
                        found(bit, call.line, source, rep301)
        for with_dotted, line in fn.with_names:
            if _LOCKISH_RE.search(with_dotted):
                found(Effect.ACQUIRES_LOCK, line, f"with {with_dotted}:")
        local_names = local_bound_names(fn.node)
        for node in CallGraph._own_body_walk(fn.node):
            if isinstance(node, ast.Global):
                found(
                    Effect.MUTATES_GLOBAL,
                    node.lineno,
                    f"'global {', '.join(node.names)}' statement",
                )
            else:
                mutated = self._mutated_module_state(node, mutables,
                                                     local_names)
                if mutated is not None:
                    found(
                        Effect.MUTATES_GLOBAL,
                        node.lineno,
                        f"write to module-level {mutated!r}",
                    )
        return effects

    @staticmethod
    def _classify_external(
        dotted: str, attr: str | None
    ) -> tuple[Effect, str, bool]:
        """The effects of one unresolved call, with its description."""
        if dotted:
            known = _EXTERNAL_EFFECTS.get(dotted)
            if known is not None:
                return known, f"{dotted}()", False
            for prefix, bits in _EXTERNAL_PREFIX_EFFECTS:
                if dotted.startswith(prefix):
                    return bits, f"{dotted}()", False
            if dotted in BLOCKING_DOTTED or dotted.startswith(
                BLOCKING_DOTTED_PREFIXES
            ):
                return Effect.BLOCKING_IO, f"{dotted}()", False
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] not in STDLIB_ALLOWED
            ):
                return (
                    Effect.NONDETERMINISTIC,
                    f"unseeded {dotted}()",
                    True,
                )
            if (
                parts[0] == "numpy"
                and len(parts) >= 3
                and parts[1] == "random"
                and parts[-1] not in NUMPY_ALLOWED
            ) or (
                parts[0] == "numpy.random"
                and parts[-1] not in NUMPY_ALLOWED
            ):
                return (
                    Effect.NONDETERMINISTIC,
                    f"unseeded {dotted}()",
                    True,
                )
        if attr is not None:
            if attr in _BLOCKING_METHOD_NAMES:
                return Effect.BLOCKING_IO, f".{attr}()", False
            if attr == "acquire":
                receiver = dotted.rsplit(".", 1)[0] if dotted else ""
                label = f"{receiver}.acquire()" if receiver else ".acquire()"
                return Effect.ACQUIRES_LOCK, label, False
        return Effect.NONE, "", False

    @staticmethod
    def _mutated_module_state(
        node: ast.AST, mutables: set[str], local_names: set[str]
    ) -> str | None:
        """The module-level mutable a statement writes, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutables
                    and target.value.id not in local_names
                ):
                    return target.value.id
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                node.func.attr in MUTATING_CALLS
                and isinstance(base, ast.Name)
                and base.id in mutables
                and base.id not in local_names
            ):
                return base.id
        return None

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def _fixpoint(self) -> None:
        """Propagate effects caller-ward until nothing changes.

        A plain iterate-to-fixpoint over every edge: the effect lattice
        is a finite powerset, joins are monotone, so the loop terminates
        in at most ``|effects|`` sweeps; at this project's size that is
        milliseconds.
        """
        changed = True
        while changed:
            changed = False
            for key, fn in self.graph.functions.items():
                if key in self.trusted:
                    continue
                current = self.effects[key]
                for call in fn.calls:
                    callee_effects = self.effects.get(call.callee)
                    if callee_effects is None:
                        continue
                    added = (callee_effects & PROPAGATED) & ~current
                    if added:
                        for bit in EFFECT_BITS:
                            if bit & added:
                                self.origins[key][bit] = Origin(
                                    line=call.line, callee=call.callee
                                )
                        current |= added
                        changed = True
                self.effects[key] = current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def effects_of(self, key: str) -> Effect:
        """The inferred (transitive) effect set of a function key."""
        return self.effects.get(key, Effect.NONE)

    def origin_of(self, key: str, bit: Effect) -> Origin | None:
        """The witness for one effect bit on one function."""
        return self.origins.get(key, {}).get(bit)

    def chain(self, key: str, bit: Effect) -> tuple[list[str], str]:
        """The human call chain from a function down to an effect source.

        Returns ``(qualified function names, source description)``; the
        chain is cycle-guarded, so recursion terminates with the last
        fresh function.
        """
        names: list[str] = []
        seen: set[str] = set()
        current = key
        while True:
            fn = self.graph.functions.get(current)
            names.append(fn.display if fn is not None else current)
            seen.add(current)
            origin = self.origin_of(current, bit)
            if origin is None:
                return names, EFFECT_NAMES.get(bit, "effect")
            if origin.callee is None:
                return names, origin.source or EFFECT_NAMES.get(bit, "effect")
            if origin.callee in seen:
                return names, "recursive call cycle"
            current = origin.callee


def effect_names(effects: Effect) -> list[str]:
    """Stable spellings of every bit set in an effect value."""
    return [EFFECT_NAMES[bit] for bit in EFFECT_BITS if bit & effects]
