"""``python -m repro.devtools`` entry point."""

import sys

from repro.devtools.cli import main

sys.exit(main())
