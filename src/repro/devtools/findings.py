"""Finding and severity types shared by every rule.

A *finding* is one violation of one rule at one source location.  Findings
are plain, ordered, hashable values so test fixtures can assert on them
exactly and reports stay deterministic regardless of rule execution order.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any


class Severity(enum.IntEnum):
    """How much a finding matters to the exit code.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are reported
    but only fail under ``--strict``.
    """

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one ``file:line`` location.

    The field order defines the sort order of reports: by file, then line,
    then column, then rule id — i.e. source order within a file.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """The canonical one-line rendering: ``file:line:col: ID message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }


def findings_to_json(findings: list[Finding]) -> str:
    """Serialize findings for machine consumption."""
    return json.dumps([finding.to_dict() for finding in findings], indent=2)
