"""Run the rule catalog over files and fold in suppression handling.

This is the importable API used by the CLI, by ``ppm lint``, and directly
by the test suite:

* :func:`analyze_source` — lint one source string (fixture tests);
* :func:`analyze_file` / :func:`analyze_paths` — lint files and trees;
* :data:`META_RULE_IDS` — findings the analyzer itself produces.

Suppression semantics: a finding is dropped only when the physical line it
is anchored to carries ``# repro: ignore[<RULE>] -- <reason>`` naming the
finding's rule.  A suppression without a reason suppresses **nothing** and
is reported as ``REP002``; naming an unknown rule id is reported as
``REP001``.  Files that fail to parse yield a single ``REP000`` finding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.context import ModuleContext, module_name_of
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, all_rules, known_rule_ids
from repro.devtools.suppressions import Suppression, parse_suppressions

#: Findings produced by the analyzer itself rather than a catalog rule:
#: REP000 syntax error, REP001 unknown suppressed id, REP002 suppression
#: without a reason, REP003 unused suppression (project mode only),
#: REP004 malformed effect annotation (project mode only).
META_RULE_IDS = frozenset({"REP000", "REP001", "REP002", "REP003", "REP004"})

#: Directories never descended into when expanding path arguments.
_SKIPPED_DIRS = frozenset(
    {".git", ".mypy_cache", ".pytest_cache", ".ruff_cache", "__pycache__",
     ".venv", "venv", ".tox", "build", "dist"}
)


def _normalized_ids(raw: Iterable[str]) -> set[str]:
    return {rule_id.strip().upper() for rule_id in raw if rule_id.strip()}


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The catalog filtered by ``--select``/``--ignore`` id lists.

    Meta rule ids (:data:`META_RULE_IDS`) are accepted in both lists —
    they select no catalog rule here, but :func:`selected_meta_ids`
    applies the same lists to the analyzer's own findings, so ``--ignore
    REP002`` genuinely silences the missing-reason meta finding.  Ids
    that exist in neither the catalog nor the meta set raise
    ``ValueError`` — a silently-ignored typo would disable nothing while
    appearing to.
    """
    catalog = all_rules()
    known = {rule.id for rule in catalog} | META_RULE_IDS
    chosen = catalog
    if select is not None:
        wanted = _normalized_ids(select)
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule ids in --select: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = _normalized_ids(ignore)
        unknown = dropped - known
        if unknown:
            raise ValueError(f"unknown rule ids in --ignore: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def selected_meta_ids(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> frozenset[str]:
    """The meta findings active under the same ``--select``/``--ignore``."""
    active = set(META_RULE_IDS)
    if select is not None:
        active &= _normalized_ids(select)
    if ignore is not None:
        active -= _normalized_ids(ignore)
    return frozenset(active)


@dataclass(slots=True)
class SourceAnalysis:
    """One module's lint result plus the state project mode builds on.

    ``used_suppression_lines`` records which suppression comments
    actually hid a finding — project mode extends it while filtering
    whole-program findings, then reports the remainder as REP003.
    """

    findings: list[Finding]
    suppressions: dict[int, Suppression]
    used_suppression_lines: set[int] = field(default_factory=set)
    #: ``None`` when the file did not parse (a REP000 finding is present).
    ctx: ModuleContext | None = None

    def suppressed(self, finding: Finding) -> bool:
        """Whether a finding is hidden by a line suppression (and mark it
        used if so)."""
        suppression = self.suppressions.get(finding.line)
        if (
            suppression is not None
            and suppression.has_reason
            and suppression.covers(finding.rule_id)
        ):
            self.used_suppression_lines.add(suppression.line)
            return True
        return False


def analyze_source_detailed(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
    meta_ids: frozenset[str] = META_RULE_IDS,
) -> SourceAnalysis:
    """Lint one source string; the workhorse behind every entry point.

    ``module`` places the snippet at a dotted location so scoped rules
    fire (e.g. ``module="repro.engine.worker"``); fixture tests rely on
    this.  ``meta_ids`` filters the analyzer's own findings so
    ``--select``/``--ignore`` apply to them like any catalog rule.
    """
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    known = known_rule_ids()
    for suppression in suppressions.values():
        if not suppression.has_reason and "REP002" in meta_ids:
            findings.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    rule_id="REP002",
                    message=(
                        "suppression without a reason; write "
                        "'# repro: ignore[RULE] -- why this is intentional'"
                    ),
                    severity=Severity.ERROR,
                )
            )
        for rule_id in suppression.rule_ids:
            if rule_id not in known and "REP001" in meta_ids:
                findings.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        rule_id="REP001",
                        message=f"suppression names unknown rule id {rule_id!r}",
                        severity=Severity.ERROR,
                    )
                )
    analysis = SourceAnalysis(findings=findings, suppressions=suppressions)
    try:
        ctx = ModuleContext.from_source(source, path=path, module=module)
    except SyntaxError as error:
        if "REP000" in meta_ids:
            findings.append(
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule_id="REP000",
                    message=f"file does not parse: {error.msg}",
                    severity=Severity.ERROR,
                )
            )
        findings.sort()
        return analysis
    analysis.ctx = ctx
    for rule in all_rules() if rules is None else rules:
        for finding in rule.check(ctx):
            if not analysis.suppressed(finding):
                findings.append(finding)
    findings.sort()
    return analysis


def analyze_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
    meta_ids: frozenset[str] = META_RULE_IDS,
) -> list[Finding]:
    """Lint one source string and return its sorted findings."""
    return analyze_source_detailed(
        source, path=path, module=module, rules=rules, meta_ids=meta_ids
    ).findings


def analyze_file(
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    meta_ids: frozenset[str] = META_RULE_IDS,
) -> list[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    return analyze_source(
        target.read_text(encoding="utf-8"),
        path=str(target),
        module=module_name_of(target),
        rules=rules,
        meta_ids=meta_ids,
    )


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a deduplicated ``.py`` file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIPPED_DIRS & set(candidate.parts))
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directory trees with an optional rule filter."""
    rules = select_rules(select=select, ignore=ignore)
    meta_ids = selected_meta_ids(select=select, ignore=ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules=rules, meta_ids=meta_ids))
    return sorted(findings)
