"""Run the rule catalog over files and fold in suppression handling.

This is the importable API used by the CLI, by ``ppm lint``, and directly
by the test suite:

* :func:`analyze_source` — lint one source string (fixture tests);
* :func:`analyze_file` / :func:`analyze_paths` — lint files and trees;
* :data:`META_RULE_IDS` — findings the analyzer itself produces.

Suppression semantics: a finding is dropped only when the physical line it
is anchored to carries ``# repro: ignore[<RULE>] -- <reason>`` naming the
finding's rule.  A suppression without a reason suppresses **nothing** and
is reported as ``REP002``; naming an unknown rule id is reported as
``REP001``.  Files that fail to parse yield a single ``REP000`` finding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.context import ModuleContext, module_name_of
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, all_rules, known_rule_ids
from repro.devtools.suppressions import parse_suppressions

#: Findings produced by the analyzer itself rather than a catalog rule.
META_RULE_IDS = frozenset({"REP000", "REP001", "REP002"})

#: Directories never descended into when expanding path arguments.
_SKIPPED_DIRS = frozenset(
    {".git", ".mypy_cache", ".pytest_cache", ".ruff_cache", "__pycache__",
     "build", "dist"}
)


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The catalog filtered by ``--select``/``--ignore`` id lists.

    Raises ``ValueError`` for ids that exist in neither the catalog nor
    the analyzer's meta set — a silently-ignored typo would disable
    nothing while appearing to.
    """
    catalog = all_rules()
    known = {rule.id for rule in catalog}
    chosen = catalog
    if select is not None:
        wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule ids in --select: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = {rule_id.strip().upper() for rule_id in ignore if rule_id.strip()}
        unknown = dropped - known
        if unknown:
            raise ValueError(f"unknown rule ids in --ignore: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def analyze_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; the workhorse behind every entry point.

    ``module`` places the snippet at a dotted location so scoped rules
    fire (e.g. ``module="repro.engine.worker"``); fixture tests rely on
    this.
    """
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    known = known_rule_ids()
    for suppression in suppressions.values():
        if not suppression.has_reason:
            findings.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    rule_id="REP002",
                    message=(
                        "suppression without a reason; write "
                        "'# repro: ignore[RULE] -- why this is intentional'"
                    ),
                    severity=Severity.ERROR,
                )
            )
        for rule_id in suppression.rule_ids:
            if rule_id not in known:
                findings.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        rule_id="REP001",
                        message=f"suppression names unknown rule id {rule_id!r}",
                        severity=Severity.ERROR,
                    )
                )
    try:
        ctx = ModuleContext.from_source(source, path=path, module=module)
    except SyntaxError as error:
        findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule_id="REP000",
                message=f"file does not parse: {error.msg}",
                severity=Severity.ERROR,
            )
        )
        return sorted(findings)
    for rule in all_rules() if rules is None else rules:
        for finding in rule.check(ctx):
            suppression = suppressions.get(finding.line)
            if (
                suppression is not None
                and suppression.has_reason
                and suppression.covers(finding.rule_id)
            ):
                continue
            findings.append(finding)
    return sorted(findings)


def analyze_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    return analyze_source(
        target.read_text(encoding="utf-8"),
        path=str(target),
        module=module_name_of(target),
        rules=rules,
    )


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a deduplicated ``.py`` file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIPPED_DIRS & set(candidate.parts))
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directory trees with an optional rule filter."""
    rules = select_rules(select=select, ignore=ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules=rules))
    return sorted(findings)
