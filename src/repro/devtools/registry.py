"""The rule registry: one place that knows every rule in the catalog.

Rules are small classes deriving from :class:`Rule`; decorating them with
:func:`register` adds an instance to the global registry that the analyzer
and the CLI consult.  Ids are unique and stable — they are what suppression
comments and ``--select``/``--ignore`` refer to, so renaming an id is a
breaking change to every annotated source line.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext


class Rule(ABC):
    """One static-analysis rule.

    Subclasses define the class attributes and implement :meth:`check`,
    yielding a :class:`~repro.devtools.findings.Finding` per violation.
    ``rationale`` states which engine/paper invariant the rule guards; it
    is surfaced by ``--list-rules`` and in ``docs/devtools.md``.
    """

    #: Stable id used in reports and suppression comments (e.g. "REP101").
    id: str = ""
    #: Short kebab-case name (e.g. "lambda-task").
    name: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: Which invariant the rule protects, in one or two sentences.
    rationale: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation found in one module."""

    def finding(
        self, ctx: ModuleContext, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding of this rule at a location in ``ctx``."""
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id!r}, name={self.name!r})"


class ProjectRule(Rule):
    """A rule that needs the whole program, not one module.

    Project rules live in the same registry (stable ids, suppressions,
    ``--select``/``--ignore``, docs) but run only under ``ppm lint
    --project``, where a :class:`~repro.devtools.project.ProjectContext`
    carries the cross-module call graph and inferred effect sets.  In
    per-module mode they are inert: :meth:`check` yields nothing.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Project rules produce no per-module findings."""
        return iter(())

    @abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield every violation found across the whole project."""

    def project_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding of this rule at an explicit location."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id.

    Importing :mod:`repro.devtools.rules` populates the registry; this
    function triggers that import so callers never see an empty catalog.
    """
    import repro.devtools.rules  # noqa: F401  (import populates registry)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def project_rules() -> list[ProjectRule]:
    """Every registered whole-program rule, sorted by id."""
    return [rule for rule in all_rules() if isinstance(rule, ProjectRule)]


def get_rule(rule_id: str) -> Rule | None:
    """Look up one rule by id (after ensuring the catalog is loaded)."""
    all_rules()
    return _REGISTRY.get(rule_id)


def known_rule_ids() -> frozenset[str]:
    """The ids suppression comments are allowed to reference."""
    from repro.devtools.analyzer import META_RULE_IDS

    all_rules()
    return frozenset(_REGISTRY) | META_RULE_IDS
