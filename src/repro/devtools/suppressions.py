"""Inline suppression comments: ``# repro: ignore[RULE] -- reason``.

A finding is suppressed when the physical line it is anchored to carries a
suppression comment naming the finding's rule id.  Every suppression MUST
give a reason after ``--`` — a suppression without one is itself reported
(:data:`MISSING_REASON_ID`), so intentional exceptions stay documented at
the site where they live.

Several rules may share one comment: ``# repro: ignore[REP103,REP404] --
reason``.  Rule ids that do not exist in the registry are reported as
:data:`UNKNOWN_RULE_ID` findings rather than silently tolerated, so typos
cannot disable nothing while looking like they disabled something.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: Matches one suppression comment anywhere in a physical line.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[^\]]*)\](?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str | None

    @property
    def has_reason(self) -> bool:
        """True when the mandatory ``-- reason`` clause is present."""
        return bool(self.reason)

    def covers(self, rule_id: str) -> bool:
        """True when this comment names the given rule id."""
        return rule_id in self.rule_ids


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` for every comment token in the source.

    Tokenizing (rather than regex over raw lines) keeps suppression text
    inside docstrings and string literals inert.  Files the tokenizer
    rejects fall back to a whole-line scan so suppressions still survive
    in files that do not parse — the analyzer reports the syntax error
    itself.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))
    return [
        (token.start[0], token.string)
        for token in tokens
        if token.type == tokenize.COMMENT
    ]


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract every suppression comment, keyed by 1-based line number.

    Only genuine comment tokens count — the suppression syntax appearing
    inside a docstring or string literal (as it does in this package's own
    documentation) is not a suppression.

    >>> sups = parse_suppressions("x = 1  # repro: ignore[REP402] -- demo\\n")
    >>> sups[1].rule_ids, sups[1].reason
    (('REP402',), 'demo')
    """
    suppressions: dict[int, Suppression] = {}
    for lineno, text in _iter_comments(source):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        suppressions[lineno] = Suppression(
            line=lineno, rule_ids=rule_ids, reason=match.group("reason")
        )
    return suppressions
