"""The findings ratchet: a committed baseline of accepted findings.

Turning whole-program analysis on over a living codebase surfaces real
debt that cannot all be fixed in the enabling change.  The ratchet makes
that safe: accepted findings are recorded in a committed JSON baseline,
CI fails only on findings **not** in it, and every fix shrinks the file.
The baseline can only be regenerated deliberately (``--write-baseline``),
so the debt curve is monotone downward by construction — hence "ratchet".

Fingerprints are deliberately *line-insensitive*: ``(rule id, normalized
path, message)``.  Adding an import above a baselined finding must not
resurrect it, and chain messages are built from stable qualified names,
not line numbers.  The trade-off is honest: two identical findings on
different lines of one file share a fingerprint, which for whole-program
chain findings (whose messages embed the function identity) does not
occur in practice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.devtools.findings import Finding, Severity

#: Schema version of the baseline file.
BASELINE_VERSION = 1

#: One fingerprint: ``(rule id, normalized path, message)``.
Fingerprint = tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is missing, unparsable, or schema-invalid."""


def normalize_path(path: str | Path, root: Path | None = None) -> str:
    """A path key stable across checkouts: relative to ``root``, POSIX.

    ``root`` defaults to the current working directory; paths outside it
    keep their own (POSIX-normalized) spelling rather than growing
    machine-specific ``../`` prefixes.
    """
    base = Path.cwd() if root is None else root
    resolved = Path(path).resolve()
    try:
        relative = resolved.relative_to(base.resolve())
    except ValueError:
        return str(PurePosixPath(Path(path).as_posix()))
    return str(PurePosixPath(relative.as_posix()))


def fingerprint(finding: Finding, root: Path | None = None) -> Fingerprint:
    """The line-insensitive identity of one finding."""
    return (
        finding.rule_id,
        normalize_path(finding.path, root=root),
        finding.message,
    )


@dataclass(slots=True)
class Baseline:
    """A set of accepted finding fingerprints, with their recorded rows."""

    fingerprints: set[Fingerprint] = field(default_factory=set)
    entries: list[dict] = field(default_factory=list)

    def __contains__(self, finding: Finding) -> bool:
        return fingerprint(finding) in self.fingerprints

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into ``(new, baselined)`` against this baseline."""
        new: list[Finding] = []
        known: list[Finding] = []
        for finding in findings:
            (known if finding in self else new).append(finding)
        return new, known


def load_baseline(path: str | Path) -> Baseline:
    """Read and validate a committed baseline file.

    Raises :class:`BaselineError` on any structural problem — a corrupt
    baseline silently treated as empty would fail CI on every accepted
    finding at once, which is the confusing way to learn the file broke.
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError as error:
        raise BaselineError(f"baseline file not found: {target}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(
            f"baseline file {target} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline file {target} must be a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline file {target} has version {version!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    rows = payload.get("findings")
    if not isinstance(rows, list):
        raise BaselineError(
            f"baseline file {target} must carry a 'findings' array"
        )
    baseline = Baseline()
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise BaselineError(
                f"baseline entry #{index} in {target} is not an object"
            )
        missing = {"rule", "path", "message"} - set(row)
        if missing:
            raise BaselineError(
                f"baseline entry #{index} in {target} lacks "
                f"{sorted(missing)}"
            )
        baseline.fingerprints.add(
            (str(row["rule"]), str(row["path"]), str(row["message"]))
        )
        baseline.entries.append(row)
    return baseline


def baseline_payload(
    findings: list[Finding], root: Path | None = None
) -> dict:
    """The JSON document recording ``findings`` as accepted."""
    rows = []
    for finding in sorted(findings):
        rows.append(
            {
                "rule": finding.rule_id,
                "path": normalize_path(finding.path, root=root),
                "line": finding.line,
                "severity": str(finding.severity),
                "message": finding.message,
                "reason": "",
            }
        )
    return {"version": BASELINE_VERSION, "findings": rows}


def write_baseline(
    path: str | Path, findings: list[Finding], root: Path | None = None
) -> None:
    """Record every current finding as accepted (the deliberate reset).

    The ``reason`` field is written empty on purpose: the author is
    expected to edit the committed file and justify each entry, the same
    contract inline suppressions enforce with ``-- reason``.
    """
    payload = baseline_payload(findings, root=root)
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def severity_from_name(name: str) -> Severity:
    """Parse the severity spelling used in baseline/JSON rows."""
    return Severity.ERROR if name.lower() == "error" else Severity.WARNING
