"""A conservative whole-program call graph over the project's modules.

The graph is built from one parse pass: every module is visited once,
every ``def``/``async def`` (module-level, method, or nested) becomes a
:class:`FunctionNode`, and call expressions are resolved through the
machinery Python itself would use statically — import aliases, module
attribute access, ``self``/``cls`` method dispatch (including bases and
``self.<attr>`` instance attributes whose class is statically known), and
``functools.partial`` wrappers.

Resolution is *conservative* in the classic static-analysis sense: an
edge is added only when the callee can be named with confidence, and
call expressions that cannot be resolved to a project function are
surfaced as :attr:`FunctionNode.external_calls` with their fully-expanded
dotted name so the effect engine (:mod:`repro.devtools.effects`) can
classify known library sinks (``time.sleep``, ``open``,
``multiprocessing.Process``, ...).

Keys are ``"<module>:<qualname>"`` — e.g.
``"repro.serve.app:MiningApp._mine"`` — stable across runs and usable in
human-readable effect chains.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from repro.devtools.context import (
    ModuleContext,
    dotted_name,
    local_bound_names,
)

#: Names resolvable without any binding (used for closure detection).
_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(slots=True)
class CallSite:
    """One resolved call edge: caller -> callee at a source line."""

    callee: str
    line: int


@dataclass(slots=True)
class ExternalCall:
    """A call that did not resolve to a project function.

    ``dotted`` is the fully-expanded dotted name (import aliases
    resolved), e.g. ``time.sleep`` for ``clock.sleep(...)`` under
    ``import time as clock``; for attribute calls on unresolvable
    receivers it is the best-effort chain (``path.read_text``).
    ``attr`` is the final attribute for method-name classification.
    """

    dotted: str
    attr: str | None
    line: int


@dataclass(slots=True)
class FunctionNode:
    """One function in the project: identity, AST, and outgoing calls."""

    key: str
    module: str
    qualname: str
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_name: str | None = None
    #: True when defined inside another function (never picklable by ref).
    is_nested: bool = False
    #: Free variables: loaded names bound neither locally, at module
    #: level, nor as builtins.  Non-empty on a nested function means a
    #: genuine closure capture.
    free_names: frozenset[str] = frozenset()
    calls: list[CallSite] = field(default_factory=list)
    external_calls: list[ExternalCall] = field(default_factory=list)
    #: Context-manager expressions (``with <dotted>:``) for lock detection.
    with_names: list[tuple[str, int]] = field(default_factory=list)
    #: Nested function definitions visible by bare name from this body.
    local_defs: dict[str, str] = field(default_factory=dict)

    @property
    def display(self) -> str:
        """Short human form used in effect chains."""
        return f"{self.module}:{self.qualname}"


@dataclass(slots=True)
class ClassInfo:
    """Statically-known shape of one class: methods, bases, attr types."""

    fqname: str
    methods: dict[str, str] = field(default_factory=dict)
    #: Fully-expanded dotted base-class names, declaration order.
    bases: list[str] = field(default_factory=list)
    #: ``self.<attr>`` -> fully-qualified project class name, learned from
    #: ``self.attr = SomeClass(...)`` assignments and annotated class-body
    #: fields.
    attr_types: dict[str, str] = field(default_factory=dict)


class ModuleImports:
    """The import-alias table of one module.

    Maps each locally-bound first segment to the dotted target it stands
    for, so any local dotted chain expands to its canonical global name.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def expand(self, dotted: str) -> str:
        """The canonical dotted name of a local dotted chain."""
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


@dataclass(slots=True)
class ModuleInfo:
    """Everything the graph knows about one parsed module."""

    ctx: ModuleContext
    imports: ModuleImports
    #: Module-level function/alias name -> function key.
    functions: dict[str, str] = field(default_factory=dict)
    #: Simple class name -> fully-qualified class name.
    classes: dict[str, str] = field(default_factory=dict)
    #: Names bound at module level (for closure detection).
    bindings: set[str] = field(default_factory=set)


class CallGraph:
    """The project-wide function index and resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionNode] = {}
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, contexts: list[ModuleContext]) -> "CallGraph":
        """Index every module, learn instance-attribute types, then
        resolve every call site — three passes, so ``self.attr.method()``
        resolves regardless of module visit order."""
        graph = cls()
        for ctx in contexts:
            graph._index_module(ctx)
        for ctx in contexts:
            graph._learn_attr_types(graph.modules[ctx.module])
        for ctx in contexts:
            graph._resolve_module(ctx)
        return graph

    def _index_module(self, ctx: ModuleContext) -> None:
        info = ModuleInfo(ctx=ctx, imports=ModuleImports(ctx.tree))
        self.modules[ctx.module] = info
        info.bindings.update(info.imports.aliases)
        self._index_body(ctx, info, ctx.tree.body, prefix="", class_info=None,
                         enclosing=None)
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                # Module-level alias: ``run = _run`` re-exports a function.
                target_key = info.functions.get(node.value.id)
                if target_key is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            info.functions.setdefault(target.id, target_key)
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        info.bindings.add(target.id)

    def _index_body(
        self,
        ctx: ModuleContext,
        info: ModuleInfo,
        body: list[ast.stmt],
        prefix: str,
        class_info: ClassInfo | None,
        enclosing: FunctionNode | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, info, node, prefix, class_info,
                                     enclosing)
            elif isinstance(node, ast.ClassDef):
                self._index_class(ctx, info, node, prefix, enclosing)
            elif isinstance(node, (ast.If, ast.Try)) and enclosing is None:
                # Conditional module-level definitions (TYPE_CHECKING,
                # version fallbacks) still define project functions.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._index_function(ctx, info, sub, prefix,
                                             class_info, enclosing)
                    elif isinstance(sub, ast.ClassDef):
                        self._index_class(ctx, info, sub, prefix, enclosing)

    def _index_function(
        self,
        ctx: ModuleContext,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_info: ClassInfo | None,
        enclosing: FunctionNode | None,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        key = f"{ctx.module}:{qualname}"
        fn = FunctionNode(
            key=key,
            module=ctx.module,
            qualname=qualname,
            name=node.name,
            path=ctx.path,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_info.fqname if class_info is not None else None,
            is_nested=enclosing is not None,
        )
        self.functions[key] = fn
        if class_info is not None:
            class_info.methods.setdefault(node.name, key)
        elif enclosing is not None:
            enclosing.local_defs.setdefault(node.name, key)
        else:
            info.functions.setdefault(node.name, key)
            info.bindings.add(node.name)
        self._index_body(ctx, info, node.body, prefix=f"{qualname}.",
                         class_info=None, enclosing=fn)

    def _index_class(
        self,
        ctx: ModuleContext,
        info: ModuleInfo,
        node: ast.ClassDef,
        prefix: str,
        enclosing: FunctionNode | None,
    ) -> None:
        fqname = f"{ctx.module}.{prefix}{node.name}"
        class_info = ClassInfo(fqname=fqname)
        self.classes[fqname] = class_info
        for base in node.bases:
            base_dotted = dotted_name(base)
            if base_dotted is not None:
                class_info.bases.append(info.imports.expand(base_dotted))
        if enclosing is None:
            info.classes.setdefault(node.name, fqname)
            info.bindings.add(node.name)
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                attr_class = self._annotation_class(info, statement.annotation)
                if attr_class is not None:
                    class_info.attr_types.setdefault(
                        statement.target.id, attr_class
                    )
        self._index_body(ctx, info, node.body, prefix=f"{prefix}{node.name}.",
                         class_info=class_info, enclosing=enclosing)

    def _annotation_class(
        self, info: ModuleInfo, annotation: ast.expr
    ) -> str | None:
        """The project class an annotation names, if statically simple."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            head = annotation.value.strip().split("[")[0].split("|")[0].strip()
            return self._class_fqname(info, head)
        target = dotted_name(annotation)
        if target is None:
            return None
        return self._class_fqname(info, target)

    def _class_fqname(self, info: ModuleInfo, dotted: str) -> str | None:
        if dotted in info.classes:
            return info.classes[dotted]
        expanded = info.imports.expand(dotted)
        return expanded if expanded in self.classes else None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _resolve_module(self, ctx: ModuleContext) -> None:
        info = self.modules[ctx.module]
        for fn in self.functions.values():
            if fn.module != ctx.module:
                continue
            self._resolve_function(info, fn)

    def _learn_attr_types(self, info: ModuleInfo) -> None:
        """Record ``self.attr = SomeClass(...)`` instance-attribute types."""
        for fn in self.functions.values():
            if fn.module != info.ctx.module or fn.class_name is None:
                continue
            class_info = self.classes.get(fn.class_name)
            if class_info is None:
                continue
            for node in self._own_body_walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                callee = dotted_name(node.value.func)
                if callee is None:
                    continue
                attr_class = self._class_fqname(info, callee)
                if attr_class is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        class_info.attr_types.setdefault(
                            target.attr, attr_class
                        )

    @staticmethod
    def _own_body_walk(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ast.AST]:
        """Walk a function body without descending into nested defs.

        Nested functions and lambdas are their own graph nodes; their
        bodies execute only when called, so their statements must not be
        attributed to the enclosing function.
        """
        found: list[ast.AST] = []
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            found.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _resolve_function(self, info: ModuleInfo, fn: FunctionNode) -> None:
        seen_edges: set[str] = set()
        for node in self._own_body_walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    with_dotted = dotted_name(expr)
                    if with_dotted is not None:
                        fn.with_names.append((with_dotted, node.lineno))
            if not isinstance(node, ast.Call):
                continue
            self._resolve_call(info, fn, node, seen_edges)
        fn.free_names = self._free_names(info, fn)

    def _resolve_call(
        self,
        info: ModuleInfo,
        fn: FunctionNode,
        call: ast.Call,
        seen_edges: set[str],
    ) -> None:
        target = self._resolve_callable(info, fn, call.func)
        if target is not None:
            if target not in seen_edges:
                seen_edges.add(target)
                fn.calls.append(CallSite(callee=target, line=call.lineno))
            return
        dotted = dotted_name(call.func)
        if dotted is None:
            if isinstance(call.func, ast.Attribute):
                fn.external_calls.append(
                    ExternalCall(dotted="", attr=call.func.attr,
                                 line=call.lineno)
                )
            return
        expanded = info.imports.expand(dotted)
        # functools.partial(f, ...) submits/wraps f: follow the reference.
        if expanded in ("functools.partial", "partial") and call.args:
            inner = self._resolve_callable(info, fn, call.args[0])
            if inner is not None and inner not in seen_edges:
                seen_edges.add(inner)
                fn.calls.append(CallSite(callee=inner, line=call.lineno))
                return
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        fn.external_calls.append(
            ExternalCall(dotted=expanded, attr=attr, line=call.lineno)
        )

    def _resolve_callable(
        self,
        info: ModuleInfo,
        fn: FunctionNode,
        expr: ast.expr,
    ) -> str | None:
        """Resolve a callable expression to a project function key."""
        if isinstance(expr, ast.Name):
            if expr.id in fn.local_defs:
                return fn.local_defs[expr.id]
            if expr.id in info.functions:
                return info.functions[expr.id]
            class_fq = self._class_fqname(info, expr.id)
            if class_fq is not None:
                return self.resolve_method(class_fq, "__init__")
            expanded = info.imports.expand(expr.id)
            return self.resolve_dotted(expanded)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted is None:
                return None
            parts = dotted.split(".")
            if parts[0] in ("self", "cls") and fn.class_name is not None:
                if len(parts) == 2:
                    return self.resolve_method(fn.class_name, parts[1])
                if len(parts) == 3:
                    class_info = self.classes.get(fn.class_name)
                    if class_info is not None:
                        attr_class = self._attr_type(fn.class_name, parts[1])
                        if attr_class is not None:
                            return self.resolve_method(attr_class, parts[2])
                return None
            expanded = info.imports.expand(dotted)
            return self.resolve_dotted(expanded)
        return None

    def resolve_reference(
        self, fn: FunctionNode, expr: ast.expr
    ) -> str | None:
        """Resolve a callable *reference* (not necessarily a call site).

        Used by project rules to follow task callables handed to
        submission sinks; unwraps ``functools.partial(f, ...)`` to the
        wrapped function.
        """
        info = self.modules.get(fn.module)
        if info is None:
            return None
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and expr.args:
                expanded = info.imports.expand(dotted)
                if expanded in ("functools.partial", "partial"):
                    return self.resolve_reference(fn, expr.args[0])
            return None
        return self._resolve_callable(info, fn, expr)

    def _attr_type(self, class_fqname: str, attr: str) -> str | None:
        """The class of ``self.<attr>``, searching the base-class chain."""
        seen: set[str] = set()
        stack = [class_fqname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            class_info = self.classes.get(current)
            if class_info is None:
                continue
            if attr in class_info.attr_types:
                return class_info.attr_types[attr]
            stack.extend(class_info.bases)
        return None

    def resolve_method(self, class_fqname: str, name: str) -> str | None:
        """Resolve a method by name through the static MRO approximation."""
        seen: set[str] = set()
        stack = [class_fqname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            class_info = self.classes.get(current)
            if class_info is None:
                continue
            if name in class_info.methods:
                return class_info.methods[name]
            stack.extend(class_info.bases)
        return None

    def resolve_dotted(self, dotted: str) -> str | None:
        """Resolve a canonical dotted name to a project function key.

        Tries the longest module prefix: ``repro.serve.registry.
        SeriesRegistry.load`` splits at the deepest known module and the
        remainder resolves as a module-level function, a class
        constructor, or a class method.
        """
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            info = self.modules.get(module)
            if info is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                if rest[0] in info.functions:
                    return info.functions[rest[0]]
                class_fq = info.classes.get(rest[0])
                if class_fq is not None:
                    return self.resolve_method(class_fq, "__init__")
                return None
            class_fq = info.classes.get(rest[0])
            if class_fq is not None and len(rest) == 2:
                return self.resolve_method(class_fq, rest[1])
            return None
        return None

    def _free_names(self, info: ModuleInfo, fn: FunctionNode) -> frozenset[str]:
        """Loaded names with no local, module, or builtin binding."""
        if not fn.is_nested:
            return frozenset()
        bound = local_bound_names(fn.node)
        free: set[str] = set()
        for node in self._own_body_walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in bound
                and node.id not in info.bindings
                and node.id not in _BUILTIN_NAMES
            ):
                free.add(node.id)
        return frozenset(free)
