"""Coverage-guided differential fuzzer for the counting kernels.

The columnar tier re-implements both scans of the hit-set method as
vectorized array ops, and the only acceptable difference from the
batched and legacy kernels is speed.  This module hammers that claim:
randomized feature series are mined through every kernel tier and the
resulting ``{letters: count}`` maps must be identical — additionally
checked against a brute-force oracle that enumerates every subset of the
frequent-1 letters and counts it by definition, with no shared code
beyond the series itself.

A second, kernel-level stage compares the store primitives directly
(``distinct_counts`` / ``letter_counts`` / ``hit_counter`` /
``count_masks`` / the per-letter bitmap index) against naive
pure-Python recomputations, so a bug that happens to cancel out in the
end-to-end result is still caught at the primitive it lives in.

Coverage guidance is structural, not line-based: every executed case is
reduced to a small signature (period, vocabulary width, frequent-set
size, distinct-mask and pattern-count buckets) and cases that produce a
new signature join the corpus, which mutation favours — so the budget
drifts toward shapes not yet exercised (wide vocabularies, empty
frequent sets, dense distinct tables) instead of re-rolling the same
easy cases.

The fuzzer's own alarm is tested by :func:`mutation_check`: it injects
known bugs into :mod:`repro.kernels.columnar` (a dropped distinct row,
an off-by-one letter count, a corrupted candidate count, a lying bitmap
index) and demands the fuzzer report a divergence for every one.  A
clean run proves little if the alarm cannot ring.

CLI: ``ppm fuzz`` (see :func:`repro.cli.main`); CI runs a short-budget
smoke plus the mutation check.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.core.counting import min_count
from repro.core.hitset import mine_single_period_hitset
from repro.core.pattern import Letter
from repro.timeseries.feature_series import FeatureSeries

#: Kernel tiers whose mining results must be letter-identical.
KERNEL_TIERS = ("columnar", "batched", "legacy")

#: Skip the exponential brute-force oracle past this many frequent-1
#: letters (the kernel tiers still cross-check each other).
BRUTE_FORCE_MAX_F1 = 10

#: Cap on the frequent-1 set a case may mine with: the complete frequent
#: set is exponential in it, so :func:`run_case` raises the confidence
#: deterministically until the cap holds (divergence hunting needs many
#: cheap cases, not one degenerate blowup).
MAX_F1_LETTERS = 12

#: At most this many candidate masks per kernel-level comparison.
_SAMPLE_MASKS = 48


@dataclass(frozen=True, slots=True)
class FuzzCase:
    """One reproducible fuzz input (the series is a pure function of it)."""

    seed: int
    period: int
    num_segments: int
    alphabet: int
    planted: int
    planting: float
    noise: int
    min_conf: float

    def describe(self) -> dict[str, Any]:
        """JSON-ready form (the reproduction recipe for a divergence)."""
        return {
            "seed": self.seed,
            "period": self.period,
            "num_segments": self.num_segments,
            "alphabet": self.alphabet,
            "planted": self.planted,
            "planting": self.planting,
            "noise": self.noise,
            "min_conf": self.min_conf,
        }


@dataclass(frozen=True, slots=True)
class Divergence:
    """One observed disagreement between kernels (or against an oracle)."""

    case: FuzzCase
    stage: str
    detail: str

    def describe(self) -> dict[str, Any]:
        return {
            "case": self.case.describe(),
            "stage": self.stage,
            "detail": self.detail,
        }


@dataclass(slots=True)
class FuzzReport:
    """Outcome of one fuzzing run."""

    executed: int
    signatures: int
    corpus_size: int
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every case agreed across kernels and oracles."""
        return not self.divergences

    def to_json(self) -> dict[str, Any]:
        return {
            "executed": self.executed,
            "signatures": self.signatures,
            "corpus_size": self.corpus_size,
            "ok": self.ok,
            "divergences": [d.describe() for d in self.divergences],
        }

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.divergences)} DIVERGENT"
        return (
            f"fuzz: {self.executed} cases, {self.signatures} coverage "
            f"signatures, corpus {self.corpus_size} -> {verdict}"
        )


def random_case(rng: random.Random) -> FuzzCase:
    """Draw a fresh case; ranges deliberately include degenerate shapes."""
    period = rng.randint(1, 6)
    return FuzzCase(
        seed=rng.randrange(1 << 30),
        period=period,
        num_segments=rng.randint(1, 40),
        # Past ~64 distinct (offset, feature) letters the store goes wide
        # and the columnar tier must fall back; both sides of the cliff
        # stay in range.
        alphabet=rng.choice((2, 3, 5, 9, 17, 40, 90)),
        planted=rng.randint(0, 2),
        planting=rng.choice((0.3, 0.6, 0.9, 1.0)),
        noise=rng.randint(0, 3),
        min_conf=rng.choice((0.1, 0.25, 0.5, 0.75, 1.0)),
    )


def mutate_case(case: FuzzCase, rng: random.Random) -> FuzzCase:
    """Perturb one dimension of a corpus case (seed always re-rolls)."""
    mutated = replace(case, seed=rng.randrange(1 << 30))
    dimension = rng.randrange(6)
    if dimension == 0:
        mutated = replace(mutated, period=max(1, case.period + rng.choice((-1, 1))))
    elif dimension == 1:
        mutated = replace(
            mutated, num_segments=max(1, case.num_segments + rng.choice((-3, 3)))
        )
    elif dimension == 2:
        mutated = replace(mutated, alphabet=rng.choice((2, 3, 5, 9, 17, 40, 90)))
    elif dimension == 3:
        mutated = replace(mutated, noise=max(0, case.noise + rng.choice((-1, 1))))
    elif dimension == 4:
        mutated = replace(mutated, min_conf=rng.choice((0.1, 0.25, 0.5, 0.75, 1.0)))
    return mutated


def generate_series(case: FuzzCase) -> FeatureSeries:
    """The deterministic series of a case: periodic plants plus noise."""
    rng = random.Random(case.seed)
    features = [f"f{index}" for index in range(case.alphabet)]
    plants: list[list[str]] = [
        rng.sample(features, min(case.planted, len(features)))
        for _ in range(case.period)
    ]
    total_slots = case.num_segments * case.period + rng.randrange(case.period)
    slots: list[frozenset[str]] = []
    for position in range(total_slots):
        slot: set[str] = set()
        for feature in plants[position % case.period]:
            if rng.random() < case.planting:
                slot.add(feature)
        for _ in range(rng.randint(0, case.noise)):
            slot.add(rng.choice(features))
        slots.append(frozenset(slot))
    return FeatureSeries(slots)


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------


def brute_force_patterns(
    series: FeatureSeries, period: int, min_conf: float
) -> dict[frozenset[Letter], int] | None:
    """Every frequent pattern, by definition, sharing no kernel code.

    Enumerates all non-empty subsets of the frequent-1 letters and counts
    each by a direct submask test over the segments.  ``None`` when the
    frequent-1 set is too large to enumerate (caller skips the oracle).
    """
    segments = list(series.segments(period))
    if not segments:
        return None
    threshold = min_count(min_conf, len(segments))
    letter_counts: Counter = Counter()
    for segment in segments:
        for offset, slot in enumerate(segment):
            for feature in slot:
                letter_counts[(offset, feature)] += 1
    f1 = sorted(
        letter for letter, count in letter_counts.items() if count >= threshold
    )
    if len(f1) > BRUTE_FORCE_MAX_F1:
        return None
    bit_of = {letter: 1 << index for index, letter in enumerate(f1)}
    rows: Counter = Counter()
    for segment in segments:
        row = 0
        for offset, slot in enumerate(segment):
            for feature in slot:
                bit = bit_of.get((offset, feature))
                if bit is not None:
                    row |= bit
        rows[row] += 1
    frequent: dict[frozenset[Letter], int] = {}
    for subset in range(1, 1 << len(f1)):
        count = sum(
            row_count
            for row, row_count in rows.items()
            if not subset & ~row
        )
        if count >= threshold:
            letters = frozenset(
                f1[index] for index in range(len(f1)) if subset >> index & 1
            )
            frequent[letters] = count
    return frequent


def _result_map(
    series: FeatureSeries, period: int, min_conf: float, kernel: str
) -> dict[frozenset[Letter], int]:
    result = mine_single_period_hitset(series, period, min_conf, kernel=kernel)
    return {pattern.letters: count for pattern, count in result.items()}


def _diff_maps(
    left: dict[frozenset[Letter], int], right: dict[frozenset[Letter], int]
) -> str:
    """A short human-readable description of the first few differences."""
    deltas: list[str] = []
    for letters in sorted(
        set(left) | set(right), key=lambda item: sorted(item)
    ):
        if left.get(letters) != right.get(letters):
            deltas.append(
                f"{sorted(letters)}: {left.get(letters)} != {right.get(letters)}"
            )
        if len(deltas) >= 4:
            break
    return "; ".join(deltas) or "identical"


# ----------------------------------------------------------------------
# One case, end to end
# ----------------------------------------------------------------------


def _effective_conf(series: FeatureSeries, period: int, base: float) -> float:
    """The case's confidence, raised until the frequent-1 cap holds.

    Deterministic in the inputs, so a divergence still reproduces from
    its case alone.  At confidence 1.0 at most ``2 * period`` letters can
    be frequent (two planted features per offset), which is within the
    cap by construction.
    """
    segments = list(series.segments(period))
    if not segments:
        return base
    counts: Counter = Counter()
    for segment in segments:
        for offset, slot in enumerate(segment):
            for feature in slot:
                counts[(offset, feature)] += 1
    conf = base
    while conf < 1.0:
        threshold = min_count(conf, len(segments))
        if sum(1 for c in counts.values() if c >= threshold) <= MAX_F1_LETTERS:
            break
        conf = min(1.0, round(conf + 0.1, 10))
    return conf


def run_case(case: FuzzCase) -> tuple[list[Divergence], tuple[Any, ...]]:
    """Execute one case; returns its divergences and coverage signature."""
    series = generate_series(case)
    divergences: list[Divergence] = []

    min_conf = _effective_conf(series, case.period, case.min_conf)
    maps = {
        kernel: _result_map(series, case.period, min_conf, kernel)
        for kernel in KERNEL_TIERS
    }
    reference = maps["batched"]
    for kernel in KERNEL_TIERS:
        if maps[kernel] != reference:
            divergences.append(
                Divergence(
                    case,
                    stage=f"mine:{kernel}-vs-batched",
                    detail=_diff_maps(maps[kernel], reference),
                )
            )
    oracle = brute_force_patterns(series, case.period, min_conf)
    if oracle is not None and oracle != reference:
        divergences.append(
            Divergence(
                case,
                stage="mine:brute-force-oracle",
                detail=_diff_maps(reference, oracle),
            )
        )

    wide, signature_bits = _check_primitives(case, series, divergences)
    signature = (
        case.period,
        wide,
        _bucket(len(reference)),
        not reference,
        signature_bits,
    )
    return divergences, signature


def _bucket(value: int) -> int:
    """Coarse log-scale bucket for coverage signatures."""
    return value.bit_length()


def _check_primitives(
    case: FuzzCase, series: FeatureSeries, divergences: list[Divergence]
) -> tuple[bool, tuple[Any, ...]]:
    """Differentially test the store primitives on packed stores.

    Returns ``(wide, signature_bits)``; wide stores (``> 64`` letters)
    have no column to test and contribute only their width to coverage.
    """
    from repro.kernels.batched import batched_count_masks
    from repro.kernels.store import SegmentStore, WideVocabularyError

    try:
        store = SegmentStore.from_series_interned(series, case.period)
    except WideVocabularyError:
        return True, (0, 0)
    if not len(store):
        return False, (0, 0)

    rng = random.Random(case.seed ^ 0x5EED)
    naive_rows: Counter = Counter(int(mask) for mask in store)
    distinct = store.distinct_counts()
    if +distinct != +naive_rows:
        divergences.append(
            Divergence(
                case,
                stage="store:distinct_counts",
                detail=(
                    f"{len(distinct)} distinct rows vs {len(naive_rows)} naive"
                ),
            )
        )

    naive_letters: Counter = Counter()
    vocab = store.vocab
    for mask, count in naive_rows.items():
        remaining = mask
        while remaining:
            low = remaining & -remaining
            naive_letters[vocab[low.bit_length() - 1]] += count
            remaining ^= low
    if +store.letter_counts() != +naive_letters:
        divergences.append(
            Divergence(case, stage="store:letter_counts", detail="count mismatch")
        )

    naive_hits = Counter(
        {mask: count for mask, count in naive_rows.items() if mask.bit_count() >= 2}
    )
    if +store.hit_counter() != +naive_hits:
        divergences.append(
            Divergence(case, stage="store:hit_counter", detail="hit mismatch")
        )

    sample: list[int] = list(naive_rows)[:_SAMPLE_MASKS // 2]
    width = len(vocab)
    for row in list(sample):
        if row:
            keep = rng.randrange(1, 1 << row.bit_count())
            sample.append(_submask(row, keep))
    while width and len(sample) < _SAMPLE_MASKS:
        sample.append(rng.randrange(1, 1 << width))
    sample = list(dict.fromkeys(mask for mask in sample if mask))
    naive_counts = {
        mask: sum(
            count for row, count in naive_rows.items() if not mask & ~row
        )
        for mask in sample
    }
    for name, counted in (
        ("columnar", lambda: _columnar_counts(distinct, sample)),
        ("batched", lambda: batched_count_masks(naive_rows.items(), sample)),
        ("bitmap", lambda: store.bitmap_index().count_masks(sample)),
    ):
        observed = dict(counted())
        if observed != naive_counts:
            wrong = sum(
                1
                for mask in sample
                if observed.get(mask) != naive_counts[mask]
            )
            divergences.append(
                Divergence(
                    case,
                    stage=f"store:count_masks:{name}",
                    detail=f"{wrong}/{len(sample)} candidate counts differ",
                )
            )
    return False, (_bucket(len(naive_rows)), _bucket(width))


def _columnar_counts(
    distinct: Counter, sample: list[int]
) -> dict[int, int]:
    from repro.kernels import columnar

    return columnar.count_masks(distinct, sample)


def _submask(row: int, keep: int) -> int:
    """The submask of ``row`` selecting its set bits where ``keep`` is set."""
    out = 0
    index = 0
    remaining = row
    while remaining:
        low = remaining & -remaining
        if keep >> index & 1:
            out |= low
        remaining ^= low
        index += 1
    return out


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------


def fuzz(budget: int, seed: int = 0) -> FuzzReport:
    """Run ``budget`` cases under coverage guidance; fully deterministic.

    Cases producing a previously unseen coverage signature join the
    corpus; most of the budget mutates corpus entries, the rest draws
    fresh random cases so guidance never starves exploration.
    """
    rng = random.Random(seed)
    corpus: list[FuzzCase] = []
    signatures: set[tuple[Any, ...]] = set()
    divergences: list[Divergence] = []
    executed = 0
    while executed < budget:
        if corpus and rng.random() < 0.7:
            case = mutate_case(rng.choice(corpus), rng)
        else:
            case = random_case(rng)
        case_divergences, signature = run_case(case)
        executed += 1
        divergences.extend(case_divergences)
        if signature not in signatures:
            signatures.add(signature)
            corpus.append(case)
    return FuzzReport(
        executed=executed,
        signatures=len(signatures),
        corpus_size=len(corpus),
        divergences=divergences,
    )


# ----------------------------------------------------------------------
# Mutation check: prove the alarm can ring
# ----------------------------------------------------------------------


def _mutation_targets() -> dict[str, tuple[str, Callable[..., Any]]]:
    """Named bugs to inject: columnar attribute -> corrupted wrapper."""
    from repro.kernels import columnar

    original_distinct = columnar.distinct_counts
    original_letters = columnar.letter_bit_totals
    original_counts = columnar.count_masks
    original_hits = columnar.hit_counter

    def dropped_distinct_row(column: Any) -> Counter:
        counts = Counter(original_distinct(column))
        for mask in sorted(counts):
            if mask:
                del counts[mask]
                break
        return counts

    def off_by_one_letter(column: Any) -> Any:
        totals = original_letters(column)
        totals[0] += 1
        return totals

    def corrupted_candidate(distinct: Counter, masks: Any) -> dict[int, int]:
        counts = dict(original_counts(distinct, masks))
        for mask in sorted(counts):
            counts[mask] += 1
            break
        return counts

    def lying_hits(distinct: Counter, min_letters: int = 2) -> Counter:
        counts = Counter(original_hits(distinct, min_letters))
        for mask in sorted(counts):
            counts[mask] += 1
            break
        return counts

    return {
        "dropped-distinct-row": ("distinct_counts", dropped_distinct_row),
        "off-by-one-letter-count": ("letter_bit_totals", off_by_one_letter),
        "corrupted-candidate-count": ("count_masks", corrupted_candidate),
        "lying-hit-counter": ("hit_counter", lying_hits),
    }


def mutation_check(budget: int = 40, seed: int = 0) -> dict[str, bool]:
    """Inject each known kernel bug; report which ones the fuzzer caught.

    Every value in the returned mapping must be ``True`` for the fuzzer's
    alarm to be trusted; CI asserts exactly that.
    """
    from repro.kernels import columnar

    caught: dict[str, bool] = {}
    for name, (attribute, corrupted) in _mutation_targets().items():
        original = getattr(columnar, attribute)
        setattr(columnar, attribute, corrupted)
        try:
            report = fuzz(budget, seed=seed)
        finally:
            setattr(columnar, attribute, original)
        caught[name] = not report.ok
    return caught
