"""Per-module analysis context handed to every rule.

Bundles the parsed AST with the information rules keep needing: the dotted
module name (so rules can scope themselves to ``repro.engine`` or exempt a
defining module), the raw source, and small AST utilities shared across the
rule catalog.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


def module_name_of(path: Path) -> str:
    """Derive the dotted module name of a file from ``__init__.py`` markers.

    Walks up while parent directories are packages, so
    ``src/repro/core/pattern.py`` maps to ``repro.core.pattern`` regardless
    of the current working directory.  Files outside any package map to
    their bare stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    #: True when the file is a package ``__init__.py``.
    is_package_init: bool = False
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        path: str = "<string>",
        module: str | None = None,
    ) -> "ModuleContext":
        """Parse source into a context; raises ``SyntaxError`` on bad input.

        ``module`` overrides the derived dotted name — fixture tests use it
        to place a snippet "inside" a scoped package such as
        ``repro.engine``.
        """
        tree = ast.parse(source, filename=path)
        if module is None:
            module = module_name_of(Path(path)) if path != "<string>" else ""
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            is_package_init=Path(path).name == "__init__.py",
        )

    def in_package(self, prefix: str) -> bool:
        """True when the module is ``prefix`` or lives below it."""
        return self.module == prefix or self.module.startswith(prefix + ".")


def dotted_name(node: ast.AST) -> str | None:
    """The dotted form of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.default_rng`` resolves to ``"np.random.default_rng"``; any
    non-name link (a call, a subscript) makes the chain unresolvable.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name`` of a call, if given."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def iter_assigned_names(target: ast.expr) -> list[ast.Name]:
    """All plain ``Name`` targets inside an assignment target expression."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[ast.Name] = []
        for element in target.elts:
            names.extend(iter_assigned_names(element))
        return names
    if isinstance(target, ast.Starred):
        return iter_assigned_names(target.value)
    return []
