"""Per-module analysis context handed to every rule.

Bundles the parsed AST with the information rules keep needing: the dotted
module name (so rules can scope themselves to ``repro.engine`` or exempt a
defining module), the raw source, and small AST utilities shared across the
rule catalog.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Callables whose results are mutable collections.  Shared by the
#: mutable-default rule (REP402), the worker-global-write rule (REP104),
#: and the effect engine's mutates-global detection, so all three agree
#: on what "mutable" means.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "Counter", "OrderedDict",
     "defaultdict", "deque"}
)

#: Methods that mutate a collection in place (shared-state writes);
#: shared by the fork-safety rules and the effect engine.
MUTATING_CALLS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def module_name_of(path: Path) -> str:
    """Derive the dotted module name of a file from ``__init__.py`` markers.

    Walks up while parent directories are packages, so
    ``src/repro/core/pattern.py`` maps to ``repro.core.pattern`` regardless
    of the current working directory.  Files outside any package map to
    their bare stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    #: True when the file is a package ``__init__.py``.
    is_package_init: bool = False
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        path: str = "<string>",
        module: str | None = None,
    ) -> "ModuleContext":
        """Parse source into a context; raises ``SyntaxError`` on bad input.

        ``module`` overrides the derived dotted name — fixture tests use it
        to place a snippet "inside" a scoped package such as
        ``repro.engine``.
        """
        tree = ast.parse(source, filename=path)
        if module is None:
            module = module_name_of(Path(path)) if path != "<string>" else ""
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            is_package_init=Path(path).name == "__init__.py",
        )

    def in_package(self, prefix: str) -> bool:
        """True when the module is ``prefix`` or lives below it."""
        return self.module == prefix or self.module.startswith(prefix + ".")


def dotted_name(node: ast.AST) -> str | None:
    """The dotted form of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.default_rng`` resolves to ``"np.random.default_rng"``; any
    non-name link (a call, a subscript) makes the chain unresolvable.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name`` of a call, if given."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def iter_assigned_names(target: ast.expr) -> list[ast.Name]:
    """All plain ``Name`` targets inside an assignment target expression."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[ast.Name] = []
        for element in target.elts:
            names.extend(iter_assigned_names(element))
        return names
    if isinstance(target, ast.Starred):
        return iter_assigned_names(target.value)
    return []


def module_level_mutables(tree: ast.Module) -> set[str]:
    """Module-level names bound to statically-mutable values.

    A name counts when its module-level assignment is a literal
    collection, a comprehension, or a call to one of the
    :data:`MUTABLE_FACTORIES` — the values a function could mutate in
    place as hidden shared state.
    """
    names: set[str] = set()
    for node in tree.body:
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp)
        )
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None:
                mutable = callee.split(".")[-1] in MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            for name in iter_assigned_names(target):
                names.add(name.id)
    return names


def local_bound_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Every name bound inside a function: parameters, assignment targets,
    loop/with/comprehension targets, and nested definitions."""
    names = {arg.arg for arg in func.args.posonlyargs}
    names.update(arg.arg for arg in func.args.args)
    names.update(arg.arg for arg in func.args.kwonlyargs)
    if func.args.vararg is not None:
        names.add(func.args.vararg.arg)
    if func.args.kwarg is not None:
        names.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                names.add(node.name)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for name in iter_assigned_names(target):
                    names.add(name.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in iter_assigned_names(node.target):
                names.add(name.id)
        elif isinstance(node, ast.comprehension):
            for name in iter_assigned_names(node.target):
                names.add(name.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name in iter_assigned_names(item.optional_vars):
                        names.add(name.id)
        elif isinstance(node, ast.ExceptHandler) and node.name is not None:
            names.add(node.name)
    return names
