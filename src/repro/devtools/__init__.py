"""repro.devtools — domain-aware static analysis for the mining engine.

An AST-based linter whose rules encode the invariants the engine's
correctness rests on but Python cannot enforce at runtime: shard tasks
must pickle by reference (fork-safety, REP1xx), ``Pattern`` and tree nodes
are immutable value objects outside their owning modules (REP2xx), library
code draws no unseeded randomness (REP3xx), the public surface stays
hygienic (REP4xx), and the encoded tree/engine hot paths stay on bitmask
kernels (REP5xx).  See ``docs/devtools.md`` for the full catalog and the
suppression policy.

Three entry points share one engine:

* ``python -m repro.devtools src/repro tests`` — CI and command line;
* ``ppm lint`` — the packaged CLI subcommand;
* :func:`analyze_source` / :func:`analyze_paths` — importable API used by
  the test suite's per-rule fixtures and self-check.

>>> from repro.devtools import analyze_source
>>> bad = "def f(xs=[]):\\n    return xs\\n"
>>> [(f.rule_id, f.line) for f in analyze_source(bad)]
[('REP402', 1)]
"""

from repro.devtools.analyzer import (
    META_RULE_IDS,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    select_rules,
)
from repro.devtools.cli import main, run
from repro.devtools.context import ModuleContext, module_name_of
from repro.devtools.findings import Finding, Severity, findings_to_json
from repro.devtools.registry import Rule, all_rules, get_rule, known_rule_ids, register
from repro.devtools.suppressions import Suppression, parse_suppressions

__all__ = [
    "META_RULE_IDS",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings_to_json",
    "get_rule",
    "iter_python_files",
    "known_rule_ids",
    "main",
    "module_name_of",
    "parse_suppressions",
    "register",
    "run",
    "select_rules",
]
