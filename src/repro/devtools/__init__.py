"""repro.devtools — domain-aware static analysis for the mining engine.

An AST-based linter whose rules encode the invariants the engine's
correctness rests on but Python cannot enforce at runtime: shard tasks
must pickle by reference (fork-safety, REP1xx), ``Pattern`` and tree nodes
are immutable value objects outside their owning modules (REP2xx), library
code draws no unseeded randomness (REP3xx), the public surface stays
hygienic (REP4xx), and the encoded tree/engine hot paths stay on bitmask
kernels (REP5xx).  See ``docs/devtools.md`` for the full catalog and the
suppression policy.

Three entry points share one engine:

* ``python -m repro.devtools src/repro tests`` — CI and command line;
* ``ppm lint`` — the packaged CLI subcommand;
* :func:`analyze_source` / :func:`analyze_paths` — importable API used by
  the test suite's per-rule fixtures and self-check.

>>> from repro.devtools import analyze_source
>>> bad = "def f(xs=[]):\\n    return xs\\n"
>>> [(f.rule_id, f.line) for f in analyze_source(bad)]
[('REP402', 1)]
"""

from repro.devtools.analyzer import (
    META_RULE_IDS,
    SourceAnalysis,
    analyze_file,
    analyze_paths,
    analyze_source,
    analyze_source_detailed,
    iter_python_files,
    select_rules,
    selected_meta_ids,
)
from repro.devtools.baseline import (
    Baseline,
    BaselineError,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.devtools.callgraph import CallGraph
from repro.devtools.cli import main, run
from repro.devtools.context import ModuleContext, module_name_of
from repro.devtools.effects import (
    Effect,
    EffectInference,
    effect_names,
    parse_effect_annotations,
)
from repro.devtools.findings import Finding, Severity, findings_to_json
from repro.devtools.project import ProjectContext, analyze_project, build_project
from repro.devtools.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    known_rule_ids,
    project_rules,
    register,
)
from repro.devtools.suppressions import Suppression, parse_suppressions

__all__ = [
    "META_RULE_IDS",
    "Baseline",
    "BaselineError",
    "CallGraph",
    "Effect",
    "EffectInference",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "SourceAnalysis",
    "Suppression",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "analyze_source_detailed",
    "build_project",
    "effect_names",
    "fingerprint",
    "findings_to_json",
    "get_rule",
    "iter_python_files",
    "known_rule_ids",
    "load_baseline",
    "main",
    "module_name_of",
    "parse_effect_annotations",
    "parse_suppressions",
    "project_rules",
    "register",
    "run",
    "select_rules",
    "selected_meta_ids",
    "write_baseline",
]
