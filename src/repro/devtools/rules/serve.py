"""Serving-tier rules (REP8xx).

The serving layer runs on one asyncio event loop: a single blocking call
inside an ``async def`` stalls *every* connection, not just its own —
latency spikes that profile as mysterious p99 cliffs.  REP801 makes the
contract mechanical: under :mod:`repro.serve`, coroutine bodies may not
call ``time.sleep``, synchronous file I/O (``open``, :class:`pathlib.Path`
read/write helpers, ``os`` file-manipulation calls), or ``subprocess``.
Blocking work belongs on the worker pool — wrap it in a plain function
and dispatch it with ``loop.run_in_executor`` (which is why nested
synchronous ``def`` bodies inside a coroutine are exempt: they are the
executor payloads).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.context import ModuleContext, dotted_name
from repro.devtools.effects import (
    BLOCKING_DOTTED,
    BLOCKING_DOTTED_PREFIXES,
    BLOCKING_METHODS,
    EFFECT_NAMES,
    Effect,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, Rule, register

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext

#: The package whose coroutines the rule polices.
SERVE_PACKAGE = "repro.serve"


def _blocking_reason(call: ast.Call) -> str | None:
    """Why one call expression blocks the event loop, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open() performs synchronous file I/O"
    dotted = dotted_name(func)
    if dotted is not None:
        if dotted in BLOCKING_DOTTED:
            return f"{dotted}() blocks the event loop"
        if dotted.startswith(BLOCKING_DOTTED_PREFIXES):
            return f"{dotted}() runs a subprocess synchronously"
    if isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS:
        return f".{func.attr}() performs synchronous file I/O"
    return None


def _async_body_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every call that executes on the coroutine's own thread of control.

    Nested synchronous functions are skipped — they are not executed by
    the coroutine directly (the legitimate pattern is defining an
    executor payload inline).  Nested ``async def`` bodies are *not*
    skipped: they run on the same loop.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutineRule(Rule):
    """REP801: blocking call inside an ``async def`` under repro.serve."""

    id = "REP801"
    name = "blocking-call-in-coroutine"
    severity = Severity.ERROR
    rationale = (
        "The serving tier is one event loop; time.sleep, synchronous file "
        "I/O, or subprocess calls inside a coroutine stall every in-flight "
        "request at once. Blocking work must run on the worker pool via "
        "loop.run_in_executor (nested sync def bodies are exempt as "
        "executor payloads)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(SERVE_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                reason = _blocking_reason(call)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        call.lineno,
                        call.col_offset,
                        f"{reason} inside coroutine {node.name}(); "
                        "dispatch it to the worker pool with "
                        "loop.run_in_executor",
                    )


@register
class TransitiveBlockingCoroutineRule(ProjectRule):
    """REP811: a serve coroutine transitively reaches blocking work.

    The deep form of REP801: the blocking call is not in the coroutine's
    own body but buried behind one or more ordinary function calls — a
    sync helper that opens a file, a cache method that unlinks an entry.
    Direct violations stay REP801's; this rule reports only effects that
    arrive through a call edge, and it reports them at the *boundary*
    coroutine (the first async function on the chain), not at every
    caller above it.
    """

    id = "REP811"
    name = "coroutine-transitively-blocks"
    severity = Severity.ERROR
    rationale = (
        "A blocking call one helper deep stalls the event loop exactly "
        "as hard as one written inline, and is invisible to per-module "
        "analysis. Effect inference follows the call graph; fix the "
        "chain (run_in_executor) or declare a verified boundary with "
        "'# repro: effect[...] -- reason'."
    )

    #: The effect bits that stall the loop.
    BLOCKING_BITS = (Effect.BLOCKING_IO, Effect.SLEEPS)

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        inference = project.inference
        for fn in project.graph.functions.values():
            if not fn.is_async:
                continue
            if not _in_package(fn.module, SERVE_PACKAGE):
                continue
            effects = inference.effects_of(fn.key)
            for bit in self.BLOCKING_BITS:
                if not bit & effects:
                    continue
                origin = inference.origin_of(fn.key, bit)
                if origin is None or origin.callee is None:
                    # Direct or annotated: REP801's territory (or an
                    # explicit declaration the author made on purpose).
                    continue
                callee = project.graph.functions.get(origin.callee)
                if (
                    callee is not None
                    and callee.is_async
                    and _in_package(callee.module, SERVE_PACKAGE)
                ):
                    # The effect enters the loop deeper down; the callee
                    # coroutine carries its own finding.
                    continue
                names, source = inference.chain(fn.key, bit)
                yield self.project_finding(
                    fn.path,
                    fn.node.lineno,
                    fn.node.col_offset,
                    f"coroutine {fn.name}() transitively reaches "
                    f"{_bit_name(bit)}: {' -> '.join(names)} -> {source}; "
                    "dispatch the blocking step to the worker pool or "
                    "declare a verified boundary with "
                    "'# repro: effect[...] -- reason'",
                )


def _in_package(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _bit_name(bit: Effect) -> str:
    return EFFECT_NAMES[bit]
