"""Serving-tier rules (REP8xx).

The serving layer runs on one asyncio event loop: a single blocking call
inside an ``async def`` stalls *every* connection, not just its own —
latency spikes that profile as mysterious p99 cliffs.  REP801 makes the
contract mechanical: under :mod:`repro.serve`, coroutine bodies may not
call ``time.sleep``, synchronous file I/O (``open``, :class:`pathlib.Path`
read/write helpers, ``os`` file-manipulation calls), or ``subprocess``.
Blocking work belongs on the worker pool — wrap it in a plain function
and dispatch it with ``loop.run_in_executor`` (which is why nested
synchronous ``def`` bodies inside a coroutine are exempt: they are the
executor payloads).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext, dotted_name
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: The package whose coroutines the rule polices.
SERVE_PACKAGE = "repro.serve"

#: Dotted calls that block the thread outright.
BLOCKING_DOTTED_PREFIXES = ("subprocess.",)
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Method names that are synchronous file I/O wherever they appear
#: (pathlib.Path helpers and raw handle reads/writes).
BLOCKING_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)


def _blocking_reason(call: ast.Call) -> str | None:
    """Why one call expression blocks the event loop, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open() performs synchronous file I/O"
    dotted = dotted_name(func)
    if dotted is not None:
        if dotted in BLOCKING_DOTTED:
            return f"{dotted}() blocks the event loop"
        if dotted.startswith(BLOCKING_DOTTED_PREFIXES):
            return f"{dotted}() runs a subprocess synchronously"
    if isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS:
        return f".{func.attr}() performs synchronous file I/O"
    return None


def _async_body_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every call that executes on the coroutine's own thread of control.

    Nested synchronous functions are skipped — they are not executed by
    the coroutine directly (the legitimate pattern is defining an
    executor payload inline).  Nested ``async def`` bodies are *not*
    skipped: they run on the same loop.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutineRule(Rule):
    """REP801: blocking call inside an ``async def`` under repro.serve."""

    id = "REP801"
    name = "blocking-call-in-coroutine"
    severity = Severity.ERROR
    rationale = (
        "The serving tier is one event loop; time.sleep, synchronous file "
        "I/O, or subprocess calls inside a coroutine stall every in-flight "
        "request at once. Blocking work must run on the worker pool via "
        "loop.run_in_executor (nested sync def bodies are exempt as "
        "executor payloads)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(SERVE_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                reason = _blocking_reason(call)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        call.lineno,
                        call.col_offset,
                        f"{reason} inside coroutine {node.name}(); "
                        "dispatch it to the worker pool with "
                        "loop.run_in_executor",
                    )
