"""The rule catalog.

Importing this package registers every rule with
:mod:`repro.devtools.registry`.  Rules are grouped by the invariant family
they guard:

* :mod:`.fork_safety` — REP1xx, the engine's pickling/shared-state contract;
* :mod:`.immutability` — REP2xx, ``Pattern`` and tree-node value semantics;
* :mod:`.determinism` — REP3xx, seeded randomness outside ``synth``;
* :mod:`.hygiene` — REP4xx, public-API and hot-path hygiene;
* :mod:`.encoding` — REP5xx, the bitmask-kernel contract of the encoded
  tree/engine hot paths;
* :mod:`.resilience` — REP6xx, budgeted sleeping and bounded retries;
* :mod:`.kernels` — REP7xx, batched counting (no per-candidate probe
  loops outside the legacy oracle);
* :mod:`.serve` — REP8xx, the serving tier's event-loop contract (no
  blocking calls inside coroutines);
* :mod:`.streaming` — REP9xx, bounded state on unbounded feeds (every
  growth in a streaming path has an eviction or watermark bound);
* :mod:`.durability` — REP10xx, atomic state-file writes (durable state
  routes through the snapshot helper; append-only logs are the exempt
  journal/WAL idiom);
* :mod:`.columnar` — REP11xx, vectorized scans (no Python loops over the
  segment store's row buffer outside the wide-vocabulary fallback).
"""

from repro.devtools.rules import (  # noqa: F401  (imports register rules)
    columnar,
    determinism,
    durability,
    encoding,
    fork_safety,
    hygiene,
    immutability,
    kernels,
    resilience,
    serve,
    streaming,
)

__all__ = [
    "columnar",
    "determinism",
    "durability",
    "encoding",
    "fork_safety",
    "hygiene",
    "immutability",
    "kernels",
    "resilience",
    "serve",
    "streaming",
]
