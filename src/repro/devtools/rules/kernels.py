"""Batched-kernel rules (REP7xx).

The batched counting refactor replaced Algorithm 4.2's per-candidate
ancestor walks with one superset-sum pass over the whole candidate set
(:func:`repro.kernels.batched.batched_count_masks`).  Calling the
single-mask probes (``count_of_mask`` and friends) inside a loop quietly
reintroduces the candidates-times-rows cost — results stay correct, only
the asymptotics regress.  This rule makes that regression loud.

The tree module itself is exempt: it is where the legacy derivation
(``kernel="legacy"``, the equivalence oracle) legitimately lives.  A
genuine non-batchable probe loop can be suppressed with
``# repro: ignore[REP701] -- <why the calls cannot batch>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: Single-mask probe methods superseded by the batched kernels.
PER_CANDIDATE_PROBES = frozenset(
    {"count_of_mask", "count_of", "count_of_letters"}
)

#: The module allowed to loop over probes: the legacy derivation oracle.
EXEMPT_MODULE = "repro.tree.max_subpattern_tree"


@register
class PerCandidateCountLoopRule(Rule):
    """REP701: per-candidate count probe called inside a loop."""

    id = "REP701"
    name = "per-candidate-count-loop"
    severity = Severity.ERROR
    rationale = (
        "Counting candidates one count_of_mask() call at a time inside a "
        "loop costs O(candidates * tree rows); the batched kernels "
        "(MaxSubpatternTree.count_masks / repro.kernels.batched."
        "batched_count_masks) answer the whole set in one superset-sum "
        "pass. Only the legacy oracle in repro.tree.max_subpattern_tree "
        "may keep the per-candidate walk."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_package(EXEMPT_MODULE):
            return
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            # Only the loop's own body counts: a probe in an else-clause
            # runs once, not per iteration.  Nested loops revisit the same
            # calls; `seen` reports each site once.
            for node in ast.walk(ast.Module(body=loop.body, type_ignores=[])):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in PER_CANDIDATE_PROBES
                    and (node.lineno, node.col_offset) not in seen
                ):
                    seen.add((node.lineno, node.col_offset))
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"{node.func.attr}() called inside a loop; batch "
                        "the candidate set through count_masks() / "
                        "batched_count_masks() instead of probing one "
                        "mask per iteration",
                    )
