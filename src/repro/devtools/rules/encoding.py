"""Encoded hot-path rules (REP5xx).

The interned-vocabulary refactor moved the tree and the parallel engine
onto int bitmask kernels: a segment hit is one int, subset tests are one
``mask & ~other``, and node indexing is by missing-mask.  Building a
``frozenset`` of letters inside those packages reintroduces the exact
per-segment allocation + tuple-hashing cost the encoding removed — and it
does so silently, because the frozenset path still produces correct
results.  These rules make the regression loud instead.

Decoding at the *boundary* (``LetterVocabulary.decode_mask``,
``Pattern.from_mask``) is the sanctioned way back to letter sets; a
genuine one-off set construction can be suppressed with
``# repro: ignore[REP501] -- <why it is not per-segment work>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: Packages whose hot paths must stay on bitmask kernels.
ENCODED_PACKAGES = ("repro.tree", "repro.engine")


@register
class FrozensetInEncodedPathRule(Rule):
    """REP501: ``frozenset(...)`` constructed inside an encoded package."""

    id = "REP501"
    name = "frozenset-in-encoded-path"
    severity = Severity.ERROR
    rationale = (
        "repro.tree and repro.engine run on int bitmasks over an interned "
        "LetterVocabulary; constructing frozensets there reintroduces the "
        "per-segment allocation and hashing cost the encoding removed. "
        "Decode at the boundary with vocab.decode_mask / Pattern.from_mask "
        "instead."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not any(ctx.in_package(package) for package in ENCODED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "frozenset"
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "frozenset() built inside an encoded package; tree and "
                    "engine hot paths work on vocabulary bitmasks — decode "
                    "via the vocabulary at the boundary instead",
                )
