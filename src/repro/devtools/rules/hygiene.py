"""API hygiene rules (REP4xx).

Hygiene here is not style: each rule guards a way the package's public
surface or hot paths can silently rot — ``__all__`` drifting from what a
module actually exports, mutable defaults aliasing state across calls,
exception handlers swallowing the engine's typed error contract, and
hot-path value classes paying dict-per-instance costs the tree benchmarks
assume away.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import (
    MUTABLE_FACTORIES,
    ModuleContext,
    dotted_name,
    iter_assigned_names,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: Base classes exempting a class from the ``__slots__`` requirement.
_SLOTS_EXEMPT_BASES = frozenset(
    {
        "ABC",
        "BaseException",
        "Enum",
        "Exception",
        "Flag",
        "IntEnum",
        "IntFlag",
        "NamedTuple",
        "Protocol",
        "StrEnum",
        "TypedDict",
    }
)


def _module_bindings(ctx: ModuleContext) -> dict[str, int]:
    """Names bound at module level, mapped to the line binding them."""
    bindings: dict[str, int] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings.setdefault(node.name, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in iter_assigned_names(target):
                    bindings.setdefault(name.id, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            for name in iter_assigned_names(node.target):
                bindings.setdefault(name.id, node.lineno)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings.setdefault(bound, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings.setdefault(alias.asname or alias.name, node.lineno)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditionally-bound names (TYPE_CHECKING blocks, fallback
            # imports) still count as module bindings.
            for inner in ast.walk(node):
                if isinstance(inner, ast.ImportFrom):
                    for alias in inner.names:
                        if alias.name != "*":
                            bindings.setdefault(
                                alias.asname or alias.name, inner.lineno
                            )
                elif isinstance(inner, ast.Import):
                    for alias in inner.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        bindings.setdefault(bound, inner.lineno)
    return bindings


def _public_names(ctx: ModuleContext) -> dict[str, int]:
    """Module-level names that belong in ``__all__`` if one is declared.

    Classes, functions, and constants defined here always count; imported
    names count only in package ``__init__`` modules, whose whole purpose
    is re-export.
    """
    public: dict[str, int] = {}
    for node in ctx.tree.body:
        names: list[tuple[str, int]] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names = [(node.name, node.lineno)]
        elif isinstance(node, ast.Assign):
            names = [
                (name.id, node.lineno)
                for target in node.targets
                for name in iter_assigned_names(target)
            ]
        elif isinstance(node, ast.AnnAssign):
            names = [
                (name.id, node.lineno)
                for name in iter_assigned_names(node.target)
            ]
        elif ctx.is_package_init and isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            names = [
                (alias.asname or alias.name, node.lineno)
                for alias in node.names
                if alias.name != "*"
            ]
        for name, lineno in names:
            if not name.startswith("_"):
                public.setdefault(name, lineno)
    return public


def _all_declaration(ctx: ModuleContext) -> tuple[ast.Assign, list[str]] | None:
    """The module's literal ``__all__`` assignment, if statically readable."""
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None
        entries: list[str] = []
        for element in node.value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            entries.append(element.value)
        return node, entries
    return None


@register
class AllDriftRule(Rule):
    """REP401: ``__all__`` out of sync with the module's public names."""

    id = "REP401"
    name = "all-drift"
    severity = Severity.ERROR
    rationale = (
        "__all__ is the package's published API contract: a stale entry "
        "breaks 'from repro import *' and re-export type checking, and an "
        "unlisted public name ships an accidental API that no deprecation "
        "policy covers."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        declaration = _all_declaration(ctx)
        if declaration is None:
            return
        node, entries = declaration
        bindings = _module_bindings(ctx)
        for entry in entries:
            if entry not in bindings:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"__all__ lists {entry!r} but the module never binds it",
                )
        listed = set(entries)
        for name, lineno in sorted(_public_names(ctx).items()):
            if name not in listed and name != "__all__":
                yield self.finding(
                    ctx,
                    lineno,
                    0,
                    f"public name {name!r} is not listed in __all__; add it "
                    "or rename it with a leading underscore",
                )


@register
class MutableDefaultRule(Rule):
    """REP402: mutable default argument values."""

    id = "REP402"
    name = "mutable-default"
    severity = Severity.ERROR
    rationale = (
        "A mutable default is evaluated once and shared by every call — "
        "in a package whose miners are re-entered per shard, that is "
        "cross-call (and cross-test) state leakage.  Default to None and "
        "construct inside the function."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {node.name}(); use "
                        "None and build the value inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None:
                return callee.split(".")[-1] in MUTABLE_FACTORIES
        return False


@register
class BareExceptRule(Rule):
    """REP403: bare ``except:`` clauses."""

    id = "REP403"
    name = "bare-except"
    severity = Severity.ERROR
    rationale = (
        "bare except catches SystemExit/KeyboardInterrupt and hides "
        "worker-pool crashes the engine's degradation path is designed to "
        "surface; catch the narrowest type, or Exception with an explicit "
        "suppression and reason."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare 'except:'; name the exception types (the package "
                    "raises typed ReproError subclasses)",
                )


@register
class OverbroadExceptRule(Rule):
    """REP404: ``except Exception``/``BaseException`` handlers."""

    id = "REP404"
    name = "overbroad-except"
    severity = Severity.ERROR
    rationale = (
        "The package's error contract is typed (ReproError and "
        "subclasses); except Exception swallows genuine bugs such as a "
        "non-associative merge raising TypeError.  Where broad capture IS "
        "the contract (per-shard capture-and-retry in the executor), the "
        "site must say so via a suppression with a reason."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            exc_types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for exc_type in exc_types:
                name = dotted_name(exc_type)
                if name is None:
                    continue
                terminal = name.split(".")[-1]
                if terminal in ("Exception", "BaseException"):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"overbroad 'except {terminal}'; catch specific "
                        "types, or document the broad capture with a "
                        "suppression reason",
                    )


@register
class MissingSlotsRule(Rule):
    """REP405: hot-path classes in core/tree without ``__slots__``."""

    id = "REP405"
    name = "missing-slots"
    severity = Severity.WARNING
    rationale = (
        "core/ and tree/ classes are instantiated per pattern and per "
        "tree node — the structures the paper's space analysis (Section "
        "4.1) bounds.  A per-instance __dict__ multiplies that footprint "
        "and slows attribute access on the counting hot path; __slots__ "
        "(or @dataclass(slots=True)) keeps the bound honest."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not (ctx.in_package("repro.core") or ctx.in_package("repro.tree")):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and not self._is_exempt(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"class {node.name} in a hot-path package defines no "
                    "__slots__; add __slots__ or @dataclass(slots=True)",
                )

    @staticmethod
    def _is_exempt(node: ast.ClassDef) -> bool:
        if node.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                terminal = name.split(".")[-1]
                if (
                    terminal in _SLOTS_EXEMPT_BASES
                    or terminal.endswith(("Error", "Exception", "Warning"))
                ):
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                callee = dotted_name(decorator.func)
                if callee is not None and callee.split(".")[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        for statement in node.body:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False
