"""Resilience rules (REP6xx): budgeted sleeping and bounded retries.

The resilience layer's deadline accounting only works if every pause in
the package is visible to it.  ``repro.resilience.backoff`` is the one
sanctioned sleeping module — its :func:`~repro.resilience.backoff.sleep`
clamps, guards, and centralizes every blocking pause — so a stray
``time.sleep`` anywhere else is latency the deadline cannot see (REP601).
Similarly, a ``while True`` loop that swallows exceptions and never exits
is an unbounded retry: under a persistent fault it spins forever where
the engine's :class:`~repro.resilience.policy.RetryPolicy` would have
given up after its attempt budget (REP602).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext, dotted_name
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: The only module allowed to call ``time.sleep``.
SANCTIONED_SLEEP_MODULE = "repro.resilience.backoff"


class _TimeImports:
    """Aliases under which stdlib ``time`` (and its ``sleep``) are bound."""

    def __init__(self, tree: ast.Module):
        self.modules: set[str] = set()
        self.sleeps: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self.modules.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        self.sleeps.add(alias.asname or "sleep")


@register
class StraySleepRule(Rule):
    """REP601: ``time.sleep`` outside ``repro.resilience.backoff``."""

    id = "REP601"
    name = "stray-sleep"
    severity = Severity.ERROR
    rationale = (
        "Deadlines can only budget pauses they can see; every blocking "
        "sleep in the package must route through "
        "repro.resilience.backoff.sleep, which guards non-positive "
        "durations and keeps the pause auditable.  A raw time.sleep "
        "elsewhere is invisible latency under a wall-clock budget."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        if ctx.module == SANCTIONED_SLEEP_MODULE:
            return
        imports = _TimeImports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_name(node.func)
            if path is None:
                continue
            parts = path.split(".")
            stray = (
                len(parts) == 2
                and parts[0] in imports.modules
                and parts[1] == "sleep"
            ) or (len(parts) == 1 and parts[0] in imports.sleeps)
            if stray:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"raw {path}() outside {SANCTIONED_SLEEP_MODULE}; "
                    "deadlines cannot account for it — use "
                    "repro.resilience.backoff.sleep",
                )


def _loop_escapes(loop: ast.While) -> bool:
    """True when a ``while`` body can leave the loop (break/return/raise
    outside any handler, ignoring nested function definitions)."""
    stack: list[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Break, ast.Return)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.While, ast.For)
        ):
            # Nested scopes and loops consume their own break/return.
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _swallows_exceptions(loop: ast.While) -> bool:
    """True when the loop body contains a try/except whose handlers keep
    the loop spinning (no break/return/bare raise inside the handler)."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not isinstance(node, ast.Try) or not node.handlers:
            continue
        for handler in node.handlers:
            escapes = any(
                isinstance(inner, (ast.Break, ast.Return, ast.Raise))
                for child in handler.body
                for inner in ast.walk(child)
            )
            if not escapes:
                return True
    return False


@register
class UnboundedRetryLoopRule(Rule):
    """REP602: a ``while True`` retry loop with no exit and swallowed
    exceptions."""

    id = "REP602"
    name = "unbounded-retry-loop"
    severity = Severity.ERROR
    rationale = (
        "A while-True loop that catches exceptions without ever breaking, "
        "returning, or re-raising retries forever: under a persistent "
        "fault it spins where RetryPolicy would have exhausted its "
        "attempt budget and failed loudly.  Bound the loop on "
        "policy.exhausted(attempts) or re-raise from the handler."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            if _loop_escapes(node):
                continue
            if _swallows_exceptions(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "unbounded while-True retry loop: exceptions are "
                    "swallowed and nothing exits the loop; bound it with a "
                    "RetryPolicy attempt budget",
                )
