"""Durability-tier rules (REP10xx).

The crash-safety argument of :mod:`repro.durability` is made exactly once
— in :class:`~repro.durability.snapshot.SnapshotWriter`, whose
write-temp + fsync + rename + directory-fsync sequence guarantees a
reader sees either the old state file or the new one.  Every durable
state file written *around* that helper silently reopens the argument: a
plain truncating ``open(..., "w")`` or ``Path.write_text`` leaves a torn
half-file behind any kill that lands mid-write, and the corruption only
surfaces at the next recovery, far from the bug.

REP1001 makes the routing mechanical: inside the packages that own
durable state (``repro.durability``, ``repro.resilience``,
``repro.serve``, ``repro.streaming``), opening a file in a truncating
write mode or calling ``write_text``/``write_bytes`` is a finding.
Append-mode opens are exempt — the journal/WAL idiom is append-only by
design, and a torn trailing line is exactly what the recovery paths are
built to absorb.  ``r+`` opens are exempt too: in-place truncation of a
torn tail is a recovery action, not a state write.  The defining module
(``repro.durability.snapshot``) is exempt as the place the argument
lives — including its deliberate fault-injection writes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, register

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext

#: Packages whose files hold durable state.
DURABLE_PACKAGES = (
    "repro.durability",
    "repro.resilience",
    "repro.serve",
    "repro.streaming",
)

#: The module allowed to write state files directly: the atomic helper.
DEFINING_MODULE = "repro.durability.snapshot"

#: Direct-write methods that bypass the atomic publish sequence.
DIRECT_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mode_argument(call: ast.Call) -> str | None:
    """The literal mode string of an ``open``-shaped call, if present.

    Covers both the builtin (``open(path, "w")``, mode second) and the
    ``Path.open("w")`` method (mode first).  A non-literal mode returns
    ``None`` — the rule only fires on provably-truncating opens.
    """
    is_builtin = isinstance(call.func, ast.Name) and call.func.id == "open"
    is_method = (
        isinstance(call.func, ast.Attribute) and call.func.attr == "open"
    )
    if not (is_builtin or is_method):
        return None
    position = 1 if is_builtin else 0
    if len(call.args) > position:
        node = call.args[position]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    return "r" if is_builtin or is_method else None


@register
class DirectStateWriteRule(ProjectRule):
    """REP1001: a durable-state package writes a file non-atomically."""

    id = "REP1001"
    name = "non-atomic-state-write"
    severity = Severity.WARNING
    rationale = (
        "Durable state files must go through the atomic snapshot helper "
        "(write-temp + fsync + rename) so a kill can never leave a torn "
        "half-file. Inside the durable-state packages, truncating opens "
        "('w'/'x' modes) and Path.write_text/write_bytes bypass that "
        "argument; use repro.durability.snapshot.SnapshotWriter, or "
        "append mode for journal/WAL-idiom logs."
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for info in project.graph.modules.values():
            ctx = info.ctx
            if ctx.module == DEFINING_MODULE:
                continue
            if not any(
                ctx.in_package(package) for package in DURABLE_PACKAGES
            ):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in DIRECT_WRITE_METHODS
                ):
                    yield self.project_finding(
                        ctx.path,
                        node.lineno,
                        node.col_offset,
                        f".{node.func.attr}() writes a state file in "
                        "place; route it through SnapshotWriter so the "
                        "write is atomic and checksummed",
                    )
                    continue
                mode = _mode_argument(node)
                if mode is not None and mode[:1] in ("w", "x"):
                    yield self.project_finding(
                        ctx.path,
                        node.lineno,
                        node.col_offset,
                        f"open(..., {mode!r}) truncates a state file in "
                        "place; use SnapshotWriter for atomic publishes "
                        "or append mode for journal/WAL logs",
                    )
