"""Fork-safety rules (REP1xx): the engine's pickling and shared-state contract.

The sharded engine (PR 1) promises that the same worker callable runs
unchanged on the serial, thread, and process backends.  That only holds
when every task function handed to a submission path is picklable by
reference — a module-level function — and when worker functions touch no
module-level mutable state (scan folding must stay associative with no
hidden sharing; see ``repro.engine.worker``'s module docstring and paper
Sections 3.2/4).

Submission paths recognized statically:

* calls to ``run_shards(backend, fn, tasks)`` — the canonical fan-out;
* ``<pool-like>.submit(fn, ...)`` — executor submission;
* ``<backend/pool/executor-like>.map(fn, tasks)`` — backend mapping (the
  receiver name must look pool-like, so builtin ``map`` idioms are not
  flagged).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.context import (
    MUTATING_CALLS,
    ModuleContext,
    call_keyword,
    dotted_name,
    iter_assigned_names,
    local_bound_names,
    module_level_mutables,
)
from repro.devtools.effects import EFFECT_NAMES, Effect, effect_names
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, Rule, register

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext

#: Plain-function submission sinks: callee name -> index of the task callable.
SUBMISSION_FUNCTIONS = {"run_shards": 1}

#: Method submission sinks: attribute name -> index of the task callable.
SUBMISSION_METHODS = {"submit": 0, "map": 0}

#: ``.map`` only counts as a sink when its receiver looks like a pool.
_POOLISH_RE = re.compile(r"backend|pool|executor", re.IGNORECASE)



def _submission_callable(call: ast.Call) -> ast.expr | None:
    """The task-callable argument of a call, if the call is a sink."""
    index: int | None = None
    if isinstance(call.func, ast.Name):
        index = SUBMISSION_FUNCTIONS.get(call.func.id)
    elif isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in SUBMISSION_FUNCTIONS:
            index = SUBMISSION_FUNCTIONS[attr]
        elif attr in SUBMISSION_METHODS:
            if attr == "map":
                receiver = dotted_name(call.func.value)
                if receiver is None or not _POOLISH_RE.search(receiver):
                    return None
            index = SUBMISSION_METHODS[attr]
    if index is None:
        return None
    if len(call.args) > index:
        return call.args[index]
    return call_keyword(call, "fn")


class _SubmissionScan:
    """Shared single-pass scan used by the three task-callable rules."""

    def __init__(self, tree: ast.Module):
        self.lambda_aliases: set[str] = set()
        self.local_functions: set[str] = set()
        self.module_functions: set[str] = set()
        self.sinks: list[tuple[ast.Call, ast.expr]] = []
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_functions.add(node.name)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.local_functions.add(inner.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for name in iter_assigned_names(node.targets[0]):
                    self.lambda_aliases.add(name.id)
            if isinstance(node, ast.Call):
                candidate = _submission_callable(node)
                if candidate is not None:
                    self.sinks.append((node, candidate))


def _scan(ctx: ModuleContext) -> _SubmissionScan:
    return _SubmissionScan(ctx.tree)


@register
class LambdaTaskRule(Rule):
    """REP101: a lambda handed to an executor/worker submission path."""

    id = "REP101"
    name = "lambda-task"
    severity = Severity.ERROR
    rationale = (
        "Lambdas are unpicklable; a lambda task works on the serial and "
        "thread backends but breaks ProcessBackend, the engine's default "
        "for workers > 1 — exactly the silent backend-dependent failure "
        "the shard contract forbids."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scan = _scan(ctx)
        for _call, candidate in scan.sinks:
            if isinstance(candidate, ast.Lambda):
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    "lambda passed to an engine submission path; use a "
                    "module-level function so the task pickles by reference",
                )
            elif (
                isinstance(candidate, ast.Name)
                and candidate.id in scan.lambda_aliases
            ):
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    f"{candidate.id!r} is bound to a lambda and passed to an "
                    "engine submission path; define it with 'def' at module "
                    "level",
                )


@register
class LocalFunctionTaskRule(Rule):
    """REP102: a nested/local function handed to a submission path."""

    id = "REP102"
    name = "local-function-task"
    severity = Severity.ERROR
    rationale = (
        "Functions defined inside another function (closures included) "
        "pickle by qualified name lookup, which fails for non-module "
        "scopes; such tasks die on the process backend only, after "
        "passing every serial test."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scan = _scan(ctx)
        for _call, candidate in scan.sinks:
            if (
                isinstance(candidate, ast.Name)
                and candidate.id in scan.local_functions
                and candidate.id not in scan.module_functions
            ):
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    f"locally-defined function {candidate.id!r} passed to an "
                    "engine submission path; move it to module level",
                )


@register
class BoundMethodTaskRule(Rule):
    """REP103: a bound method handed to a submission path."""

    id = "REP103"
    name = "bound-method-task"
    severity = Severity.ERROR
    rationale = (
        "A bound method drags its whole instance through pickle; miners "
        "and backends hold unpicklable state (pools, open series "
        "wrappers), so submitting self.<method> couples shard tasks to "
        "parent-process state the worker must not share."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scan = _scan(ctx)
        for _call, candidate in scan.sinks:
            if not isinstance(candidate, ast.Attribute):
                continue
            base = candidate.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    f"bound method {base.id}.{candidate.attr} passed to an "
                    "engine submission path; use a module-level function "
                    "taking the state as an explicit picklable task",
                )
            elif isinstance(base, ast.Call):
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    f"method {candidate.attr!r} of a fresh instance passed "
                    "to an engine submission path; tasks must be "
                    "module-level functions",
                )


@register
class WorkerGlobalWriteRule(Rule):
    """REP104: engine code mutating module-level state from a function."""

    id = "REP104"
    name = "worker-global-write"
    severity = Severity.ERROR
    rationale = (
        "Worker output must depend only on the task (repro.engine.worker's "
        "contract): module-level mutable state written from a function is "
        "invisible to the process backend (each worker mutates its own "
        "copy) and racy on the thread backend, so merged results stop "
        "being deterministic."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.engine"):
            return
        mutable_globals = module_level_mutables(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, mutable_globals)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        mutable_globals: set[str],
    ) -> Iterator[Finding]:
        local_names = local_bound_names(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"'global {', '.join(node.names)}' in engine code; "
                    "shard state must flow through task arguments and "
                    "return values",
                )
                continue
            target_name = self._mutated_global(node, mutable_globals)
            if target_name is not None and target_name not in local_names:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"module-level mutable {target_name!r} written from a "
                    "function in engine code; worker output must depend "
                    "only on its task",
                )

    @staticmethod
    def _mutated_global(node: ast.AST, mutable_globals: set[str]) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_globals
                ):
                    return target.value.id
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                node.func.attr in MUTATING_CALLS
                and isinstance(base, ast.Name)
                and base.id in mutable_globals
            ):
                return base.id
        return None


@register
class TransitiveTaskHazardRule(ProjectRule):
    """REP111: a submitted task callable transitively carries a hazard.

    The deep form of the REP10x family: the callable handed to
    ``run_shards``/``submit``/``<pool>.map`` is itself a respectable
    module-level function, but somewhere down its call chain it forks,
    acquires a lock, mutates module-level state, or resolves to a nested
    closure through a ``functools.partial`` wrapper — hazards a worker
    process must not carry and a per-module scan cannot see.
    """

    id = "REP111"
    name = "task-transitive-hazard"
    severity = Severity.ERROR
    rationale = (
        "A worker task that transitively forks can fork-bomb the process "
        "backend; one that acquires locks can deadlock a forked child; "
        "one that mutates module globals silently diverges across "
        "workers; and a partial over a closure dies in pickle. The "
        "hazard is the same whether it sits in the task or three helpers "
        "below it — only the call graph can tell."
    )

    #: Hazards that propagate through the task's call chain.
    TRANSITIVE_BITS = (
        Effect.FORKS,
        Effect.ACQUIRES_LOCK,
        Effect.MUTATES_GLOBAL,
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        inference = project.inference
        graph = project.graph
        for fn in graph.functions.values():
            for node in graph._own_body_walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                candidate = _submission_callable(node)
                if candidate is None:
                    continue
                target_key = graph.resolve_reference(fn, candidate)
                if target_key is None:
                    continue
                target = graph.functions[target_key]
                effects = inference.effects_of(target_key)
                if target.is_nested and Effect.UNPICKLABLE_CLOSURE & effects:
                    names = (
                        f" (captures {', '.join(sorted(target.free_names))})"
                        if target.free_names
                        else ""
                    )
                    yield self.project_finding(
                        fn.path,
                        candidate.lineno,
                        candidate.col_offset,
                        f"task resolves to nested function "
                        f"{target.display}{names}; nested functions never "
                        "pickle by reference — move it to module level",
                    )
                hazards = Effect.NONE
                for bit in self.TRANSITIVE_BITS:
                    if bit & effects:
                        hazards |= bit
                for bit in self.TRANSITIVE_BITS:
                    if not bit & hazards:
                        continue
                    chain, source = inference.chain(target_key, bit)
                    yield self.project_finding(
                        fn.path,
                        candidate.lineno,
                        candidate.col_offset,
                        f"submitted task transitively reaches "
                        f"{EFFECT_NAMES[bit]}: {' -> '.join(chain)} -> "
                        f"{source}; workers must stay "
                        f"{'/'.join(effect_names(hazards))}-free or the "
                        "boundary must be declared with "
                        "'# repro: effect[...] -- reason'",
                    )
