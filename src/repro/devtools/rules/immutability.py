"""Pattern/tree immutability rules (REP2xx).

The max-subpattern tree's count-union merge is exact only because
``Pattern`` behaves as an immutable letter set (paper Sections 3.2 and 4):
hashes are cached at construction, letter sets are shared freely between
shards, trees index nodes by frozen missing-letter sets.  One in-place
mutation outside the owning modules silently corrupts every structure
holding the object — no exception, just wrong counts.

These rules protect a fixed catalog of internals by attribute name.  The
check is name-based (static analysis cannot prove the object's type), so a
same-named attribute on an unrelated class in a non-owning module is a
false positive by construction — suppress it with
``# repro: ignore[REP201] -- <why the object is not a Pattern/tree node>``
or rename the attribute.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register
from repro.devtools.rules.fork_safety import MUTATING_CALLS

#: Protected internals: attribute name -> modules allowed to write it.
PROTECTED_ATTRS: dict[str, frozenset[str]] = {
    # Pattern internals (repro.core.pattern).
    "_positions": frozenset({"repro.core.pattern"}),
    # The vocabulary owns a same-named letter store; interning appends to
    # it by design, so the encoding module is an owner too.
    "_letters": frozenset(
        {
            "repro.core.pattern",
            "repro.tree.max_subpattern_tree",
            "repro.encoding.vocabulary",
        }
    ),
    "_hash": frozenset({"repro.core.pattern"}),
    # MaxSubpatternNode fields: owned by the node module and the tree that
    # drives insertion/merging.
    "missing": frozenset({"repro.tree.node"}),
    "missing_mask": frozenset({"repro.tree.node"}),
    "count": frozenset({"repro.tree.node", "repro.tree.max_subpattern_tree"}),
    "parent": frozenset({"repro.tree.node"}),
    "children": frozenset({"repro.tree.node"}),
    # MaxSubpatternTree internals.
    "_index": frozenset({"repro.tree.max_subpattern_tree"}),
    "_root": frozenset({"repro.tree.max_subpattern_tree"}),
    "_total_hits": frozenset({"repro.tree.max_subpattern_tree"}),
    "_max_pattern": frozenset({"repro.tree.max_subpattern_tree"}),
}


def _is_protected_here(ctx: ModuleContext, attr: str) -> bool:
    owners = PROTECTED_ATTRS.get(attr)
    return owners is not None and ctx.module not in owners


@register
class PatternMutationRule(Rule):
    """REP201: assignment to Pattern/tree internals outside their modules."""

    id = "REP201"
    name = "pattern-mutation"
    severity = Severity.ERROR
    rationale = (
        "Pattern objects are hashable value objects with cached hashes, "
        "and tree nodes are owned by their tree; rebinding their fields "
        "outside repro.core.pattern / repro.tree breaks set/dict "
        "membership and the count-union merge without raising."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if isinstance(target, ast.Attribute) and _is_protected_here(
                    ctx, target.attr
                ):
                    verb = "deleted" if isinstance(node, ast.Delete) else "assigned"
                    yield self.finding(
                        ctx,
                        target.lineno,
                        target.col_offset,
                        f"protected attribute {target.attr!r} {verb} outside "
                        "its defining module; Pattern and tree-node "
                        "internals are immutable elsewhere",
                    )


@register
class PatternInplaceCallRule(Rule):
    """REP202: in-place mutation of protected internals outside owners."""

    id = "REP202"
    name = "pattern-inplace-call"
    severity = Severity.ERROR
    rationale = (
        "Mutating a protected collection in place (node.children.clear(), "
        "tree._index[k] = n, pattern._positions[...] = ...) bypasses the "
        "tree's index bookkeeping and the pattern's cached hash — the "
        "merge stays silent and the counts go wrong."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if (
                    node.func.attr in MUTATING_CALLS
                    and isinstance(receiver, ast.Attribute)
                    and _is_protected_here(ctx, receiver.attr)
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"in-place {node.func.attr}() on protected attribute "
                        f"{receiver.attr!r} outside its defining module",
                    )
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and _is_protected_here(ctx, target.value.attr)
                    ):
                        yield self.finding(
                            ctx,
                            target.lineno,
                            target.col_offset,
                            f"item assignment into protected attribute "
                            f"{target.value.attr!r} outside its defining "
                            "module",
                        )
