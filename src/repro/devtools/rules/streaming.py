"""Streaming-tier rules (REP9xx).

A streaming engine's defining promise is bounded state on an unbounded
feed: every structure that grows per slot, per event, or per segment must
have a matching eviction path (retire, drain, pop, clear) or be gated by
a watermark.  A single forgotten eviction is invisible in tests — suites
feed thousands of slots, production feeds billions — so REP901 makes the
bound mechanical: under :mod:`repro.streaming`, a method that grows a
``self``-reachable collection must, in that same method, either evict
from one (``pop``/``popleft``/``clear``/``retire``/``drain``/...),
``del`` part of one, or consult a watermark.  Growth whose bound lives
elsewhere by design (a ring drained by a sibling method, a sample list
capped by a guard) is expected to be *baselined with a reason* via the
findings ratchet — the rule's job is to make every unbounded-looking
append a deliberate, documented decision rather than an accident.

The rule is whole-program (:class:`ProjectRule`): it runs under
``--project`` where the committed ``devtools_baseline.json`` ratchet
applies, so known-bounded growth sites are accepted once, with their
justification on record, and any *new* growth site fails CI.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.context import dotted_name
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, register

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext

#: The package whose per-item code paths the rule polices.
STREAMING_PACKAGE = "repro.streaming"

#: Calls that grow a collection.
GROWTH_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "extendleft", "insert",
     "setdefault", "update"}
)

#: Calls that shrink one — any of these in the method proves an
#: eviction path exists where the growth happens.
EVICTION_METHODS = frozenset(
    {"pop", "popleft", "popitem", "clear", "remove", "discard",
     "retire", "evict", "drain", "flush", "seal", "prune", "truncate"}
)


def _mentions_self(node: ast.AST) -> bool:
    """True when the expression reaches state through ``self``."""
    return any(
        isinstance(child, ast.Name) and child.id == "self"
        for child in ast.walk(node)
    )


def _consults_watermark(fn: ast.AST) -> bool:
    """True when the method reads anything watermark-named.

    Growth gated by a watermark check is the bounded-lateness pattern:
    the same horizon that admits an event also bounds how many slots can
    be open at once.
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and "watermark" in node.id:
            return True
        if isinstance(node, ast.Attribute) and "watermark" in node.attr:
            return True
    return False


def _has_eviction(fn: ast.AST) -> bool:
    """True when the method evicts from (or deletes) ``self`` state."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in EVICTION_METHODS
            and _mentions_self(node.func.value)
        ):
            return True
        if isinstance(node, ast.Delete) and any(
            _mentions_self(target) for target in node.targets
        ):
            return True
    return False


def _growth_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Calls in the method that grow a ``self``-reachable collection.

    A growth name invoked directly on bare ``self`` (``self.append(...)``)
    is method delegation, not collection growth — the delegate method is
    audited on its own.
    """
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in GROWTH_METHODS
            and not (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            )
            and _mentions_self(node.func.value)
        ):
            yield node


@register
class UnboundedStreamingGrowthRule(ProjectRule):
    """REP901: a streaming-path method grows state it never bounds."""

    id = "REP901"
    name = "unbounded-streaming-growth"
    severity = Severity.WARNING
    rationale = (
        "Streaming state must stay bounded on an unbounded feed. A method "
        "under repro.streaming that grows a self-reachable collection must "
        "evict in the same method (pop/clear/retire/drain/...), del part "
        "of it, or consult a watermark; growth bounded elsewhere by design "
        "belongs in the findings baseline with a written reason."
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for info in project.graph.modules.values():
            ctx = info.ctx
            if not ctx.in_package(STREAMING_PACKAGE):
                continue
            for owner, fn in _methods(ctx.tree):
                if _has_eviction(fn) or _consults_watermark(fn):
                    continue
                for call in _growth_calls(fn):
                    target = dotted_name(call.func)
                    grows = (
                        f"{target}()" if target is not None
                        else f"a self-held collection via .{call.func.attr}()"
                    )
                    yield self.project_finding(
                        ctx.path,
                        call.lineno,
                        call.col_offset,
                        f"{owner}{fn.name}() grows {grows} with no "
                        "eviction, delete, or watermark consultation in "
                        "the method; bound it there or baseline the "
                        "growth with a reason",
                    )


def _methods(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in the module with its ``Class.`` prefix, if any."""
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield prefix, child
                stack.append((f"{prefix}{child.name}.", child))
