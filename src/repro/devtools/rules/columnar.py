"""Columnar-kernel rules (REP11xx).

The columnar tier reinterprets the packed :class:`SegmentStore` buffer as
a numpy ``uint64`` column and answers both scans with vectorized array
ops (:mod:`repro.kernels.columnar`).  A Python ``for`` loop over the
store's row buffer — ``self._masks``, a ``store`` iterator, or the
``column()`` array walked element by element — silently reintroduces the
interpreter-per-row cost the tier removed: results stay correct, only
the throughput collapses back to the scalar path.  This rule makes that
regression loud in the hot-path packages (``repro.core`` and
``repro.kernels``).

The wide-vocabulary fallback is the legitimate exception: masks past 64
letters are Python ints that no numpy column can hold, so those loops
carry ``# repro: ignore[REP1101] -- <why>`` suppressions at the loop
line.  Everything else should go through the store's vectorized
methods (``letter_counts`` / ``distinct_counts`` / ``hit_counter`` /
``count_masks``) or the helpers in :mod:`repro.kernels.columnar`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: Packages whose mask loops are hot paths (the scan kernels and the
#: algorithm layer that drives them).
SCOPED_PACKAGES = ("repro.core", "repro.kernels")

#: Attribute names that identify the store's row buffer when iterated.
ROW_BUFFER_ATTRS = frozenset({"_masks"})

#: Zero-argument methods returning the full row column; iterating their
#: result element-wise is the same scalar regression.
ROW_COLUMN_CALLS = frozenset({"column"})


def _names_row_buffer(expr: ast.expr) -> ast.expr | None:
    """The sub-expression that walks store rows, if the iterable has one.

    Matches ``self._masks`` (and any ``<obj>._masks``) anywhere inside the
    iterable — including wrapped forms such as ``enumerate(self._masks)``
    — and calls of ``<obj>.column()``, whose ndarray result iterates one
    Python scalar per row.
    """
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in ROW_BUFFER_ATTRS
        ):
            return node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ROW_COLUMN_CALLS
            and not node.args
            and not node.keywords
        ):
            return node
    return None


@register
class SegmentRowLoopRule(Rule):
    """REP1101: Python loop over the segment store's row buffer."""

    id = "REP1101"
    name = "segment-row-loop"
    severity = Severity.ERROR
    rationale = (
        "Iterating the SegmentStore row buffer (_masks / column()) in "
        "Python costs one interpreter round-trip per segment; the "
        "columnar kernels answer whole scans as vectorized numpy ops "
        "(SegmentStore.letter_counts / distinct_counts / hit_counter / "
        "count_masks). Only the wide-vocabulary fallback, whose masks "
        "exceed 64 bits, may loop — with a suppression stating so."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not any(ctx.in_package(pkg) for pkg in SCOPED_PACKAGES):
            return
        seen: set[tuple[int, int]] = set()
        iterables: list[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            hit = _names_row_buffer(iterable)
            if hit is None:
                continue
            # Anchor at the iterable itself so the suppression comment
            # sits on the `for ... in <buffer>` line, next to the loop
            # it excuses.
            where = (iterable.lineno, iterable.col_offset)
            if where in seen:
                continue
            seen.add(where)
            yield self.finding(
                ctx,
                iterable.lineno,
                iterable.col_offset,
                "Python loop over the segment-store row buffer; use the "
                "store's vectorized scan methods (letter_counts / "
                "distinct_counts / hit_counter / count_masks) or the "
                "repro.kernels.columnar helpers instead of walking rows "
                "one interpreter iteration at a time",
            )
