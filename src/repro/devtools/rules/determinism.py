"""Determinism rule (REP3xx): no unseeded randomness in library code.

The repository's experiments (EXPERIMENTS.md) and the randomized
equivalence suites only mean something when the library itself is a pure
function of its inputs.  All sanctioned randomness lives in
``repro.synth`` behind explicit seeds and ``numpy.random.Generator``
plumbing; everywhere else, a module-level ``random.random()`` or
``np.random.shuffle()`` draws from hidden global state and destroys
reproducibility across runs and across worker processes (each forked
worker would inherit, then diverge from, the parent's RNG state).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.context import ModuleContext, dotted_name
from repro.devtools.effects import (
    NUMPY_ALLOWED,
    STDLIB_ALLOWED,
    Effect,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import ProjectRule, Rule, register

if TYPE_CHECKING:
    from repro.devtools.project import ProjectContext

#: Packages whose results must be a pure function of their inputs: the
#: counting/merge paths whose outputs the equivalence suites compare.
DETERMINISTIC_PACKAGES = ("repro.core", "repro.tree", "repro.kernels")


class _RandomImports:
    """Aliases under which the random modules are visible in one file."""

    def __init__(self, tree: ast.Module):
        self.stdlib: set[str] = set()
        self.numpy: set[str] = set()
        self.numpy_random: set[str] = set()
        self.bad_from_imports: list[tuple[int, int, str, str]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.stdlib.add(bound)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random.add(alias.asname)
                        else:
                            self.numpy.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in STDLIB_ALLOWED:
                            self.bad_from_imports.append(
                                (node.lineno, node.col_offset, "random", alias.name)
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in NUMPY_ALLOWED:
                            self.bad_from_imports.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    "numpy.random",
                                    alias.name,
                                )
                            )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or "random")


@register
class UnseededRandomRule(Rule):
    """REP301: module-level RNG calls without explicit seed plumbing."""

    id = "REP301"
    name = "unseeded-random"
    severity = Severity.ERROR
    rationale = (
        "Mining results, synthetic benchmarks, and the randomized "
        "equivalence suite must be reproducible from explicit seeds; "
        "global-state RNG calls (random.random, np.random.shuffle) make "
        "results run- and worker-dependent.  Construct a seeded "
        "random.Random or numpy Generator (default_rng(seed)) and pass it "
        "explicitly.  Sanctioned randomness lives in repro.synth."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") or ctx.in_package("repro.synth"):
            return
        imports = _RandomImports(ctx.tree)
        for lineno, col, module, name in imports.bad_from_imports:
            yield self.finding(
                ctx,
                lineno,
                col,
                f"'from {module} import {name}' pulls global-state "
                "randomness into library code; use an explicitly seeded "
                "Random/Generator instead",
            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_name(node.func)
            if path is None:
                continue
            parts = path.split(".")
            if (
                len(parts) == 2
                and parts[0] in imports.stdlib
                and parts[1] not in STDLIB_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"unseeded stdlib random call {path}(); use an "
                    "explicitly seeded random.Random instance",
                )
            elif (
                len(parts) == 3
                and parts[0] in imports.numpy
                and parts[1] == "random"
                and parts[2] not in NUMPY_ALLOWED
            ) or (
                len(parts) == 2
                and parts[0] in imports.numpy_random
                and parts[1] not in NUMPY_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"legacy global numpy random call {path}(); use "
                    "numpy.random.default_rng(seed) and pass the Generator "
                    "explicitly",
                )


@register
class TransitiveNondeterminismRule(ProjectRule):
    """REP311: a counting/merge-path function transitively reaches
    nondeterminism.

    The deep form of REP301: the mined output depends on a wall-clock
    read, a uuid draw, or global-state randomness buried behind one or
    more call edges.  Unseeded ``random``/``numpy.random`` calls written
    *directly* in a scoped module stay REP301's (syntactic) territory;
    this rule reports the point where nondeterminism *enters* the scoped
    packages — a direct non-random source such as ``time.time()``, or a
    call into a function outside ``repro.core``/``repro.tree``/
    ``repro.kernels`` that carries the effect.
    """

    id = "REP311"
    name = "transitive-nondeterminism"
    severity = Severity.ERROR
    rationale = (
        "The equivalence suites compare mined outputs bit-for-bit across "
        "kernels and runs; a wall-clock read or hidden-global RNG draw "
        "two helpers below a counting loop makes results run-dependent "
        "in ways no per-module scan can see. Thread explicit seeds/"
        "timestamps through parameters, or declare a verified boundary "
        "with '# repro: effect[...] -- reason'."
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        inference = project.inference
        for fn in project.graph.functions.values():
            if not _in_scope(fn.module):
                continue
            effects = inference.effects_of(fn.key)
            if not Effect.NONDETERMINISTIC & effects:
                continue
            origin = inference.origin_of(fn.key, Effect.NONDETERMINISTIC)
            if origin is None or origin.annotated:
                continue
            if origin.callee is None:
                if origin.rep301_covered:
                    # Direct unseeded randomness: REP301 reports it with
                    # the precise syntactic diagnosis.
                    continue
                yield self.project_finding(
                    fn.path,
                    origin.line,
                    fn.node.col_offset,
                    f"{fn.display}() on the counting/merge path calls "
                    f"{origin.source}; thread the value in as an explicit "
                    "parameter so mined output stays a pure function of "
                    "its inputs",
                )
                continue
            callee = project.graph.functions.get(origin.callee)
            if callee is not None and _in_scope(callee.module):
                # The effect enters the scope deeper down; the callee
                # carries its own finding (or REP301 already does).
                continue
            names, source = inference.chain(fn.key, Effect.NONDETERMINISTIC)
            yield self.project_finding(
                fn.path,
                origin.line,
                fn.node.col_offset,
                f"{fn.display}() on the counting/merge path transitively "
                f"reaches nondeterminism: {' -> '.join(names)} -> {source}; "
                "pass seeds/timestamps explicitly or declare a verified "
                "boundary with '# repro: effect[...] -- reason'",
            )


def _in_scope(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in DETERMINISTIC_PACKAGES
    )
