"""Determinism rule (REP3xx): no unseeded randomness in library code.

The repository's experiments (EXPERIMENTS.md) and the randomized
equivalence suites only mean something when the library itself is a pure
function of its inputs.  All sanctioned randomness lives in
``repro.synth`` behind explicit seeds and ``numpy.random.Generator``
plumbing; everywhere else, a module-level ``random.random()`` or
``np.random.shuffle()`` draws from hidden global state and destroys
reproducibility across runs and across worker processes (each forked
worker would inherit, then diverge from, the parent's RNG state).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import ModuleContext, dotted_name
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import Rule, register

#: stdlib ``random`` attributes that construct explicitly-seeded state.
STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct explicitly-seeded state.
NUMPY_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    }
)


class _RandomImports:
    """Aliases under which the random modules are visible in one file."""

    def __init__(self, tree: ast.Module):
        self.stdlib: set[str] = set()
        self.numpy: set[str] = set()
        self.numpy_random: set[str] = set()
        self.bad_from_imports: list[tuple[int, int, str, str]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.stdlib.add(bound)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random.add(alias.asname)
                        else:
                            self.numpy.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in STDLIB_ALLOWED:
                            self.bad_from_imports.append(
                                (node.lineno, node.col_offset, "random", alias.name)
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in NUMPY_ALLOWED:
                            self.bad_from_imports.append(
                                (
                                    node.lineno,
                                    node.col_offset,
                                    "numpy.random",
                                    alias.name,
                                )
                            )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or "random")


@register
class UnseededRandomRule(Rule):
    """REP301: module-level RNG calls without explicit seed plumbing."""

    id = "REP301"
    name = "unseeded-random"
    severity = Severity.ERROR
    rationale = (
        "Mining results, synthetic benchmarks, and the randomized "
        "equivalence suite must be reproducible from explicit seeds; "
        "global-state RNG calls (random.random, np.random.shuffle) make "
        "results run- and worker-dependent.  Construct a seeded "
        "random.Random or numpy Generator (default_rng(seed)) and pass it "
        "explicitly.  Sanctioned randomness lives in repro.synth."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") or ctx.in_package("repro.synth"):
            return
        imports = _RandomImports(ctx.tree)
        for lineno, col, module, name in imports.bad_from_imports:
            yield self.finding(
                ctx,
                lineno,
                col,
                f"'from {module} import {name}' pulls global-state "
                "randomness into library code; use an explicitly seeded "
                "Random/Generator instead",
            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_name(node.func)
            if path is None:
                continue
            parts = path.split(".")
            if (
                len(parts) == 2
                and parts[0] in imports.stdlib
                and parts[1] not in STDLIB_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"unseeded stdlib random call {path}(); use an "
                    "explicitly seeded random.Random instance",
                )
            elif (
                len(parts) == 3
                and parts[0] in imports.numpy
                and parts[1] == "random"
                and parts[2] not in NUMPY_ALLOWED
            ) or (
                len(parts) == 2
                and parts[0] in imports.numpy_random
                and parts[1] not in NUMPY_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"legacy global numpy random call {path}(); use "
                    "numpy.random.default_rng(seed) and pass the Generator "
                    "explicitly",
                )
