"""A crash-safe streaming run: kill it anywhere, resume it exactly.

:class:`DurableStream` composes the pieces into the headline guarantee:
a stream killed at an arbitrary instant and resumed from its checkpoint
directory emits *exactly* the window sequence an uninterrupted run would
have — same windows, same patterns, same change diffs, byte for byte.

The mechanics are write-ahead ordering end to end.  Every input record is
appended to the WAL (flushed) before it touches the miner, so the applied
state never gets ahead of the log; snapshots capture the applied state and
are atomic and checksummed, so recovery always finds a consistent base;
and the optional :class:`DurableSink` makes emission itself exactly-once —
on resume it counts the complete output lines already on disk, truncates a
torn tail, and suppresses replayed windows below that watermark while the
WAL replay regenerates them.

Event-time streams checkpoint the arrival buffer too (open slots,
watermark, quarantine report), so out-of-order events buffered across the
kill point land in their slots identically on resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.errors import DurabilityError
from repro.durability.checkpoint import RecoveredState, StreamCheckpointer
from repro.streaming.buffer import ArrivalBuffer
from repro.streaming.engine import StreamingMiner
from repro.streaming.windows import WindowResult, window_to_dict

if TYPE_CHECKING:
    from repro.resilience.chaos import FileChaos

#: Snapshot kind tag for durable stream state.
STREAM_KIND = "repro.stream/1"

#: Default records between snapshots.
DEFAULT_CHECKPOINT_EVERY = 64


class DurableSink:
    """Exactly-once JSONL output: torn-tail truncation plus suppression.

    On open, the sink counts the complete (newline-terminated) lines
    already in the file and truncates anything after the last newline — a
    torn final line from a kill mid-write.  Windows are emitted by global
    index: indices below the recovered line count are already durable and
    are silently suppressed when WAL replay regenerates them.
    """

    __slots__ = ("path", "_handle", "emitted", "suppressed", "truncated")

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.emitted = 0
        self.suppressed = 0
        #: Bytes of torn tail removed at open.
        self.truncated = 0
        if self.path.exists():
            raw = self.path.read_bytes()
            cut = raw.rfind(b"\n") + 1
            if cut < len(raw):
                self.truncated = len(raw) - cut
                with self.path.open("r+b") as handle:
                    handle.truncate(cut)
            self.emitted = raw[:cut].count(b"\n")
        self._handle = self.path.open("a", encoding="utf-8")

    def emit(self, index: int, line: str) -> bool:
        """Write one window line unless it is already durable."""
        if index < self.emitted:
            self.suppressed += 1
            return False
        if index > self.emitted:
            raise DurabilityError(
                f"{self.path}: window {index} arrived but only "
                f"{self.emitted} lines are durable — output and WAL "
                "disagree"
            )
        self._handle.write(line + "\n")
        self._handle.flush()
        self.emitted += 1
        return True

    def sync(self) -> None:
        """fsync the output file (called before every snapshot, so a
        snapshot never claims windows the sink could still lose)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __repr__(self) -> str:
        return (
            f"DurableSink({str(self.path)!r}, emitted={self.emitted}, "
            f"suppressed={self.suppressed})"
        )


class DurableStream:
    """A checkpointed streaming miner with exact kill/resume semantics.

    Construction *is* recovery: if the directory holds prior state, the
    miner (and arrival buffer, in event mode) is restored from the newest
    valid snapshot and the WAL tail is replayed through it; windows the
    replay regenerates go to the sink, which suppresses the ones already
    durable.  ``recovery`` reports what happened; ``replayed_windows``
    holds windows regenerated without a sink to absorb them (the caller
    decides whether to re-print — at-least-once without ``out``).

    Parameters mirror ``ppm stream``; ``checkpoint_every`` is in input
    records.  The stream parameters are persisted and must match on
    resume — a mismatch raises :class:`DurabilityError` rather than
    resuming into a different computation.
    """

    __slots__ = (
        "_config",
        "_ckpt",
        "_sink",
        "_miner",
        "_buffer",
        "_events",
        "_checkpoint_every",
        "_since_snapshot",
        "recovery",
        "replayed_windows",
        "_finished",
    )

    def __init__(
        self,
        directory: str | Path,
        *,
        period: int,
        window: int,
        slide: int | None = None,
        min_conf: float = 0.5,
        strategy: str = "decrement",
        max_letters: int | None = None,
        tolerance: float = 0.05,
        events: bool = False,
        slot_width: float = 1.0,
        origin: float = 0.0,
        lateness: float = 0.0,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        keep: int = 2,
        out: str | Path | None = None,
        chaos: "FileChaos | None" = None,
    ):
        if checkpoint_every < 1:
            raise DurabilityError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._config: dict[str, Any] = {
            "period": period,
            "window": window,
            "slide": window if slide is None else slide,
            "min_conf": min_conf,
            "strategy": strategy,
            "max_letters": max_letters,
            "tolerance": tolerance,
            "events": events,
            "slot_width": slot_width,
            "origin": origin,
            "lateness": lateness,
        }
        self._events = events
        self._checkpoint_every = checkpoint_every
        self._since_snapshot = 0
        self._finished = False
        self.replayed_windows: list[WindowResult] = []
        self._ckpt = StreamCheckpointer(
            directory, kind=STREAM_KIND, keep=keep, chaos=chaos
        )
        self._sink = None if out is None else DurableSink(out)
        recovered = self._ckpt.recover()
        self.recovery: RecoveredState | None = recovered
        if recovered is not None and recovered.state is not None:
            stored = recovered.state.get("config")
            if stored != self._config:
                raise DurabilityError(
                    f"{directory}: checkpoint was recorded with different "
                    f"stream parameters ({stored!r}); refusing to resume "
                    "into a different computation"
                )
            self._miner = StreamingMiner.from_state(recovered.state["miner"])
            buffer_state = recovered.state.get("buffer")
            self._buffer = (
                None
                if buffer_state is None
                else ArrivalBuffer.from_state(buffer_state)
            )
        else:
            self._miner = self._fresh_miner()
            self._buffer = self._fresh_buffer()
        if recovered is not None:
            for record in recovered.tail:
                self._dispatch(self._apply(record), replay=True)

    def _fresh_miner(self) -> StreamingMiner:
        config = self._config
        return StreamingMiner(
            period=int(config["period"]),
            window=int(config["window"]),
            slide=int(config["slide"]),
            min_conf=float(config["min_conf"]),
            retirement=str(config["strategy"]),
            max_letters=(
                None
                if config["max_letters"] is None
                else int(config["max_letters"])
            ),
            change_tolerance=float(config["tolerance"]),
        )

    def _fresh_buffer(self) -> ArrivalBuffer | None:
        if not self._events:
            return None
        config = self._config
        return ArrivalBuffer(
            slot_width=float(config["slot_width"]),
            start=float(config["origin"]),
            lateness=float(config["lateness"]),
        )

    # -- accessors -------------------------------------------------------

    @property
    def miner(self) -> StreamingMiner:
        return self._miner

    @property
    def buffer(self) -> ArrivalBuffer | None:
        return self._buffer

    @property
    def sink(self) -> DurableSink | None:
        return self._sink

    @property
    def resumed(self) -> bool:
        """True when construction restored prior durable state."""
        return self.recovery is not None

    @property
    def records_logged(self) -> int:
        """Input records durably logged so far — on resume, the caller
        skips this many records of a replayable feed before feeding."""
        return self._ckpt.next_index

    @property
    def checkpoint_lag(self) -> int:
        """Records applied since the last snapshot (WAL replay debt)."""
        return self._since_snapshot

    # -- the feed path ---------------------------------------------------

    def feed(self, record: Any) -> list[WindowResult]:
        """Log one input record, apply it, maybe snapshot.

        Slot mode: ``record`` is the slot's feature list.  Event mode:
        ``record`` is ``[time, [feature, ...]]``.  Returns the windows
        the record closed (already written to the sink, when one is
        configured).
        """
        if self._finished:
            raise DurabilityError("stream is finished; cannot feed")
        self._ckpt.append(record)
        windows = self._apply(record)
        self._dispatch(windows, replay=False)
        self._since_snapshot += 1
        if self._since_snapshot >= self._checkpoint_every:
            self.checkpoint()
        return windows

    def _apply(self, record: Any) -> list[WindowResult]:
        if self._events:
            if self._buffer is None:  # pragma: no cover - construction bug
                raise DurabilityError("event stream without a buffer")
            when = float(record[0])
            for feature in record[1]:
                self._buffer.add(when, str(feature))
            return self._miner.extend(self._buffer.drain())
        window = self._miner.append(
            frozenset(str(feature) for feature in record)
        )
        return [] if window is None else [window]

    def _dispatch(
        self, windows: list[WindowResult], replay: bool
    ) -> None:
        for window in windows:
            if self._sink is not None:
                self._sink.emit(
                    window.index, json.dumps(window_to_dict(window))
                )
            elif replay:
                self.replayed_windows.append(window)

    def checkpoint(self) -> None:
        """Snapshot the applied state now (also rotates and prunes)."""
        if self._sink is not None:
            self._sink.sync()
        self._ckpt.snapshot(
            {
                "config": self._config,
                "miner": self._miner.to_state(),
                "buffer": (
                    None if self._buffer is None else self._buffer.to_state()
                ),
            }
        )
        self._since_snapshot = 0

    def finish(self) -> list[WindowResult]:
        """End of stream: flush the buffer, final snapshot, close.

        Event mode seals and mines everything still buffered; the closing
        windows go through the same sink path.  Returns them.
        """
        if self._finished:
            return []
        windows: list[WindowResult] = []
        if self._buffer is not None:
            # The flush itself is not WAL-logged (it is not an input) —
            # but its effect is captured by the final snapshot below, and
            # a kill before that snapshot replays the same flush on the
            # next finish().
            windows = self._miner.extend(self._buffer.flush())
            self._dispatch(windows, replay=False)
        self.checkpoint()
        self.close()
        return windows

    def close(self) -> None:
        """Release file handles without a final flush (kill-safe state)."""
        self._finished = True
        self._ckpt.close()
        if self._sink is not None:
            self._sink.close()

    def stats(self) -> dict[str, Any]:
        """JSON-ready durability stats for ``/stats`` and the CLI."""
        return {
            "records_logged": self.records_logged,
            "checkpoint_lag": self._since_snapshot,
            "checkpoint_every": self._checkpoint_every,
            "resumed": self.resumed,
            "recovery": (
                None if self.recovery is None else self.recovery.describe()
            ),
            "out_emitted": (
                None if self._sink is None else self._sink.emitted
            ),
            "out_suppressed": (
                None if self._sink is None else self._sink.suppressed
            ),
        }

    def __repr__(self) -> str:
        return (
            f"DurableStream(records={self.records_logged}, "
            f"lag={self._since_snapshot}, resumed={self.resumed})"
        )
