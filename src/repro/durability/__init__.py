"""Durable checkpoint/recovery for streams and serve sessions.

Three layers, each usable alone:

- :mod:`repro.durability.snapshot` — atomic, checksummed, versioned state
  files (write-temp + fsync + rename; CRC32 footer).
- :mod:`repro.durability.checkpoint` — :class:`StreamCheckpointer`: a
  write-ahead log of input records plus rotating snapshots, with a
  corruption fallback ladder at recovery.
- :mod:`repro.durability.stream` — :class:`DurableStream`: the
  checkpointer wrapped around a :class:`~repro.streaming.StreamingMiner`
  (and optional arrival buffer), guaranteeing a killed-and-resumed run
  emits the identical window sequence as an uninterrupted one.
"""

from repro.core.errors import DurabilityError, SnapshotCorruption
from repro.durability.checkpoint import RecoveredState, StreamCheckpointer
from repro.durability.snapshot import (
    ENVELOPE_VERSION,
    FORMAT_TAG,
    SnapshotWriter,
    clean_stale_tmp,
    read_snapshot,
    snapshot_bytes,
)
from repro.durability.stream import DurableSink, DurableStream

__all__ = [
    "DurabilityError",
    "DurableSink",
    "DurableStream",
    "ENVELOPE_VERSION",
    "FORMAT_TAG",
    "RecoveredState",
    "SnapshotCorruption",
    "SnapshotWriter",
    "StreamCheckpointer",
    "clean_stale_tmp",
    "read_snapshot",
    "snapshot_bytes",
]
