"""Atomic, checksummed, versioned snapshot files.

Every durable state file in the package goes through one writer so the
crash-safety argument is made once: content is written to a unique
temporary file in the target directory, flushed and fsynced, then renamed
over the final path (atomic on POSIX), and the directory entry is fsynced
so the rename itself survives a power cut.  A reader therefore sees either
the old snapshot or the new one — never a half-written hybrid — and any
interrupted write leaves only a stale ``*.tmp*`` file that
:func:`clean_stale_tmp` sweeps on the next startup.

Within the file, corruption is *detectable*: the layout is three JSONL
lines —

1. a header ``{"format": "repro.snapshot/1", "kind": ..., "version": N}``,
2. the payload object,
3. a footer ``{"crc32": ..., "length": ...}`` over the first two lines'
   exact bytes

— so truncation (missing footer), torn writes (CRC mismatch), and foreign
files (bad header) all raise :class:`~repro.core.errors.SnapshotCorruption`,
which recovery treats as "fall back to the previous snapshot", never as
silently-wrong state.

Fault injection: a :class:`~repro.resilience.chaos.FileChaos` cursor passed
to :class:`SnapshotWriter` deterministically injects torn writes, footer
truncation, and stale-tmp crashes — the failure modes the recovery ladder
must absorb, exercised by the durability chaos suite.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.errors import DurabilityError, SnapshotCorruption

if TYPE_CHECKING:
    from repro.resilience.chaos import FileChaos

#: Format tag written into every snapshot header.
FORMAT_TAG = "repro.snapshot/1"

#: Current schema version of the snapshot *envelope* (header + footer).
#: Payload schemas carry their own ``kind``-specific versioning.
ENVELOPE_VERSION = 1


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so a completed rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def snapshot_bytes(kind: str, payload: Any, version: int = 1) -> bytes:
    """The full serialized form of one snapshot (header, payload, footer)."""
    header = json.dumps(
        {"format": FORMAT_TAG, "kind": kind, "version": version},
        separators=(",", ":"),
    )
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    content = (header + "\n" + body + "\n").encode("utf-8")
    footer = json.dumps(
        {"crc32": zlib.crc32(content), "length": len(content)},
        separators=(",", ":"),
    )
    return content + footer.encode("utf-8") + b"\n"


class SnapshotWriter:
    """Atomic writes of checksummed snapshots into one directory.

    Parameters
    ----------
    directory:
        Target directory; created if missing.
    chaos:
        Optional :class:`~repro.resilience.chaos.FileChaos` fault cursor.
        When a scheduled fault fires, the write is deliberately damaged
        (torn bytes, missing footer, or an un-renamed tmp file) instead
        of completed — the recovery ladder's test harness.
    """

    __slots__ = ("directory", "chaos", "_sequence")

    def __init__(self, directory: str | Path, chaos: "FileChaos | None" = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chaos = chaos
        #: Per-writer counter making concurrent tmp names unique.
        self._sequence = 0

    def write(
        self, name: str, kind: str, payload: Any, version: int = 1
    ) -> Path:
        """Atomically publish one snapshot at ``directory/name``.

        Returns the final path.  On an injected fault the final state is
        deliberately one of the crash outcomes (torn file, truncated
        file, or stale tmp with no rename); callers never observe an
        exception — exactly like a real kill.
        """
        final = self.directory / name
        data = snapshot_bytes(kind, payload, version=version)
        fault = None if self.chaos is None else self.chaos.next_fault()
        if fault == "torn":
            # Cut mid-payload at the final path: what a non-atomic writer
            # (or a lost journal) leaves behind.
            final.write_bytes(data[: max(1, int(len(data) * 0.6))])
            return final
        if fault == "truncate":
            # Drop the footer line: metadata-only truncation.
            final.write_bytes(data[: data.rstrip(b"\n").rfind(b"\n") + 1])
            return final
        self._sequence += 1
        tmp = self.directory / (
            f"{name}.tmp.{os.getpid()}.{self._sequence}"
        )
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if fault == "stale-tmp":
            # Crash in the write→rename gap: tmp exists, snapshot does not.
            return final
        os.replace(tmp, final)
        _fsync_directory(self.directory)
        return final


def read_snapshot(
    path: str | Path, kind: str | None = None
) -> dict[str, Any]:
    """Validate and load one snapshot, returning its payload.

    Raises :class:`SnapshotCorruption` for anything that reads as damage
    (missing file counts: a snapshot that vanished mid-crash is the same
    recovery case as one that tore), and :class:`DurabilityError` for
    files that are *valid* but of the wrong kind — that is a caller bug,
    not corruption, and falling back would mask it.
    """
    source = Path(path)
    try:
        raw = source.read_bytes()
    except OSError as error:
        raise SnapshotCorruption(f"{source}: unreadable: {error}") from error
    lines = raw.split(b"\n")
    if len(lines) < 4 or lines[3] != b"" or lines[-1] != b"":
        raise SnapshotCorruption(
            f"{source}: truncated snapshot ({len(raw)} bytes)"
        )
    header_line, body_line, footer_line = lines[0], lines[1], lines[2]
    try:
        footer = json.loads(footer_line)
    except json.JSONDecodeError as error:
        raise SnapshotCorruption(
            f"{source}: unparseable footer: {error}"
        ) from error
    content = header_line + b"\n" + body_line + b"\n"
    if footer.get("length") != len(content):
        raise SnapshotCorruption(
            f"{source}: length mismatch (footer says "
            f"{footer.get('length')}, content is {len(content)} bytes)"
        )
    if footer.get("crc32") != zlib.crc32(content):
        raise SnapshotCorruption(f"{source}: checksum mismatch")
    try:
        header = json.loads(header_line)
        payload = json.loads(body_line)
    except json.JSONDecodeError as error:
        raise SnapshotCorruption(
            f"{source}: unparseable content behind a valid checksum: {error}"
        ) from error
    if header.get("format") != FORMAT_TAG:
        raise SnapshotCorruption(
            f"{source}: not a snapshot (format {header.get('format')!r})"
        )
    if int(header.get("version", 0)) > ENVELOPE_VERSION:
        raise DurabilityError(
            f"{source}: snapshot version {header.get('version')} is newer "
            f"than this reader understands ({ENVELOPE_VERSION}); upgrade "
            "before resuming"
        )
    if kind is not None and header.get("kind") != kind:
        raise DurabilityError(
            f"{source}: snapshot kind {header.get('kind')!r} does not "
            f"match the expected {kind!r}"
        )
    if not isinstance(payload, dict):
        raise SnapshotCorruption(
            f"{source}: snapshot payload must be a JSON object"
        )
    return payload


def clean_stale_tmp(directory: str | Path) -> list[Path]:
    """Remove leftover ``*.tmp*`` files from interrupted writes.

    Returns what was removed so callers can log the sweep.  Stale tmps
    are pure garbage by construction: a tmp file only outlives its
    writer when the process died before the rename, and the snapshot it
    was going to replace is still the latest valid one.
    """
    removed = []
    base = Path(directory)
    if not base.is_dir():
        return removed
    for entry in sorted(base.iterdir()):
        if ".tmp." in entry.name and entry.is_file():
            try:
                entry.unlink()
            except OSError:
                continue
            removed.append(entry)
    return removed
