"""Crash-safe stream checkpointing: snapshots plus a write-ahead log.

One :class:`StreamCheckpointer` owns a directory with two kinds of files:

``snapshot-<index>.json``
    A full state snapshot (via :mod:`repro.durability.snapshot`, so atomic
    and checksummed) taken when the stream had consumed exactly ``index``
    records.  The payload wraps the caller's state with that watermark:
    ``{"records_consumed": index, "state": {...}}``.

``wal-<index>.jsonl``
    A write-ahead log segment whose first record has global index
    ``index``.  Every input record is appended *before* it is applied, as
    ``{"i": n, "r": <record>}`` — one flushed line each — so a kill at any
    instant loses at most the in-flight record, never an applied one.

The protocol is the classic one: log the record, apply it, and every
``snapshot()`` call captures the applied state, rotates the WAL, and
prunes.  Recovery (:meth:`recover`) walks the fallback ladder:

1. sweep stale ``*.tmp*`` files from interrupted snapshot publishes;
2. load the newest snapshot that validates, skipping corrupt ones — each
   skip just means a longer WAL replay from an older snapshot;
3. replay every WAL record with ``i >= records_consumed`` in order,
   truncating a torn trailing line of the active segment (the one write
   a kill can tear);
4. if *no* snapshot validates but the WAL still reaches back to record 0,
   replay everything from scratch.

Replay is idempotent by construction — records below the snapshot's
watermark are skipped by index, so it does not matter whether the crash
landed before or after a WAL rotation.  A genuine gap in the record
indices (which the retention policy never creates) fails loudly with
:class:`~repro.core.errors.DurabilityError` rather than resuming wrong.

Retention keeps the newest ``keep`` snapshots *and* extends older until at
least one of the kept ones validates, then drops WAL segments that only
cover records below the oldest kept valid snapshot.  Chaos-damaged
snapshots therefore never strand the directory: the WAL needed to recover
past them is retained precisely because they fail validation at prune
time.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.core.errors import DurabilityError, SnapshotCorruption
from repro.durability.snapshot import (
    SnapshotWriter,
    clean_stale_tmp,
    read_snapshot,
)

if TYPE_CHECKING:
    from repro.resilience.chaos import FileChaos

#: Zero-padded width of the record index embedded in file names.
_INDEX_WIDTH = 12

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{%d})\.json$" % _INDEX_WIDTH)
_WAL_RE = re.compile(r"^wal-(\d{%d})\.jsonl$" % _INDEX_WIDTH)


def _snapshot_name(index: int) -> str:
    return f"snapshot-{index:0{_INDEX_WIDTH}d}.json"


def _wal_name(index: int) -> str:
    return f"wal-{index:0{_INDEX_WIDTH}d}.jsonl"


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`StreamCheckpointer.recover` reassembled.

    ``state`` is the caller payload of the newest valid snapshot, or
    ``None`` when recovery replayed the whole WAL from record 0 (either
    no snapshot existed yet, or every one was corrupt but the log was
    complete).  ``tail`` holds the WAL records the caller must re-apply,
    in order, starting at global index ``records_consumed``.
    """

    state: dict[str, Any] | None
    records_consumed: int
    tail: list[Any] = field(default_factory=list)
    #: Corrupt snapshots skipped on the way down the ladder.
    snapshots_skipped: int = 0
    #: Torn trailing WAL records truncated away.
    torn_wal_records: int = 0
    #: Stale ``*.tmp*`` files swept from interrupted publishes.
    stale_tmp_removed: int = 0

    @property
    def replayed(self) -> int:
        """Records the caller will re-apply."""
        return len(self.tail)

    def describe(self) -> str:
        """One log line summarizing the recovery."""
        origin = (
            "from scratch (no valid snapshot)"
            if self.state is None and self.records_consumed == 0
            else f"from snapshot at record {self.records_consumed}"
        )
        extras = []
        if self.snapshots_skipped:
            extras.append(f"{self.snapshots_skipped} corrupt snapshot(s)")
        if self.torn_wal_records:
            extras.append(f"{self.torn_wal_records} torn WAL record(s)")
        if self.stale_tmp_removed:
            extras.append(f"{self.stale_tmp_removed} stale tmp file(s)")
        suffix = f" (swept {', '.join(extras)})" if extras else ""
        return (
            f"recovered {origin}, replaying {self.replayed} WAL "
            f"record(s){suffix}"
        )


class StreamCheckpointer:
    """Write-ahead logging and snapshot rotation for one stream.

    Parameters
    ----------
    directory:
        The checkpoint directory; created if missing.  One stream per
        directory — the WAL indices are a single global sequence.
    kind:
        Snapshot kind tag; a directory written for a different kind is
        rejected at recovery (caller bug, not corruption).
    keep:
        Snapshots retained after each rotation (at least 1; older ones
        are kept anyway while none of the newest ``keep`` validate).
    chaos:
        Optional :class:`~repro.resilience.chaos.FileChaos` cursor; its
        faults hit snapshot publishes, which is exactly what the
        recovery ladder exists to absorb.
    """

    __slots__ = (
        "directory",
        "_kind",
        "_keep",
        "_writer",
        "_handle",
        "_next_index",
        "_last_snapshot_index",
        "_recovered",
    )

    def __init__(
        self,
        directory: str | Path,
        kind: str,
        keep: int = 2,
        chaos: "FileChaos | None" = None,
    ):
        if keep < 1:
            raise DurabilityError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self._kind = kind
        self._keep = keep
        self._writer = SnapshotWriter(self.directory, chaos=chaos)
        self._handle: IO[str] | None = None
        self._next_index = 0
        self._last_snapshot_index = -1
        self._recovered = False

    # -- directory scan --------------------------------------------------

    def _scan(self, pattern: re.Pattern[str]) -> list[tuple[int, Path]]:
        found = []
        for entry in self.directory.iterdir():
            match = pattern.match(entry.name)
            if match is not None and entry.is_file():
                found.append((int(match.group(1)), entry))
        found.sort()
        return found

    # -- recovery --------------------------------------------------------

    def recover(self) -> RecoveredState | None:
        """Reassemble the latest durable state; ``None`` on a fresh dir.

        Must be called exactly once, before any :meth:`append` — it also
        opens (or creates) the active WAL segment.
        """
        if self._recovered:
            raise DurabilityError("recover() may only be called once")
        self._recovered = True
        removed = clean_stale_tmp(self.directory)
        snapshots = self._scan(_SNAPSHOT_RE)
        segments = self._scan(_WAL_RE)

        state: dict[str, Any] | None = None
        consumed = 0
        skipped = 0
        for index, path in reversed(snapshots):
            try:
                payload = read_snapshot(path, kind=self._kind)
                consumed = int(payload["records_consumed"])
                raw_state = payload["state"]
                if not isinstance(raw_state, dict):
                    raise SnapshotCorruption(
                        f"{path}: snapshot state must be a JSON object"
                    )
                state = raw_state
                self._last_snapshot_index = index
                break
            except (SnapshotCorruption, KeyError, ValueError):
                skipped += 1
                continue
        if state is None and snapshots:
            # Every snapshot is corrupt: the last rung is a full replay,
            # possible only while the WAL still reaches back to record 0.
            if not segments or segments[0][0] != 0:
                raise DurabilityError(
                    f"{self.directory}: no snapshot validates and the WAL "
                    f"no longer reaches record 0; cannot recover exactly"
                )

        tail, torn = self._replay_wal(segments, consumed)
        self._next_index = consumed + len(tail)

        if segments:
            active = segments[-1][1]
            self._handle = active.open("a", encoding="utf-8")
        else:
            active = self.directory / _wal_name(consumed)
            self._handle = active.open("a", encoding="utf-8")
        if not snapshots and not segments and not removed:
            return None
        return RecoveredState(
            state=state,
            records_consumed=consumed,
            tail=tail,
            snapshots_skipped=skipped,
            torn_wal_records=torn,
            stale_tmp_removed=len(removed),
        )

    def _replay_wal(
        self, segments: list[tuple[int, Path]], consumed: int
    ) -> tuple[list[Any], int]:
        """Collect WAL records from ``consumed`` on, truncating torn tails."""
        tail: list[Any] = []
        torn = 0
        expected = consumed
        for position, (_, path) in enumerate(segments):
            last_segment = position == len(segments) - 1
            raw = path.read_bytes()
            offset = 0
            chunks = raw.split(b"\n")
            for number, chunk in enumerate(chunks):
                if chunk == b"" and number == len(chunks) - 1:
                    break  # clean trailing newline
                complete = number < len(chunks) - 1
                record: dict[str, Any] | None = None
                if complete:
                    try:
                        decoded = json.loads(chunk)
                        if (
                            isinstance(decoded, dict)
                            and isinstance(decoded.get("i"), int)
                            and "r" in decoded
                        ):
                            record = decoded
                    except json.JSONDecodeError:
                        record = None
                if record is None:
                    # A torn (or never-finished) trailing write.  Only the
                    # active segment can legitimately have one; truncate it
                    # so the append path continues from a clean line.
                    if not last_segment:
                        raise DurabilityError(
                            f"{path}: unreadable WAL record mid-log "
                            f"(line {number + 1}); cannot recover exactly"
                        )
                    with path.open("r+b") as handle:
                        handle.truncate(offset)
                    torn += 1
                    break
                index = record["i"]
                if index >= consumed:
                    if index != expected:
                        raise DurabilityError(
                            f"{path}: WAL gap — expected record "
                            f"{expected}, found {index}"
                        )
                    tail.append(record["r"])
                    expected += 1
                offset += len(chunk) + 1
        return tail, torn

    # -- the append path -------------------------------------------------

    @property
    def next_index(self) -> int:
        """Global index the next appended record will get."""
        return self._next_index

    def append(self, record: Any) -> int:
        """Log one input record (flushed) and return its global index.

        Call this *before* applying the record to in-memory state — the
        write-ahead ordering is the whole crash-safety argument.
        """
        if self._handle is None:
            raise DurabilityError(
                "checkpointer is not open (call recover() first)"
            )
        line = json.dumps(
            {"i": self._next_index, "r": record},
            separators=(",", ":"),
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        self._next_index += 1
        return self._next_index - 1

    def sync(self) -> None:
        """fsync the active WAL segment (power-loss durability barrier)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    # -- snapshots -------------------------------------------------------

    def snapshot(self, state: dict[str, Any]) -> Path | None:
        """Snapshot the caller's applied state, rotate the WAL, prune.

        ``state`` must reflect exactly the records appended so far.  A
        call with no new records since the last snapshot is a no-op.
        Crash-ordering note: the snapshot publishes *before* the WAL
        rotates, and replay skips records below the snapshot's watermark
        — so a kill between the two steps merely replays nothing from
        the stale segment.
        """
        if self._handle is None:
            raise DurabilityError(
                "checkpointer is not open (call recover() first)"
            )
        if self._next_index == self._last_snapshot_index:
            return None
        self.sync()
        path = self._writer.write(
            _snapshot_name(self._next_index),
            kind=self._kind,
            payload={"records_consumed": self._next_index, "state": state},
        )
        self._last_snapshot_index = self._next_index
        self._handle.close()
        self._handle = (self.directory / _wal_name(self._next_index)).open(
            "a", encoding="utf-8"
        )
        self._prune()
        return path

    def _prune(self) -> None:
        """Apply retention: newest ``keep`` snapshots (extended older
        until one validates) plus every WAL segment still needed."""
        snapshots = self._scan(_SNAPSHOT_RE)
        kept = 0
        valid_floor: int | None = None
        cut = 0  # snapshots[:cut] get deleted
        for position in range(len(snapshots) - 1, -1, -1):
            index, path = snapshots[position]
            if kept >= self._keep and valid_floor is not None:
                break
            kept += 1
            cut = position
            if valid_floor is None:
                try:
                    read_snapshot(path, kind=self._kind)
                    valid_floor = index
                except (SnapshotCorruption, DurabilityError):
                    pass
            else:
                valid_floor = index if self._is_valid(path) else valid_floor
        for _, path in snapshots[:cut]:
            path.unlink(missing_ok=True)
        if valid_floor is None:
            return  # nothing validates: keep the whole WAL
        segments = self._scan(_WAL_RE)
        for position, (_, path) in enumerate(segments[:-1]):
            next_start = segments[position + 1][0]
            if next_start <= valid_floor:
                path.unlink(missing_ok=True)

    def _is_valid(self, path: Path) -> bool:
        try:
            read_snapshot(path, kind=self._kind)
            return True
        except (SnapshotCorruption, DurabilityError):
            return False

    def close(self) -> None:
        """Close the active WAL segment (safe to call repeatedly)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StreamCheckpointer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StreamCheckpointer({str(self.directory)!r}, "
            f"kind={self._kind!r}, next_index={self._next_index})"
        )
