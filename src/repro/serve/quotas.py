"""Per-tenant fairness: request rate limits and cache-share ledgers.

Two resources need protecting in a multi-tenant server.  The worker pool
is guarded by a classic token bucket per tenant — sustained rate plus a
burst allowance, refilled continuously on the monotonic clock.  The
shared :class:`~repro.kernels.cache.CountCache` is guarded by a
:class:`TenantCacheLedger`: every cache entry remembers which tenant's
cold mine created it, and when a tenant is at its share the *tenant's
own* least-recently-created entry is evicted before the new one is
admitted — a noisy tenant cycling through many series recycles its own
warm state instead of flushing everyone else's.

Clocks are injectable so the tests are deterministic; nothing here
sleeps (rule REP801 — the bucket refuses instead of waiting).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.errors import ServeError

if TYPE_CHECKING:
    from repro.kernels.cache import CacheKey


class TokenBucket:
    """A continuously-refilled token bucket.

    ``rate`` tokens per second accrue up to ``burst``; each admitted
    request spends one token.  A request arriving with less than one
    token available is refused immediately — callers answer 429, they do
    not queue behind the bucket.

    Examples
    --------
    >>> ticks = iter([0.0, 0.0, 0.0, 10.0])
    >>> bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: next(ticks))
    >>> [bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()]
    [True, True, False]
    >>> bucket.try_acquire()
    True
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_updated")

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServeError(f"token rate must be > 0, got {rate}")
        if burst < 1:
            raise ServeError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def try_acquire(self) -> bool:
        """Spend one token if available; never waits."""
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class TenantQuotas:
    """One token bucket per tenant, created on first sight.

    ``rate=None`` disables rate limiting entirely (every request admits);
    the per-tenant admitted/throttled tallies still accumulate so
    ``/stats`` reports per-tenant traffic either way.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ServeError(f"rate limit must be > 0, got {rate}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._throttled: dict[str, int] = {}

    def allow(self, tenant: str) -> bool:
        """Admit or throttle one request from a tenant."""
        if self.rate is None:
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = bucket
        if bucket.try_acquire():
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True
        self._throttled[tenant] = self._throttled.get(tenant, 0) + 1
        return False

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Per-tenant admitted/throttled tallies for ``/stats``."""
        tenants = sorted(set(self._admitted) | set(self._throttled))
        return {
            tenant: {
                "admitted": self._admitted.get(tenant, 0),
                "throttled": self._throttled.get(tenant, 0),
            }
            for tenant in tenants
        }


class TenantCacheLedger:
    """Who owns which count-cache entry, in creation order per tenant.

    The ledger is consulted before a cold mine: a tenant already at
    ``share`` owned entries has its own oldest entry evicted first.  The
    cache's ``on_evict`` hook calls :meth:`forget` so LRU evictions and
    explicit evictions keep the ledger exact.
    """

    def __init__(self) -> None:
        self._owners: dict[str, OrderedDict[CacheKey, None]] = {}
        self._by_key: dict[CacheKey, str] = {}

    def charge(self, tenant: str, key: "CacheKey") -> None:
        """Record that a tenant's cold mine created one cache entry."""
        previous = self._by_key.get(key)
        if previous == tenant:
            return
        if previous is not None:
            self._owners[previous].pop(key, None)
        self._by_key[key] = tenant
        self._owners.setdefault(tenant, OrderedDict())[key] = None

    def forget(self, key: "CacheKey") -> None:
        """Drop one key from the ledger (the cache's ``on_evict`` hook)."""
        tenant = self._by_key.pop(key, None)
        if tenant is not None:
            owned = self._owners.get(tenant)
            if owned is not None:
                owned.pop(key, None)

    def owner_count(self, tenant: str) -> int:
        """Entries a tenant currently owns."""
        owned = self._owners.get(tenant)
        return 0 if owned is None else len(owned)

    def oldest(self, tenant: str) -> "CacheKey | None":
        """The tenant's oldest owned key (its first eviction candidate)."""
        owned = self._owners.get(tenant)
        if not owned:
            return None
        return next(iter(owned))

    def owner_of(self, key: "CacheKey") -> str | None:
        """The tenant charged for a key, if any."""
        return self._by_key.get(key)

    def snapshot(self) -> dict[str, int]:
        """Per-tenant owned-entry counts for ``/stats``."""
        return {
            tenant: len(owned)
            for tenant, owned in sorted(self._owners.items())
            if owned
        }
