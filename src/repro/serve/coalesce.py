"""Single-flight query coalescing.

When a thousand clients ask about the same series and period at once,
only the first should pay for the scans.  :class:`SingleFlight` holds
one :class:`asyncio.Lock` per in-flight key — here the key is the
``(series fingerprint, period)`` pair, exactly the
:class:`~repro.kernels.cache.CacheKey` identity — so concurrent requests
on the same key run one at a time: the leader scans and populates the
shared :class:`~repro.kernels.cache.CountCache`, and every follower then
answers from the cache (zero scans for an equal-or-higher ``min_conf``
via the projection rule; at most one extra scan-2 for a lower one, which
widens the cached table for everyone after it).

Requests on *different* keys never contend — the lock table is per-key
and entries are dropped as soon as the last holder releases, so the
table stays as small as the in-flight set.

The coalescing is exact, not approximate: followers re-derive their own
results from the cache under their own ``min_conf``, so every client
receives byte-identical output to a direct serial mine (a tested
invariant — see ``tests/test_serve.py``).
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterator, Hashable
from contextlib import asynccontextmanager
from dataclasses import dataclass, field


@dataclass(slots=True)
class _Flight:
    """One in-flight key: its lock and how many requests reference it."""

    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    refs: int = 0


class SingleFlight:
    """Per-key serialization with coalescing statistics.

    Not thread-safe by design: it lives on the event loop, where mutation
    between awaits is already atomic.
    """

    def __init__(self) -> None:
        self._flights: dict[Hashable, _Flight] = {}
        #: Requests that found their key already in flight and waited.
        self.coalesced = 0
        #: Requests that led their key (acquired the lock without waiting).
        self.led = 0

    @asynccontextmanager
    async def hold(self, key: Hashable) -> AsyncIterator[bool]:
        """Hold the key's lock for one request.

        Yields ``True`` when this request *coalesced* — the key was
        already in flight, so by the time the lock is ours the leader has
        finished and the cache is warm.  Callers use the flag to re-check
        their fast paths before doing any work.
        """
        flight = self._flights.get(key)
        if flight is None:
            flight = _Flight()
            self._flights[key] = flight
        flight.refs += 1
        waited = flight.lock.locked()
        if waited:
            self.coalesced += 1
        else:
            self.led += 1
        try:
            async with flight.lock:
                yield waited
        finally:
            flight.refs -= 1
            if flight.refs == 0:
                self._flights.pop(key, None)

    @property
    def in_flight(self) -> int:
        """Keys currently holding at least one request."""
        return len(self._flights)

    def snapshot(self) -> dict[str, int]:
        """Counters for ``/stats``."""
        return {
            "coalesced": self.coalesced,
            "led": self.led,
            "in_flight": self.in_flight,
        }
