"""A minimal HTTP/1.1 layer over asyncio streams.

The serving tier deliberately avoids third-party web frameworks — the
deployment story of the reproduction is "python and the standard
library" — so this module implements the small slice of HTTP/1.1 the
mining service needs: request-line + header parsing, ``Content-Length``
bodies, JSON responses, and keep-alive.  It is not a general web server;
chunked transfer encoding, multipart bodies, and HTTP/2 are out of
scope, and anything outside the supported slice fails as a clean 400.

Everything here is transport: no routing, no mining, no state.  The
application layer (:mod:`repro.serve.app`) consumes :class:`Request`
objects and produces ``(status, payload)`` pairs; this module turns the
wire into the former and the latter back into the wire.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.core.errors import ServeError

#: Largest accepted request body; a mining request is a few hundred bytes,
#: so anything near this bound is a client error, not a workload.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted header section (request line included).
MAX_HEADER_BYTES = 32 * 1024

#: Maximum header count per request.
MAX_HEADER_COUNT = 64

#: Reason phrases for every status the service emits.
STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header identifying the requesting tenant; absent means this tenant.
TENANT_HEADER = "x-tenant"
DEFAULT_TENANT = "public"


class ProtocolError(ServeError):
    """A request the HTTP layer cannot parse or refuses to accept."""


@dataclass(slots=True)
class Request:
    """One parsed HTTP request.

    Header names are lower-cased at parse time; query values keep the
    last occurrence of a repeated key.
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def tenant(self) -> str:
        """The requesting tenant (the ``X-Tenant`` header, or a default)."""
        return self.headers.get(TENANT_HEADER, DEFAULT_TENANT).strip() or (
            DEFAULT_TENANT
        )

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The request body parsed as a JSON object.

        An empty body reads as an empty object so endpoints with all-
        optional parameters accept bare POSTs.
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off a stream; ``None`` on a clean end-of-stream.

    Raises :class:`ProtocolError` for malformed or oversized input — the
    connection handler answers 400 and closes.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError("request line too long")
    if not request_line:
        return None
    try:
        text = request_line.decode("ascii").strip()
    except UnicodeDecodeError:
        raise ProtocolError("request line is not ASCII")
    if not text:
        return None
    parts = text.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {text!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("header section too large")
        try:
            decoded = line.decode("latin-1").strip()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise ProtocolError("undecodable header line")
        name, sep, value = decoded.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {decoded!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int, payload: object, keep_alive: bool = True
) -> bytes:
    """Serialize one JSON response, headers included."""
    body = json.dumps(payload).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def error_payload(message: str) -> dict:
    """The uniform JSON body of every non-2xx response."""
    return {"error": message}
