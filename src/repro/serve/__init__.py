"""``repro.serve`` — the multi-tenant mining service.

The serving tier turns the mining library into a long-running query
server: an asyncio HTTP/JSON front door (``ppm serve``) that owns a pool
of loaded series and answers mine/re-query requests from many concurrent
clients.  The load-bearing observation is the paper's §4.2 anti-monotone
``min_conf`` structure, operationalised by the PR 5 count cache: one
scan's results answer *every* equal-or-higher threshold exactly, so the
server coalesces concurrent queries about the same series and period
onto a single scan and fans the results back out through the cache.

Layers (each its own module, composable without the others):

* :mod:`.protocol` — minimal HTTP/1.1 over asyncio streams;
* :mod:`.registry` — the named pool of loaded series;
* :mod:`.quotas` — per-tenant token buckets and cache-share ledgers;
* :mod:`.coalesce` — single-flight keying of in-flight queries;
* :mod:`.app` — routes, admission control, the mining pipeline;
* :mod:`.server` — sockets, keep-alive, graceful shutdown.

See ``docs/serve.md`` for the API and the operational runbook.
"""

from repro.serve.app import MiningApp, ServeConfig
from repro.serve.coalesce import SingleFlight
from repro.serve.protocol import (
    ProtocolError,
    Request,
    read_request,
    response_bytes,
)
from repro.serve.quotas import TenantCacheLedger, TenantQuotas, TokenBucket
from repro.serve.registry import LoadedSeries, SeriesRegistry
from repro.serve.server import MiningServer, run_server

__all__ = [
    "LoadedSeries",
    "MiningApp",
    "MiningServer",
    "ProtocolError",
    "Request",
    "SeriesRegistry",
    "ServeConfig",
    "SingleFlight",
    "TenantCacheLedger",
    "TenantQuotas",
    "TokenBucket",
    "read_request",
    "response_bytes",
    "run_server",
]
