"""Server-held streaming sessions: named windowed miners fed over HTTP.

A :class:`StreamSession` wraps one
:class:`~repro.streaming.engine.StreamingMiner` with what serving needs
around it: a per-session asyncio lock (feeds for one stream are strictly
ordered — slot order *is* the semantics), bounded bookkeeping (a ring of
the most recent emitted windows, plain counters), and JSON-ready
snapshots for ``/stream/<name>`` and the ``/stats`` streams section.

:class:`StreamManager` owns the sessions: bounded in number (each one
holds a window's worth of retained segments), named, and explicitly
closed — the same loud-refusal posture as the series registry.

Feeding is CPU work (a closing window mines); the app dispatches
:meth:`StreamSession.feed` to the worker pool, never the event loop —
the lock is held across the dispatch so concurrent feeds to one stream
serialize while different streams proceed in parallel.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any

from repro.core.errors import ServeError
from repro.streaming.engine import StreamingMiner, window_to_dict
from repro.timeseries.feature_series import SlotLike

#: Recent emitted windows kept per session for GET /stream/<name>.
WINDOW_LOG_ENTRIES = 32


class StreamSession:
    """One named streaming miner with serving bookkeeping around it."""

    __slots__ = ("name", "miner", "lock", "recent_windows", "counters",
                 "slots_since_checkpoint", "_created")

    def __init__(self, name: str, miner: StreamingMiner):
        self.name = name
        self.miner = miner
        #: Serializes feeds to this stream; slot order is the semantics.
        self.lock = asyncio.Lock()
        #: Ring of the latest emitted windows (bounded by maxlen).
        self.recent_windows: deque[dict[str, Any]] = deque(
            maxlen=WINDOW_LOG_ENTRIES
        )
        self.counters = {"batches": 0, "slots": 0, "windows": 0}
        #: Slots fed since this session was last persisted or rehydrated
        #: — the checkpoint lag ``/healthz`` and ``/stats`` report.
        self.slots_since_checkpoint = 0
        self._created = time.monotonic()

    def feed(self, slots: list[SlotLike]) -> list[dict[str, Any]]:
        """Feed one ordered batch; returns the windows it closed.

        Blocking (closing windows mine) — the app runs it on the worker
        pool while holding :attr:`lock`, so only one feed per session is
        ever in flight and the counters need no further synchronization.
        """
        emitted = [
            window_to_dict(window) for window in self.miner.extend(slots)
        ]
        self.counters["batches"] += 1
        self.counters["slots"] += len(slots)
        self.counters["windows"] += len(emitted)
        self.slots_since_checkpoint += len(slots)
        self.recent_windows.extend(emitted)
        return emitted

    def describe(self) -> dict[str, Any]:
        """JSON-ready session snapshot (without the window log)."""
        snapshot = self.miner.snapshot()
        snapshot["name"] = self.name
        snapshot["counters"] = dict(self.counters)
        snapshot["checkpoint_lag"] = self.slots_since_checkpoint
        snapshot["age_s"] = round(time.monotonic() - self._created, 3)
        return snapshot

    # -- durable state (serve shutdown persistence) ---------------------

    def to_state(self) -> dict[str, Any]:
        """Everything a restart needs to resume this session exactly."""
        return {
            "name": self.name,
            "miner": self.miner.to_state(),
            "counters": dict(self.counters),
            "recent_windows": list(self.recent_windows),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamSession":
        """Rebuild a session from :meth:`to_state` output."""
        try:
            session = cls(
                str(state["name"]),
                StreamingMiner.from_state(state["miner"]),
            )
            session.counters = {
                key: int(value)
                for key, value in state["counters"].items()
            }
            session.recent_windows.extend(state["recent_windows"])
        except (KeyError, TypeError, ValueError) as error:
            raise ServeError(
                f"malformed stream-session state: {error}"
            ) from error
        return session


class StreamManager:
    """The bounded registry of live streaming sessions."""

    __slots__ = ("_sessions", "_max_streams", "counters")

    def __init__(self, max_streams: int = 8):
        if max_streams < 1:
            raise ServeError(
                f"max_streams must be >= 1, got {max_streams}"
            )
        self._sessions: dict[str, StreamSession] = {}
        self._max_streams = max_streams
        self.counters = {"opened": 0, "closed": 0}

    def __len__(self) -> int:
        return len(self._sessions)

    def open(
        self,
        name: str,
        period: int,
        window: int,
        slide: int | None = None,
        min_conf: float = 0.5,
        retirement: str = "decrement",
        max_letters: int | None = None,
        change_tolerance: float = 0.05,
    ) -> StreamSession:
        """Create a named session; loud refusal on collision or overflow."""
        if not name:
            raise ServeError("stream name must be non-empty")
        if name in self._sessions:
            raise ServeError(f"stream {name!r} already exists")
        if len(self._sessions) >= self._max_streams:
            raise ServeError(
                f"stream limit reached ({self._max_streams}); close one "
                "with DELETE /stream/<name> first"
            )
        miner = StreamingMiner(
            period=period,
            window=window,
            slide=slide,
            min_conf=min_conf,
            retirement=retirement,
            max_letters=max_letters,
            change_tolerance=change_tolerance,
        )
        session = StreamSession(name, miner)
        self._sessions[name] = session
        self.counters["opened"] += 1
        return session

    def get(self, name: str) -> StreamSession:
        """The named session, or a loud 404-shaped refusal."""
        session = self._sessions.get(name)
        if session is None:
            raise ServeError(f"no stream named {name!r}")
        return session

    def close(self, name: str) -> StreamSession:
        """Remove a session, returning its final state for the response."""
        session = self._sessions.pop(name, None)
        if session is None:
            raise ServeError(f"no stream named {name!r}")
        self.counters["closed"] += 1
        return session

    def describe(self) -> dict[str, Any]:
        """The ``/stats`` streams section: totals plus per-session rows."""
        return {
            "active": len(self._sessions),
            "max_streams": self._max_streams,
            "opened": self.counters["opened"],
            "closed": self.counters["closed"],
            "checkpoint_lag": self.checkpoint_lag(),
            "sessions": [
                session.describe()
                for session in self._sessions.values()
            ],
        }

    def checkpoint_lag(self) -> int:
        """Slots fed across all sessions since the last persist."""
        return sum(
            session.slots_since_checkpoint
            for session in self._sessions.values()
        )

    # -- durable state (serve shutdown persistence) ---------------------

    def sessions(self) -> list[StreamSession]:
        """The live sessions, in creation order."""
        return list(self._sessions.values())

    def to_state(self) -> dict[str, Any]:
        """Every open session's durable form, for one snapshot file."""
        return {
            "sessions": [
                session.to_state() for session in self._sessions.values()
            ],
        }

    def restore(self, state: dict[str, Any]) -> int:
        """Rehydrate persisted sessions into this (fresh) manager.

        Returns how many sessions came back.  Collisions with live
        sessions refuse loudly — rehydration runs before the server
        accepts traffic, so a collision means two restores.
        """
        try:
            restored = [
                StreamSession.from_state(entry)
                for entry in state["sessions"]
            ]
        except (KeyError, TypeError) as error:
            raise ServeError(
                f"malformed stream-manager state: {error}"
            ) from error
        for session in restored:
            if session.name in self._sessions:
                raise ServeError(
                    f"stream {session.name!r} already exists; refusing "
                    "to rehydrate over it"
                )
        for session in restored:
            self._sessions[session.name] = session
            self.counters["opened"] += 1
        return len(restored)
