"""The mining application: routes, admission, coalescing, quotas.

:class:`MiningApp` is the server's brain, deliberately separated from
the socket layer so the whole request pipeline is testable by calling
:meth:`MiningApp.handle` with a :class:`~repro.serve.protocol.Request` —
no ports, no sleeps, no flakes.

One ``/mine`` request flows through five gates, in order:

1. **validation** — malformed bodies and unknown series answer 400/404
   before any resource is charged;
2. **tenant quota** — the per-tenant token bucket refuses over-rate
   tenants with 429 (``reason: "rate-limit"``);
3. **admission** — a bounded pending counter refuses work past
   ``max_pending`` with 429 (``reason: "saturated"``): backpressure, not
   an unbounded queue;
4. **result cache** — an exact ``(fingerprint, period, min_conf)``
   repeat answers from a bounded LRU of serialized results without
   touching the mining path (content-addressed, so it can never serve a
   stale answer: editing a series changes its fingerprint);
5. **single-flight mining** — concurrent misses on the same
   ``(fingerprint, period)`` coalesce; the leader's scans populate the
   shared :class:`~repro.kernels.cache.CountCache` and followers re-query
   it (exact, per the cache's projection rule).

Mining itself runs on a worker thread pool bounded by ``concurrency``;
the per-request :class:`~repro.resilience.Deadline` caps the whole
journey — queueing included — surfacing as 504.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import (
    MiningError,
    ReproError,
    ServeError,
    ShardTimeout,
    SnapshotCorruption,
    StreamError,
)
from repro.core.miner import PartialPeriodicMiner
from repro.core.serialize import result_to_dict
from repro.durability.snapshot import SnapshotWriter, read_snapshot
from repro.kernels.cache import CountCache
from repro.kernels.profile import MiningProfile
from repro.resilience.deadline import Deadline
from repro.serve.coalesce import SingleFlight
from repro.serve.protocol import Request, error_payload
from repro.serve.quotas import TenantCacheLedger, TenantQuotas
from repro.serve.registry import SeriesRegistry
from repro.serve.streams import StreamManager, StreamSession
from repro.timeseries.feature_series import FeatureSeries

if TYPE_CHECKING:
    from repro.core.result import MiningResult
    from repro.kernels.cache import CacheKey

#: Snapshot kind tag for persisted serve streaming sessions.
STREAM_STATE_KIND = "repro.serve-streams/1"

#: Snapshot file name inside ``stream_state_dir``.
STREAM_STATE_FILE = "streams.json"


@dataclass(slots=True)
class ServeConfig:
    """Everything ``ppm serve`` can tune, with service-shaped defaults."""

    #: Default confidence threshold when a request omits ``min_conf``.
    min_conf: float = 0.5
    #: Counting kernel for every mine (mirrors ``ppm mine --kernel``).
    kernel: str = "batched"
    #: False routes mining through the legacy letter-set kernels.
    encode: bool = True
    #: Per-query engine workers (mirrors ``ppm mine --workers``).
    mine_workers: int = 1
    #: Engine backend when ``mine_workers > 1``.
    backend: str = "auto"
    #: Worker threads answering requests (the service's parallelism).
    concurrency: int = 4
    #: Admission bound: requests in flight past this are refused with 429.
    max_pending: int = 64
    #: Per-request wall-clock budget; ``None`` disables deadlines.
    request_timeout_s: float | None = 30.0
    #: Per-tenant sustained requests/second; ``None`` disables limiting.
    rate_limit: float | None = None
    #: Per-tenant burst allowance on top of the sustained rate.
    rate_burst: int = 8
    #: Directory persisting the count cache across restarts.
    cache_dir: str | None = None
    #: LRU bound on the shared count cache (``None`` = unbounded).
    cache_max_entries: int | None = 256
    #: Count-cache entries one tenant may own before its own oldest is
    #: evicted to make room (``None`` = no per-tenant share).
    tenant_cache_share: int | None = None
    #: Bound on the serialized-result LRU (0 disables it).
    result_cache_entries: int = 1024
    #: Quarantine malformed lines when loading series files.
    lenient: bool = False
    #: Concurrent streaming sessions the server will hold.
    max_streams: int = 8
    #: Directory persisting open streaming sessions across restarts:
    #: graceful shutdown snapshots them (atomic + checksummed), startup
    #: rehydrates them by name.  ``None`` keeps sessions memory-only.
    stream_state_dir: str | None = None

    def validate(self) -> None:
        """Fail fast on configurations the server cannot run."""
        if self.concurrency < 1:
            raise ServeError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.max_pending < 1:
            raise ServeError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.mine_workers < 1:
            raise ServeError(
                f"mine_workers must be >= 1, got {self.mine_workers}"
            )
        if self.result_cache_entries < 0:
            raise ServeError(
                "result_cache_entries must be >= 0, got "
                f"{self.result_cache_entries}"
            )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ServeError(
                "request_timeout_s must be > 0, got "
                f"{self.request_timeout_s}"
            )
        if self.tenant_cache_share is not None and self.tenant_cache_share < 1:
            raise ServeError(
                "tenant_cache_share must be >= 1, got "
                f"{self.tenant_cache_share}"
            )
        if self.max_streams < 1:
            raise ServeError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )


class MiningApp:
    """Route table plus all serving state for one mining service."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.registry = SeriesRegistry()
        self.ledger = TenantCacheLedger()
        self.cache = CountCache(
            cache_dir=self.config.cache_dir,
            max_entries=self.config.cache_max_entries,
            on_evict=self.ledger.forget,
        )
        self.quotas = TenantQuotas(
            self.config.rate_limit, self.config.rate_burst
        )
        self.flights = SingleFlight()
        self.streams = StreamManager(max_streams=self.config.max_streams)
        #: Client-visible stream persistence status for ``/stats``.
        self.stream_state = {
            "dir": self.config.stream_state_dir,
            "rehydrated": 0,
            "persisted": 0,
            "error": None,
        }
        self._rehydrate_streams()
        self.profile = MiningProfile()
        #: Set by ``POST /shutdown``; the server drains and exits on it.
        self.shutdown_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.concurrency,
            thread_name_prefix="ppm-serve",
        )
        self._results: OrderedDict[tuple, dict] = OrderedDict()
        self._started = time.monotonic()
        self._pending = 0
        self._running = 0
        self.counters = {
            "served": 0,
            "mined": 0,
            "rejected_busy": 0,
            "rejected_quota": 0,
            "timeouts": 0,
            "client_errors": 0,
            "server_errors": 0,
            "result_cache_hits": 0,
            "scans_executed": 0,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(self, request: Request) -> tuple[int, dict]:
        """Answer one request: ``(status, JSON payload)``."""
        try:
            return await self._route(request)
        except ServeError as error:
            self.counters["client_errors"] += 1
            return 400, error_payload(str(error))
        except (MiningError, StreamError) as error:
            self.counters["client_errors"] += 1
            return 400, error_payload(str(error))
        except ReproError as error:
            self.counters["server_errors"] += 1
            return 500, error_payload(str(error))

    async def _route(self, request: Request) -> tuple[int, dict]:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/stats" and method == "GET":
            return 200, self.stats()
        if path == "/series" and method == "GET":
            return 200, {"series": self.registry.describe()}
        if path == "/series" and method == "POST":
            return await self._load_series(request)
        if path.startswith("/series/") and method == "DELETE":
            return self._unload_series(path.removeprefix("/series/"))
        if path == "/mine" and method == "POST":
            return await self._mine(request)
        if path == "/stream" and method == "POST":
            if self.shutdown_event.is_set():
                return self._draining()
            return self._stream_open(request)
        if path.startswith("/stream/") and path.endswith("/checkpoint"):
            if method != "POST":
                self.counters["client_errors"] += 1
                return 405, error_payload(f"{method} not allowed on {path}")
            name = path.removeprefix("/stream/").removesuffix("/checkpoint")
            return await self._stream_checkpoint(name)
        if path.startswith("/stream/") and method in (
            "POST", "GET", "DELETE",
        ):
            name = path.removeprefix("/stream/")
            try:
                session = self.streams.get(name)
            except ServeError as error:
                self.counters["client_errors"] += 1
                return 404, error_payload(str(error))
            if method == "POST":
                if self.shutdown_event.is_set():
                    return self._draining()
                return await self._stream_feed(session, request)
            if method == "GET":
                return 200, {
                    "stream": session.describe(),
                    "recent_windows": list(session.recent_windows),
                }
            self.streams.close(name)
            return 200, {"closed": session.describe()}
        if path == "/shutdown" and method == "POST":
            self.shutdown_event.set()
            return 202, {
                "status": "shutting down",
                "streams_open": len(self.streams),
                "stream_state_dir": self.config.stream_state_dir,
                "streams_persist": (
                    self.config.stream_state_dir is not None
                ),
            }
        if path in (
            "/", "/healthz", "/stats", "/series", "/mine", "/stream",
            "/shutdown",
        ) or path.startswith("/stream/"):
            self.counters["client_errors"] += 1
            return 405, error_payload(f"{method} not allowed on {path}")
        self.counters["client_errors"] += 1
        return 404, error_payload(f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.shutdown_event.is_set() else "ok",
            "series_loaded": len(self.registry),
            "streams_open": len(self.streams),
            "streams_checkpoint_lag": self.streams.checkpoint_lag(),
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    def _draining(self) -> tuple[int, dict]:
        """503 for stream mutations once shutdown has started: the final
        session snapshot is about to be taken, so feeds after it would
        be silently lost on restart — refuse them loudly instead."""
        self.counters["client_errors"] += 1
        return 503, {
            "error": (
                "server is draining for shutdown; stream sessions are "
                "closed to new feeds (their state persists and resumes "
                "on restart when --stream-state-dir is configured)"
            ),
            "reason": "draining",
        }

    def stats(self) -> dict:
        """The ``GET /stats`` document: queues, caches, tenants, timings."""
        cache = self.cache.stats
        return {
            "requests": dict(self.counters),
            "queue": {
                "pending": self._pending,
                "running": self._running,
                "max_pending": self.config.max_pending,
                "concurrency": self.config.concurrency,
            },
            "coalescing": self.flights.snapshot(),
            "count_cache": {
                "entries": self.cache.entry_count,
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "projected": cache.projected,
                "evictions": cache.evictions,
                "hit_rate": round(cache.hit_rate, 4),
            },
            "result_cache": {
                "entries": len(self._results),
                "hits": self.counters["result_cache_hits"],
                "max_entries": self.config.result_cache_entries,
            },
            "tenants": {
                "quota": self.quotas.snapshot(),
                "cache_owned": self.ledger.snapshot(),
            },
            "streams": self.streams.describe(),
            "stream_state": dict(self.stream_state),
            "profile": self.profile.to_json(),
            "series_loaded": len(self.registry),
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    # ------------------------------------------------------------------
    # Series management
    # ------------------------------------------------------------------

    async def _load_series(self, request: Request) -> tuple[int, dict]:
        body = request.json()
        name = body.get("name")
        path = body.get("path")
        if not isinstance(name, str) or not isinstance(path, str):
            raise ServeError(
                "POST /series needs JSON string fields 'name' and 'path'"
            )
        lenient = bool(body.get("lenient", self.config.lenient))
        loop = asyncio.get_running_loop()
        loaded = await loop.run_in_executor(
            self._executor, self.registry.load, name, path, lenient
        )
        return 200, {"loaded": loaded.describe()}

    def _unload_series(self, name: str) -> tuple[int, dict]:
        try:
            unloaded = self.registry.unload(name)
        except ServeError as error:
            self.counters["client_errors"] += 1
            return 404, error_payload(str(error))
        return 200, {"unloaded": unloaded.describe()}

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------

    async def _mine(self, request: Request) -> tuple[int, dict]:
        started = time.perf_counter()
        body = request.json()
        name = body.get("series")
        if not isinstance(name, str):
            raise ServeError("POST /mine needs a JSON string field 'series'")
        period = body.get("period")
        if not isinstance(period, int) or isinstance(period, bool):
            raise ServeError("POST /mine needs a JSON integer field 'period'")
        min_conf = body.get("min_conf", self.config.min_conf)
        if not isinstance(min_conf, (int, float)) or isinstance(
            min_conf, bool
        ):
            raise ServeError("'min_conf' must be a number")
        min_conf = float(min_conf)
        tenant = request.tenant

        try:
            loaded = self.registry.get(name)
        except ServeError as error:
            self.counters["client_errors"] += 1
            return 404, error_payload(str(error))

        if not self.quotas.allow(tenant):
            self.counters["rejected_quota"] += 1
            return 429, {
                "error": f"tenant {tenant!r} is over its request rate",
                "reason": "rate-limit",
                "tenant": tenant,
            }
        if self._pending >= self.config.max_pending:
            self.counters["rejected_busy"] += 1
            return 429, {
                "error": (
                    f"server saturated ({self._pending} requests pending); "
                    "retry later"
                ),
                "reason": "saturated",
            }

        self._pending += 1
        try:
            deadline = (
                None
                if self.config.request_timeout_s is None
                else Deadline.start(self.config.request_timeout_s)
            )
            work = self._mine_admitted(
                loaded.fingerprint, loaded.series, name, period, min_conf,
                tenant, started,
            )
            if deadline is None:
                return await work
            return await deadline.bound(work, "mine request")
        except ShardTimeout:
            self.counters["timeouts"] += 1
            return 504, {
                "error": (
                    "request exceeded its deadline of "
                    f"{self.config.request_timeout_s}s"
                ),
                "reason": "deadline",
            }
        finally:
            self._pending -= 1

    async def _mine_admitted(
        self,
        fingerprint: str,
        series: object,
        name: str,
        period: int,
        min_conf: float,
        tenant: str,
        started: float,
    ) -> tuple[int, dict]:
        """The post-admission pipeline: result cache, coalescing, mining."""
        result_key = (fingerprint, period, min_conf, self.config.kernel)
        cached = self._result_cache_get(result_key)
        if cached is not None:
            return 200, self._respond(
                cached, name, fingerprint, tenant, started,
                scans=0, coalesced=False, from_result_cache=True,
            )

        flight_key = (fingerprint, period)
        async with self.flights.hold(flight_key) as waited:
            if waited:
                # The leader may have produced this exact document while
                # this request queued on the flight lock.
                cached = self._result_cache_get(result_key)
                if cached is not None:
                    return 200, self._respond(
                        cached, name, fingerprint, tenant, started,
                        scans=0, coalesced=True, from_result_cache=True,
                    )
            cache_key = self.cache.key_for(series, period)
            self._enforce_tenant_share(tenant, cache_key)
            profile = MiningProfile()
            loop = asyncio.get_running_loop()
            self._running += 1
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    self._mine_blocking,
                    series,
                    period,
                    min_conf,
                    profile,
                )
            finally:
                self._running -= 1
            self._merge_profile(profile)
            scans = result.stats.scans
            self.counters["mined"] += 1
            self.counters["scans_executed"] += scans
            if scans:
                self.ledger.charge(tenant, cache_key)
            document = result_to_dict(result)
            self._result_cache_put(result_key, document)
            return 200, self._respond(
                document, name, fingerprint, tenant, started,
                scans=scans, coalesced=waited, from_result_cache=False,
            )

    # ------------------------------------------------------------------
    # Streaming sessions (repro.streaming over HTTP)
    # ------------------------------------------------------------------

    def _stream_open(self, request: Request) -> tuple[int, dict]:
        """``POST /stream``: create a named windowed streaming session."""
        body = request.json()
        name = body.get("name")
        if not isinstance(name, str):
            raise ServeError(
                "POST /stream needs a JSON string field 'name'"
            )
        period = self._int_field(body, "period")
        window = self._int_field(body, "window")
        slide = (
            None if body.get("slide") is None
            else self._int_field(body, "slide")
        )
        min_conf = body.get("min_conf", self.config.min_conf)
        if not isinstance(min_conf, (int, float)) or isinstance(
            min_conf, bool
        ):
            raise ServeError("'min_conf' must be a number")
        retirement = body.get("strategy", "decrement")
        if not isinstance(retirement, str):
            raise ServeError("'strategy' must be a string")
        max_letters = (
            None if body.get("max_letters") is None
            else self._int_field(body, "max_letters")
        )
        session = self.streams.open(
            name,
            period=period,
            window=window,
            slide=slide,
            min_conf=float(min_conf),
            retirement=retirement,
            max_letters=max_letters,
        )
        self.counters["served"] += 1
        return 201, {"stream": session.describe()}

    async def _stream_feed(
        self, session: "StreamSession", request: Request
    ) -> tuple[int, dict]:
        """``POST /stream/<name>``: feed an ordered batch of slots."""
        slots = self._parse_slots(request.json())
        # Feeds to one stream serialize on its lock (slot order is the
        # semantics); the mining work itself runs on the worker pool.
        async with session.lock:
            loop = asyncio.get_running_loop()
            self._running += 1
            try:
                emitted = await loop.run_in_executor(
                    self._executor, session.feed, slots
                )
            finally:
                self._running -= 1
        self.counters["served"] += 1
        return 200, {
            "stream": session.name,
            "accepted_slots": len(slots),
            "windows": emitted,
            "state": session.describe(),
        }

    async def _stream_checkpoint(self, name: str) -> tuple[int, dict]:
        """``POST /stream/<name>/checkpoint``: persist session state now.

        One snapshot file holds every open session, so checkpointing any
        one of them persists all of them (and resets the checkpoint lag)
        — the named session only anchors the request to a live stream.
        """
        try:
            session = self.streams.get(name)
        except ServeError as error:
            self.counters["client_errors"] += 1
            return 404, error_payload(str(error))
        if self.shutdown_event.is_set():
            # The drain's own final persist_streams() is about to run;
            # racing it with an ad-hoc snapshot helps nobody.
            return self._draining()
        if self.config.stream_state_dir is None:
            self.counters["client_errors"] += 1
            return 400, error_payload(
                "stream persistence is not configured; restart the "
                "server with --stream-state-dir to enable checkpoints"
            )
        # One snapshot covers every session, so quiesce them all: locks
        # are taken in creation order (the only multi-lock acquirer, so
        # no ordering deadlock) and in-flight feeds drain first.
        async with contextlib.AsyncExitStack() as stack:
            for open_session in self.streams.sessions():
                await stack.enter_async_context(open_session.lock)
            loop = asyncio.get_running_loop()
            persisted = await loop.run_in_executor(
                self._executor, self.persist_streams
            )
        self.counters["served"] += 1
        return 200, {
            "stream": session.name,
            "persisted_sessions": persisted,
            "checkpoint_lag": self.streams.checkpoint_lag(),
            "state": session.describe(),
        }

    @staticmethod
    def _int_field(body: dict, field: str) -> int:
        value = body.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServeError(f"'{field}' must be a JSON integer")
        return value

    @staticmethod
    def _parse_slots(body: dict) -> list[frozenset[str]]:
        """The feed payload: 'slots' (feature lists) xor 'symbols'."""
        slots_field = body.get("slots")
        symbols = body.get("symbols")
        if (slots_field is None) == (symbols is None):
            raise ServeError(
                "POST /stream/<name> needs exactly one of 'slots' "
                "(a list of feature lists) or 'symbols' (a string)"
            )
        if symbols is not None:
            if not isinstance(symbols, str):
                raise ServeError("'symbols' must be a string")
            return list(FeatureSeries.from_symbols(symbols))
        if not isinstance(slots_field, list):
            raise ServeError("'slots' must be a list of feature lists")
        parsed = []
        for slot in slots_field:
            if not isinstance(slot, list) or not all(
                isinstance(feature, str) for feature in slot
            ):
                raise ServeError(
                    "'slots' entries must be lists of feature strings"
                )
            parsed.append(frozenset(slot))
        return parsed

    def _mine_blocking(
        self,
        series: object,
        period: int,
        min_conf: float,
        profile: MiningProfile,
    ) -> "MiningResult":
        """One mine on a worker thread (the only blocking code path)."""
        miner = PartialPeriodicMiner(series, min_conf=min_conf)
        return miner.mine(
            period,
            workers=self.config.mine_workers,
            backend=self.config.backend,
            encode=self.config.encode,
            kernel=self.config.kernel,
            cache=self.cache,
            profile=profile,
        )

    def _enforce_tenant_share(self, tenant: str, cache_key: "CacheKey") -> None:
        """Evict the tenant's own oldest entries before it adds a new one."""
        share = self.config.tenant_cache_share
        if share is None or self.ledger.owner_of(cache_key) == tenant:
            return
        while self.ledger.owner_count(tenant) >= share:
            oldest = self.ledger.oldest(tenant)
            if oldest is None:  # pragma: no cover - count>0 implies a key
                break
            self.cache.evict(oldest)

    def _respond(
        self,
        document: dict,
        name: str,
        fingerprint: str,
        tenant: str,
        started: float,
        scans: int,
        coalesced: bool,
        from_result_cache: bool,
    ) -> dict:
        self.counters["served"] += 1
        return {
            "result": document,
            "serve": {
                "series": name,
                "fingerprint": fingerprint,
                "tenant": tenant,
                "scans": scans,
                "coalesced": coalesced,
                "from_result_cache": from_result_cache,
                "elapsed_ms": round(
                    (time.perf_counter() - started) * 1e3, 3
                ),
            },
        }

    # ------------------------------------------------------------------
    # Result cache (bounded LRU of serialized results)
    # ------------------------------------------------------------------

    def _result_cache_get(self, key: tuple) -> dict | None:
        if self.config.result_cache_entries == 0:
            return None
        document = self._results.get(key)
        if document is None:
            return None
        self._results.move_to_end(key)
        self.counters["result_cache_hits"] += 1
        return document

    def _result_cache_put(self, key: tuple, document: dict) -> None:
        if self.config.result_cache_entries == 0:
            return
        self._results[key] = document
        self._results.move_to_end(key)
        while len(self._results) > self.config.result_cache_entries:
            self._results.popitem(last=False)

    # ------------------------------------------------------------------
    # Profile aggregation and lifecycle
    # ------------------------------------------------------------------

    def _merge_profile(self, profile: MiningProfile) -> None:
        """Fold one request's stage timings into the service aggregate.

        Requests each carry their own :class:`MiningProfile` (the class
        is not thread-safe) and merge on the event-loop thread.
        """
        for timing in profile.stages:
            self.profile.add_stage(
                timing.name, timing.elapsed_s, items=timing.items
            )
        for counter, amount in profile.counters.items():
            self.profile.count(counter, amount)

    # ------------------------------------------------------------------
    # Stream session persistence (repro.durability over serve)
    # ------------------------------------------------------------------

    def _rehydrate_streams(self) -> None:
        """Restore persisted sessions at startup, by name.

        A corrupt or foreign state file must not keep the service down —
        the server starts with no sessions and surfaces the problem on
        ``/stats`` (``stream_state.error``).  A *version-newer* file
        still refuses loudly: that is an operator mistake, not damage.
        """
        directory = self.config.stream_state_dir
        if directory is None:
            return
        path = Path(directory) / STREAM_STATE_FILE
        if not path.exists():
            return
        try:
            payload = read_snapshot(path, kind=STREAM_STATE_KIND)
            self.stream_state["rehydrated"] = self.streams.restore(payload)
        except (SnapshotCorruption, ServeError) as error:
            self.stream_state["error"] = str(error)

    def persist_streams(self) -> int:
        """Snapshot every open session (atomic, checksummed); returns
        how many were persisted.  Called at shutdown after the drain,
        and safe to call ad hoc (it resets the checkpoint lag)."""
        directory = self.config.stream_state_dir
        if directory is None:
            return 0
        writer = SnapshotWriter(directory)
        writer.write(
            STREAM_STATE_FILE,
            kind=STREAM_STATE_KIND,
            payload=self.streams.to_state(),
        )
        for session in self.streams.sessions():
            session.slots_since_checkpoint = 0
        count = len(self.streams)
        self.stream_state["persisted"] = count
        return count

    def close(self) -> None:
        """Persist open streams, then release the worker pool (idempotent)."""
        try:
            self.persist_streams()
        except (OSError, ReproError) as error:
            self.stream_state["error"] = str(error)
        self._executor.shutdown(wait=False)
