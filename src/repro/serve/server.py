"""The asyncio front door: sockets in, JSON out.

:class:`MiningServer` binds an :class:`~repro.serve.app.MiningApp` to a
TCP port with :func:`asyncio.start_server`.  Each connection runs one
read-dispatch-write loop with keep-alive, so a client can stream many
queries over one socket; protocol errors answer 400 and close, handler
crashes answer 500 and keep the connection, and a ``POST /shutdown`` (or
:meth:`MiningServer.aclose`) drains cleanly: the listener closes first so
no new connections land, then in-flight requests finish.

The server binds ``port=0`` happily — the chosen port is on
:attr:`MiningServer.port` after :meth:`start` — which is how the tests
and benchmarks run fleets of servers without port collisions.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.serve.app import MiningApp, ServeConfig
from repro.serve.protocol import (
    ProtocolError,
    error_payload,
    read_request,
    response_bytes,
)


class MiningServer:
    """One listening mining service over a :class:`MiningApp`."""

    def __init__(  # repro: effect[pure] -- construct-time CountCache mkdir happens before the loop serves traffic
        self,
        app: MiningApp | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.app = app or MiningApp(ServeConfig())
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        #: Open connection-handler tasks, for a clean drain on shutdown.
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until ``POST /shutdown`` (or cancellation), then drain."""
        await self.start()
        try:
            await self.app.shutdown_event.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight requests, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self.app.shutdown_event.set()
        self.app.close()

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_connection(reader, writer)
        finally:
            writer.close()
            with contextlib.suppress(OSError, ConnectionError):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except ProtocolError as error:
                writer.write(
                    response_bytes(
                        400, error_payload(str(error)), keep_alive=False
                    )
                )
                with contextlib.suppress(OSError, ConnectionError):
                    await writer.drain()
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if request is None:
                return
            # A shutdown in progress still answers the requests already
            # on this connection; new connections are refused by the
            # closed listener.
            try:
                status, payload = await self.app.handle(request)
            except Exception as error:  # repro: ignore[REP404] -- the connection loop is the last resort: any unclassified handler crash must become a 500 for this client without killing the sibling requests sharing the process
                status, payload = 500, error_payload(
                    f"internal error: {type(error).__name__}: {error}"
                )
            keep_alive = request.keep_alive and not (
                self.app.shutdown_event.is_set()
            )
            writer.write(response_bytes(status, payload, keep_alive))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not keep_alive:
                return


async def run_server(
    app: MiningApp,
    host: str = "127.0.0.1",
    port: int = 8765,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Start a server and run it to shutdown (the ``ppm serve`` body).

    ``ready`` is set once the port is bound — embedders and the smoke
    tests use it to know when to connect.
    """
    server = MiningServer(app, host=host, port=port)
    await server.start()
    if ready is not None:
        ready.set()
    await server.serve_forever()
