"""The pool of loaded series the server answers queries against.

A long-running service cannot re-read its input file per request — the
whole point of the serving tier is that one loaded series answers many
queries.  :class:`SeriesRegistry` owns that pool: series are loaded by
name (from the line-oriented format of :mod:`repro.timeseries.io`,
honouring the lenient quarantine mode), fingerprinted once at load time,
and handed out to the mining path by reference.

The registry is thread-safe: loads run on the server's worker pool (file
I/O never blocks the event loop — rule REP801) while lookups happen on
the event-loop thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import ServeError
from repro.resilience.journal import series_fingerprint
from repro.timeseries.feature_series import FeatureSeries
from repro.timeseries.io import LoadReport, load_series

if TYPE_CHECKING:
    from pathlib import Path


@dataclass(frozen=True, slots=True)
class LoadedSeries:
    """One resident series plus the identity facts the server reports."""

    name: str
    series: FeatureSeries
    #: Content digest — the count-cache and result-cache identity.
    fingerprint: str
    #: Where the series came from (a path, or ``"inline"``).
    source: str
    #: Slots in the loaded series.
    slots: int
    #: Lines quarantined by a lenient load (0 for strict loads).
    quarantined: int

    def describe(self) -> dict:
        """The JSON shape of one ``GET /series`` row."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "slots": self.slots,
            "quarantined": self.quarantined,
        }


class SeriesRegistry:
    """Named, loaded series; the server's only source of mineable data."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[str, LoadedSeries] = {}

    def load(
        self, name: str, path: "str | Path", lenient: bool = False
    ) -> LoadedSeries:
        """Load a series file under a name (replacing any previous holder).

        Blocking (reads the file; fingerprints the content) — the
        application dispatches it to the worker pool.  ``lenient`` maps
        to the quarantine mode of :func:`repro.timeseries.io.load_series`.
        """
        _check_name(name)
        report = LoadReport()
        series = load_series(path, strict=not lenient, report=report)
        loaded = LoadedSeries(
            name=name,
            series=series,
            fingerprint=series_fingerprint(series),
            source=str(path),
            slots=len(series),
            quarantined=len(report.quarantined),
        )
        with self._lock:
            self._series[name] = loaded
        return loaded

    def add(
        self, name: str, series: FeatureSeries, source: str = "inline"
    ) -> LoadedSeries:
        """Register an already-built series (tests, benchmarks, embedding)."""
        _check_name(name)
        loaded = LoadedSeries(
            name=name,
            series=series,
            fingerprint=series_fingerprint(series),
            source=source,
            slots=len(series),
            quarantined=0,
        )
        with self._lock:
            self._series[name] = loaded
        return loaded

    def unload(self, name: str) -> LoadedSeries:
        """Drop one series from the pool; raises if the name is unknown."""
        with self._lock:
            loaded = self._series.pop(name, None)
        if loaded is None:
            raise ServeError(f"no loaded series named {name!r}")
        return loaded

    def get(self, name: str) -> LoadedSeries:
        """The loaded series of a name; raises if unknown."""
        with self._lock:
            loaded = self._series.get(name)
        if loaded is None:
            raise ServeError(f"no loaded series named {name!r}")
        return loaded

    def describe(self) -> list[dict]:
        """Every loaded series, name-sorted, in ``GET /series`` shape."""
        with self._lock:
            loaded = sorted(self._series.values(), key=lambda item: item.name)
        return [item.describe() for item in loaded]

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._series


def _check_name(name: str) -> None:
    """Reject names that would not survive a URL path segment."""
    if not name or "/" in name or name != name.strip():
        raise ServeError(
            f"series name must be a non-empty path-safe token, got {name!r}"
        )
