"""repro — partial periodic pattern mining in time series databases.

A from-scratch reproduction of Han, Dong & Yin, "Efficient Mining of
Partial Periodic Patterns in Time Series Database" (ICDE 1999): the
single-period Apriori miner, the two-scan max-subpattern hit-set miner with
its max-subpattern tree, shared multi-period mining, and the Section 6
extensions (maximal patterns, periodic rules, multi-level mining,
perturbation tolerance), plus the Section 5 synthetic workload generator.

Beyond the paper, :mod:`repro.encoding` interns ``(offset, feature)``
letters into a dense :class:`LetterVocabulary` and runs every hot path on
int bitmasks (see ``docs/encoding.md``), and :mod:`repro.engine` runs the
hit-set miner over segment shards on serial/thread/process backends and
merges the partial results exactly (see :class:`ParallelMiner`).

Quickstart
----------
>>> from repro import PartialPeriodicMiner
>>> miner = PartialPeriodicMiner("abdabcabdabc", min_conf=0.9)
>>> sorted(str(p) for p in miner.mine(3))
['*b*', 'a**', 'ab*']
"""

from repro.core.apriori import mine_single_period_apriori
from repro.core.constraints import MiningConstraints, mine_with_constraints
from repro.core.counting import brute_force_frequent, confidence, count_pattern
from repro.core.errors import (
    EncodingError,
    EngineError,
    GeneratorError,
    MiningError,
    PatternError,
    ReproError,
    SeriesError,
    TaxonomyError,
)
from repro.core.hitset import mine_single_period_hitset
from repro.core.incremental import IncrementalHitSetMiner, SegmentPartial
from repro.core.maximal import maximal_patterns, mine_maximal_hitset
from repro.core.maxpattern import find_frequent_one_patterns
from repro.core.miner import PartialPeriodicMiner
from repro.core.multiperiod import (
    MultiPeriodResult,
    mine_period_range,
    mine_periods_looping,
    mine_periods_shared,
    period_range,
)
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.core.serialize import load_result, save_result
from repro.encoding import EncodedSeries, LetterVocabulary, SegmentEncoder
from repro.engine.parallel import ParallelMiner
from repro.engine.partition import SegmentShard, partition_segments
from repro.engine.stats import EngineStats
from repro.streaming import ArrivalBuffer, StreamingMiner, WindowResult, WindowSpec
from repro.synth.generator import SyntheticSeries, SyntheticSpec, generate_series
from repro.timeseries.feature_series import FeatureSeries, as_feature_series
from repro.timeseries.scan import ScanCountingSeries
from repro.tree.max_subpattern_tree import MaxSubpatternTree

__version__ = "1.0.0"

__all__ = [
    "ArrivalBuffer",
    "EncodedSeries",
    "EncodingError",
    "EngineError",
    "EngineStats",
    "FeatureSeries",
    "GeneratorError",
    "IncrementalHitSetMiner",
    "LetterVocabulary",
    "MaxSubpatternTree",
    "MiningConstraints",
    "MiningError",
    "MiningResult",
    "MiningStats",
    "MultiPeriodResult",
    "ParallelMiner",
    "PartialPeriodicMiner",
    "Pattern",
    "PatternError",
    "ReproError",
    "ScanCountingSeries",
    "SegmentEncoder",
    "SegmentPartial",
    "SegmentShard",
    "SeriesError",
    "StreamingMiner",
    "SyntheticSeries",
    "SyntheticSpec",
    "TaxonomyError",
    "WindowResult",
    "WindowSpec",
    "as_feature_series",
    "brute_force_frequent",
    "confidence",
    "count_pattern",
    "find_frequent_one_patterns",
    "generate_series",
    "load_result",
    "maximal_patterns",
    "mine_maximal_hitset",
    "mine_period_range",
    "mine_periods_looping",
    "mine_periods_shared",
    "mine_single_period_apriori",
    "mine_single_period_hitset",
    "mine_with_constraints",
    "partition_segments",
    "period_range",
    "save_result",
    "__version__",
]
