"""Algorithm 3.1 — single-period Apriori mining of partial periodic patterns.

Level-wise search over pattern letter sets: level k holds the frequent
patterns with exactly k letters.  Each level requires one scan over the
series to count the candidates produced by apriori-gen from the previous
level, so the total number of scans is ``1 + (levels beyond F1)`` — bounded
by the length of the longest frequent pattern, and in the worst case by the
period, exactly as analysed in the paper.
"""

from __future__ import annotations

from repro.core.candidates import generate_candidate_masks, generate_candidates
from repro.core.counting import count_candidate_masks, count_candidates
from repro.core.errors import MiningError
from repro.core.maxpattern import FrequentOnePatterns, find_frequent_one_patterns
from repro.core.pattern import Letter, Pattern
from repro.core.result import MiningResult, MiningStats
from repro.encoding.codec import SegmentEncoder
from repro.encoding.vocabulary import LetterVocabulary
from repro.timeseries.feature_series import FeatureSeries


def mine_single_period_apriori(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    max_letters: int | None = None,
    encode: bool = True,
) -> MiningResult:
    """Find all frequent partial periodic patterns of one period (Alg. 3.1).

    Parameters
    ----------
    series:
        The feature series (or a scan-counting wrapper).
    period:
        The period to mine.
    min_conf:
        Confidence threshold in ``(0, 1]``.
    max_letters:
        Optional cap on pattern letter count; mining stops after that level.
        ``None`` mines until the candidate set is exhausted.
    encode:
        Default ``True`` runs the level loop on interned letter bitmasks
        over the F1 vocabulary (candidate generation and counting both);
        ``False`` keeps the legacy ``frozenset[Letter]`` levels for
        bisection.  Results and scan counts are identical either way —
        each level is still exactly one scan.

    Returns
    -------
    MiningResult
        Every frequent pattern with its frequency count, plus scan and
        candidate statistics.
    """
    if max_letters is not None and max_letters < 1:
        raise MiningError(f"max_letters must be >= 1, got {max_letters}")
    stats = MiningStats()
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    stats.scans = 1
    stats.candidate_counts[1] = len(one_patterns.letters)

    if encode:
        patterns = _mine_levels_encoded(series, period, one_patterns, stats, max_letters)
    else:
        patterns = _mine_levels_legacy(series, period, one_patterns, stats, max_letters)
    return MiningResult(
        algorithm="apriori",
        period=period,
        min_conf=min_conf,
        num_periods=one_patterns.num_periods,
        counts=patterns,
        stats=stats,
    )


def _mine_levels_encoded(
    series: FeatureSeries,
    period: int,
    one_patterns: FrequentOnePatterns,
    stats: MiningStats,
    max_letters: int | None,
) -> dict[Pattern, int]:
    """The level loop on bitmasks over the sorted F1 vocabulary."""
    vocab = LetterVocabulary.from_letters(one_patterns.letters, period=period)
    encoder = SegmentEncoder(vocab)
    mask_counts: dict[int, int] = {
        vocab.bit_of(letter): count
        for letter, count in one_patterns.letters.items()
    }
    frequent_level = set(mask_counts)
    level = 1
    while frequent_level:
        if max_letters is not None and level >= max_letters:
            break
        candidates = generate_candidate_masks(frequent_level)
        if not candidates:
            break
        level += 1
        stats.candidate_counts[level] = len(candidates)
        stats.scans += 1
        level_counts = count_candidate_masks(series, period, candidates, encoder)
        frequent_level = set()
        for candidate in candidates:
            count = level_counts[candidate]
            if count >= one_patterns.threshold:
                mask_counts[candidate] = count
                frequent_level.add(candidate)
    return {
        Pattern.from_mask(vocab, mask): count
        for mask, count in mask_counts.items()
    }


def _mine_levels_legacy(
    series: FeatureSeries,
    period: int,
    one_patterns: FrequentOnePatterns,
    stats: MiningStats,
    max_letters: int | None,
) -> dict[Pattern, int]:
    """The pre-encoding level loop on letter frozensets (bisection path)."""
    counts: dict[frozenset[Letter], int] = {
        frozenset((letter,)): count
        for letter, count in one_patterns.letters.items()
    }
    frequent_level = set(counts)
    level = 1
    while frequent_level:
        if max_letters is not None and level >= max_letters:
            break
        candidates = generate_candidates(frequent_level)
        if not candidates:
            break
        level += 1
        stats.candidate_counts[level] = len(candidates)
        stats.scans += 1
        level_counts = count_candidates(series, period, candidates)
        frequent_level = set()
        for candidate in candidates:
            count = level_counts[candidate]
            if count >= one_patterns.threshold:
                counts[candidate] = count
                frequent_level.add(candidate)
    return {
        Pattern.from_letters(period, letters): count
        for letters, count in counts.items()
    }


def apriori_candidate_schedule(f1_letters: set[Letter]) -> dict[int, int]:
    """Worst-case candidates per level given only the F1 letters.

    The paper's space analysis: level k has at most ``C(|F1|, k)``
    candidates (letters at the same offset may combine too — a letter set is
    any subset of F1).  Useful for pre-sizing buffers and in the bounds
    benchmarks.
    """
    from math import comb

    size = len(f1_letters)
    return {level: comb(size, level) for level in range(1, size + 1)}


#: Backwards-compatible convenience alias mirroring the paper's name.
single_period_apriori = mine_single_period_apriori
