"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the package produces with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class PatternError(ReproError):
    """Raised for malformed patterns or invalid pattern operations."""


class SeriesError(ReproError):
    """Raised for invalid feature series or segmentations."""


class MiningError(ReproError):
    """Raised for invalid mining parameters (period, confidence, ranges)."""


class EncodingError(ReproError):
    """Raised by :mod:`repro.encoding` for unknown letters, out-of-range
    bitmasks, or vocabularies unusable for the requested period."""


class TaxonomyError(ReproError):
    """Raised for malformed feature taxonomies in multi-level mining."""


class GeneratorError(ReproError):
    """Raised for invalid synthetic-workload parameters."""


class EngineError(ReproError):
    """Raised by the parallel engine: bad shard plans, unknown backends,
    or shards that exhaust the retry policy."""


class ResilienceError(ReproError):
    """Raised by :mod:`repro.resilience`: invalid retry policies or
    deadlines, unusable checkpoint journals, or a journal whose recorded
    run does not match the run being resumed."""


class ShardTimeout(ResilienceError):
    """A shard overran its per-task timeout, or a run exhausted its
    wall-clock deadline before every shard completed."""


class ServeError(ReproError):
    """Raised by :mod:`repro.serve`: malformed requests, unknown series
    names, or a server asked to run in an unusable configuration."""


class StreamError(ReproError):
    """Raised by :mod:`repro.streaming`: invalid window geometry, events
    older than the watermark allows being force-fed past quarantine, or a
    retirement strategy asked to retire more than it retains."""


class DurabilityError(ReproError):
    """Raised by :mod:`repro.durability`: unusable checkpoint directories,
    malformed state payloads, or a recovery with nothing valid to restore."""


class SnapshotCorruption(DurabilityError):
    """A snapshot file failed validation (truncated, checksum mismatch,
    or unparseable) — recoverable by falling back to an older snapshot."""
