"""High-level facade over the mining algorithms.

:class:`PartialPeriodicMiner` bundles a series with a confidence threshold
and exposes the paper's four algorithms (plus the maximal-pattern hybrid)
behind one object, so applications do not have to import each algorithm
module.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.apriori import mine_single_period_apriori
from repro.core.counting import check_min_conf
from repro.core.errors import MiningError
from repro.core.hitset import mine_single_period_hitset
from repro.core.maximal import mine_maximal_hitset
from repro.core.multiperiod import (
    MultiPeriodResult,
    mine_period_range,
    mine_periods_looping,
    mine_periods_shared,
)
from repro.core.result import MiningResult
from repro.timeseries.feature_series import FeatureSeries, as_feature_series

if TYPE_CHECKING:
    from pathlib import Path

    from repro.analysis.periodogram import PeriodScore
    from repro.core.constraints import MiningConstraints
    from repro.kernels.cache import CountCache
    from repro.kernels.profile import MiningProfile
    from repro.kernels.store import StoreOptions
    from repro.resilience.context import ResilienceContext

#: The single-period algorithms selectable by name.
ALGORITHMS = ("hitset", "apriori")


class PartialPeriodicMiner:
    """One-stop mining interface for a feature series.

    Parameters
    ----------
    series:
        A :class:`FeatureSeries`, a symbol string, or any iterable of slots.
    min_conf:
        Confidence threshold in ``(0, 1]`` used by every call unless
        overridden.
    algorithm:
        Default single-period algorithm, ``"hitset"`` (two scans — the
        paper's winner) or ``"apriori"``.

    Examples
    --------
    >>> miner = PartialPeriodicMiner("abdabcabdabc", min_conf=0.9)
    >>> sorted(str(p) for p in miner.mine(3))
    ['*b*', 'a**', 'ab*']
    """

    __slots__ = ("series", "min_conf", "algorithm")

    def __init__(
        self,
        series: FeatureSeries | str | Iterable,
        min_conf: float = 0.5,
        algorithm: str = "hitset",
    ):
        check_min_conf(min_conf)
        if algorithm not in ALGORITHMS:
            raise MiningError(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )
        self.series = as_feature_series(series)
        self.min_conf = min_conf
        self.algorithm = algorithm

    # ------------------------------------------------------------------

    def mine(
        self,
        period: int,
        min_conf: float | None = None,
        algorithm: str | None = None,
        workers: int | None = None,
        backend: str = "auto",
        encode: bool = True,
        kernel: str = "batched",
        cache: CountCache | None = None,
        profile: MiningProfile | None = None,
        resilience: ResilienceContext | None = None,
        journal_path: str | Path | None = None,
        store: StoreOptions | None = None,
    ) -> MiningResult:
        """All frequent patterns of one period.

        ``workers > 1`` runs the hit-set algorithm over segment shards on
        the parallel engine (:class:`repro.engine.ParallelMiner`); the
        frequent set and counts are identical to the serial run.
        ``encode=False`` routes every path through the legacy letter-set
        kernels (the CLI's ``--no-encode`` escape hatch), and
        ``kernel="legacy"`` the per-candidate counting paths
        (``--kernel legacy``); ``kernel="columnar"`` runs both scans as
        vectorized ops over the segment-store column, and ``store`` (a
        :class:`repro.kernels.StoreOptions`, columnar only) spills that
        column to an mmap'd on-disk file past its threshold so the mine
        runs in bounded memory (``--store-dir``).  ``cache`` memoizes
        scan results across queries and ``profile`` collects per-stage
        timings — both hit-set only; the Apriori path ignores them.

        ``resilience`` (a :class:`repro.resilience.ResilienceContext`) and
        ``journal_path`` (checkpoint/resume) always route through the
        engine, even single-worker runs — the resilience machinery lives
        there.
        """
        min_conf = self.min_conf if min_conf is None else min_conf
        algorithm = self.algorithm if algorithm is None else algorithm
        if workers is not None and workers < 1:
            raise MiningError(f"workers must be >= 1, got {workers}")
        engine_run = (workers is not None and workers > 1) or (
            resilience is not None or journal_path is not None
        )
        if engine_run:
            if algorithm != "hitset":
                raise MiningError(
                    "parallel mining supports the 'hitset' algorithm only"
                )
            if store is not None:
                raise MiningError(
                    "store spill options apply to serial columnar mining; "
                    "the engine ships shard stores itself"
                )
            from repro.engine.parallel import ParallelMiner

            return ParallelMiner(
                self.series,
                min_conf=min_conf,
                workers=workers if workers is not None else 1,
                backend=backend,
                encode=encode,
                kernel=kernel,
            ).mine(
                period,
                cache=cache,
                profile=profile,
                resilience=resilience,
                journal_path=journal_path,
            )
        if algorithm == "hitset":
            return mine_single_period_hitset(
                self.series,
                period,
                min_conf,
                encode=encode,
                kernel=kernel,
                cache=cache,
                profile=profile,
                store=store,
            )
        if algorithm == "apriori":
            return mine_single_period_apriori(
                self.series, period, min_conf, encode=encode
            )
        raise MiningError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )

    def mine_maximal(
        self, period: int, min_conf: float | None = None, encode: bool = True
    ) -> MiningResult:
        """Only the maximal frequent patterns of one period (two scans)."""
        min_conf = self.min_conf if min_conf is None else min_conf
        return mine_maximal_hitset(self.series, period, min_conf, encode=encode)

    def mine_constrained(
        self,
        period: int,
        constraints: MiningConstraints,
        min_conf: float | None = None,
    ) -> MiningResult:
        """Constraint-based mining with push-down (two scans).

        ``constraints`` is a
        :class:`repro.core.constraints.MiningConstraints`.
        """
        from repro.core.constraints import mine_with_constraints

        min_conf = self.min_conf if min_conf is None else min_conf
        return mine_with_constraints(self.series, period, min_conf, constraints)

    def mine_range(
        self,
        low: int,
        high: int,
        min_conf: float | None = None,
        shared: bool = True,
        min_repetitions: int = 1,
        workers: int | None = None,
        backend: str = "auto",
        encode: bool = True,
        kernel: str = "batched",
        resilience: ResilienceContext | None = None,
        journal_path: str | Path | None = None,
    ) -> MultiPeriodResult:
        """All frequent patterns for every period in ``[low, high]``.

        ``shared=True`` uses Algorithm 3.4 (two scans total);
        ``shared=False`` loops Algorithm 3.2 per period (Algorithm 3.3).
        ``workers > 1`` — or any resilience setting — fans the periods
        out over the parallel engine (per-period tasks, looping semantics
        — ``shared`` is ignored).
        """
        min_conf = self.min_conf if min_conf is None else min_conf
        if workers is not None and workers < 1:
            raise MiningError(f"workers must be >= 1, got {workers}")
        engine_run = (workers is not None and workers > 1) or (
            resilience is not None or journal_path is not None
        )
        if engine_run:
            from repro.engine.parallel import ParallelMiner

            return ParallelMiner(
                self.series,
                min_conf=min_conf,
                workers=workers if workers is not None else 1,
                backend=backend,
                encode=encode,
                kernel=kernel,
            ).mine_period_range(
                low,
                high,
                min_repetitions=min_repetitions,
                resilience=resilience,
                journal_path=journal_path,
            )
        return mine_period_range(
            self.series,
            low,
            high,
            min_conf,
            shared=shared,
            min_repetitions=min_repetitions,
            encode=encode,
            kernel=kernel,
        )

    def mine_periods(
        self,
        periods: Iterable[int],
        min_conf: float | None = None,
        shared: bool = True,
        min_repetitions: int = 1,
        encode: bool = True,
        kernel: str = "batched",
    ) -> MultiPeriodResult:
        """All frequent patterns for an explicit collection of periods."""
        min_conf = self.min_conf if min_conf is None else min_conf
        if shared:
            return mine_periods_shared(
                self.series,
                periods,
                min_conf,
                min_repetitions=min_repetitions,
                encode=encode,
                kernel=kernel,
            )
        return mine_periods_looping(
            self.series,
            periods,
            min_conf,
            algorithm=self.algorithm,
            min_repetitions=min_repetitions,
            encode=encode,
            kernel=kernel,
        )

    def suggest_periods(
        self,
        low: int,
        high: int,
        min_conf: float | None = None,
        limit: int = 5,
        min_repetitions: int = 2,
    ) -> list[PeriodScore]:
        """Rank candidate periods by periodic evidence (see
        :mod:`repro.analysis.periodogram`)."""
        from repro.analysis.periodogram import suggest_periods

        min_conf = self.min_conf if min_conf is None else min_conf
        return suggest_periods(
            self.series,
            low,
            high,
            min_conf=min_conf,
            limit=limit,
            min_repetitions=min_repetitions,
        )

    def __repr__(self) -> str:
        return (
            f"PartialPeriodicMiner(len={len(self.series)}, "
            f"min_conf={self.min_conf}, algorithm={self.algorithm!r})"
        )
