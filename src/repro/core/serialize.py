"""JSON serialization of patterns and mining results.

Mining is often one stage of a pipeline; these helpers persist results in
a stable, human-auditable JSON shape so downstream stages (dashboards,
diffing across runs, the CLI's ``--json`` mode) need no Python objects.

Format (version 1):

```json
{
  "format": "repro.mining_result/1",
  "algorithm": "hitset",
  "period": 7,
  "min_conf": 0.85,
  "num_periods": 156,
  "patterns": [{"pattern": "a**c***", "count": 140}, ...],
  "stats": {"scans": 2, "tree_nodes": 10, "hit_set_size": 4,
             "candidate_counts": {"1": 6, "2": 9}}
}
```

Patterns use the canonical string notation of
:meth:`repro.core.pattern.Pattern.from_string`, which round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats

#: Format tag written into every document.
FORMAT_TAG = "repro.mining_result/1"


def result_to_dict(result: MiningResult) -> dict:
    """The JSON-ready dictionary form of a mining result."""
    return {
        "format": FORMAT_TAG,
        "algorithm": result.algorithm,
        "period": result.period,
        "min_conf": result.min_conf,
        "num_periods": result.num_periods,
        "patterns": [
            {"pattern": str(pattern), "count": count}
            for pattern, count in sorted(
                result.items(), key=lambda item: (-item[1], str(item[0]))
            )
        ],
        "stats": {
            "scans": result.stats.scans,
            "tree_nodes": result.stats.tree_nodes,
            "hit_set_size": result.stats.hit_set_size,
            "candidate_counts": {
                str(level): count
                for level, count in sorted(
                    result.stats.candidate_counts.items()
                )
            },
        },
    }


def result_from_dict(payload: dict) -> MiningResult:
    """Rebuild a :class:`MiningResult` from its dictionary form."""
    if not isinstance(payload, dict):
        raise MiningError("mining-result payload must be a JSON object")
    tag = payload.get("format")
    if tag != FORMAT_TAG:
        raise MiningError(
            f"unsupported mining-result format {tag!r}; expected {FORMAT_TAG!r}"
        )
    try:
        period = int(payload["period"])
        counts = {
            Pattern.from_string(entry["pattern"]): int(entry["count"])
            for entry in payload["patterns"]
        }
        stats_payload = payload.get("stats", {})
        stats = MiningStats(
            scans=int(stats_payload.get("scans", 0)),
            tree_nodes=int(stats_payload.get("tree_nodes", 0)),
            hit_set_size=int(stats_payload.get("hit_set_size", 0)),
            candidate_counts={
                int(level): int(count)
                for level, count in stats_payload.get(
                    "candidate_counts", {}
                ).items()
            },
        )
        result = MiningResult(
            algorithm=str(payload["algorithm"]),
            period=period,
            min_conf=float(payload["min_conf"]),
            num_periods=int(payload["num_periods"]),
            counts=counts,
            stats=stats,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise MiningError(f"malformed mining-result payload: {error}") from error
    for pattern in result:
        if pattern.period != period:
            raise MiningError(
                f"pattern {pattern} does not match period {period}"
            )
    return result


def dumps_result(result: MiningResult, indent: int | None = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def loads_result(text: str) -> MiningResult:
    """Parse a result from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise MiningError(f"invalid JSON: {error}") from error
    return result_from_dict(payload)


def save_result(result: MiningResult, path: str | Path) -> None:
    """Write a result as JSON to a file."""
    Path(path).write_text(dumps_result(result) + "\n", encoding="utf-8")


def load_result(path: str | Path) -> MiningResult:
    """Read a result previously written by :func:`save_result`."""
    source = Path(path)
    if not source.exists():
        raise MiningError(f"result file not found: {source}")
    return loads_result(source.read_text(encoding="utf-8"))
