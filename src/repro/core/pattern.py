"""Pattern algebra for partial periodic pattern mining.

A *pattern* of period ``p`` (Han, Dong & Yin, ICDE 1999, Section 2) is a
sequence ``s_1 ... s_p`` where each position is either the don't-care symbol
``*`` or a non-empty set of features.  A pattern is *true* in a period
segment when, at every non-``*`` position, all of the pattern's letters occur
in the segment's feature set at that offset.

Two equivalent views of a pattern are used throughout the library:

* the **positional view** — a tuple of ``frozenset`` objects, one per offset,
  with the empty set standing for ``*``; this is the paper's notation and is
  what :class:`Pattern` stores;
* the **letter-set view** — the set of ``(offset, feature)`` pairs; pattern
  containment (the subpattern relation) is exactly set containment in this
  view, which is what the mining algorithms operate on internally.

The paper's *L-length* is the number of non-``*`` positions; the *letter
count* is the total number of ``(offset, feature)`` letters.  They differ
when a position carries more than one feature, e.g. ``a{b1,b2}*d*`` has
L-length 3 and letter count 4.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import lru_cache
from typing import TYPE_CHECKING, Union

from repro.core.errors import PatternError

if TYPE_CHECKING:
    from repro.encoding.vocabulary import LetterVocabulary

#: A single letter of a pattern: which offset within the period, which feature.
Letter = tuple[int, str]

#: Anything acceptable as one position of a pattern.
PositionLike = Union[str, None, Iterable[str]]

#: The don't-care marker used in string renderings.
DONT_CARE = "*"

#: Shared empty position — most positions of a mined pattern are ``*``.
_EMPTY_POSITION: frozenset[str] = frozenset()


def _normalize_position(value: PositionLike) -> frozenset[str]:
    """Coerce one user-supplied position into a frozenset of features.

    ``None`` and ``"*"`` mean don't-care (empty set).  A plain string is a
    single feature; any other iterable is a set of features.
    """
    if value is None:
        return frozenset()
    if isinstance(value, str):
        if value == DONT_CARE:
            return frozenset()
        if not value:
            raise PatternError("empty string is not a valid feature")
        return frozenset((value,))
    features = frozenset(value)
    for feature in features:
        if not isinstance(feature, str) or not feature:
            raise PatternError(f"features must be non-empty strings, got {feature!r}")
        if feature == DONT_CARE:
            raise PatternError("'*' cannot be used as a feature name")
    return features


def _format_position(features: frozenset[str]) -> str:
    """Render one position in the paper's notation (``a``, ``{b1,b2}`` or ``*``)."""
    if not features:
        return DONT_CARE
    if len(features) == 1:
        (feature,) = features
        if len(feature) == 1:
            return feature
    return "{" + ",".join(sorted(features)) + "}"


class Pattern:
    """An immutable partial periodic pattern of a fixed period.

    Instances are hashable and totally orderable (by period, then by the
    sorted letter list), so they can be used as dictionary keys and sorted
    deterministically in reports.

    Parameters
    ----------
    positions:
        One entry per offset of the period.  Each entry is ``"*"``/``None``
        for don't-care, a feature string, or an iterable of feature strings.

    Examples
    --------
    >>> p = Pattern(["a", ["b1", "b2"], "*", "d", "*"])
    >>> str(p)
    'a{b1,b2}*d*'
    >>> p.period, p.l_length, p.letter_count
    (5, 3, 4)
    """

    __slots__ = ("_positions", "_letters", "_hash")

    def __init__(self, positions: Iterable[PositionLike]):
        normalized = tuple(_normalize_position(value) for value in positions)
        if not normalized:
            raise PatternError("a pattern must have at least one position")
        self._positions: tuple[frozenset[str], ...] = normalized
        self._letters: frozenset[Letter] = frozenset(
            (offset, feature)
            for offset, features in enumerate(normalized)
            for feature in features
        )
        self._hash = hash((self._positions,))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_normalized(
        cls,
        positions: tuple[frozenset[str], ...],
        letters: frozenset[Letter],
    ) -> "Pattern":
        """Trusted constructor: both views already built and validated.

        Result materialization turns thousands of letter sets into patterns
        at once; skipping per-position re-normalization there keeps pattern
        assembly out of the mining profile.
        """
        pattern = cls.__new__(cls)
        pattern._positions = positions
        pattern._letters = letters
        pattern._hash = hash((positions,))
        return pattern

    @classmethod
    def from_letters(cls, period: int, letters: Iterable[Letter]) -> "Pattern":
        """Build a pattern from its letter-set view.

        Parameters
        ----------
        period:
            The pattern length; every letter offset must fall in
            ``range(period)``.
        letters:
            Iterable of ``(offset, feature)`` pairs.
        """
        if period < 1:
            raise PatternError(f"period must be >= 1, got {period}")
        letter_set = (
            letters if isinstance(letters, frozenset) else frozenset(letters)
        )
        return _pattern_from_letter_set(cls, period, letter_set)

    @classmethod
    def from_string(cls, text: str) -> "Pattern":
        """Parse the paper's compact notation, e.g. ``"a{b1,b2}*d*"``.

        Each bare character is a single-feature position, ``*`` is don't-care
        and ``{f1,f2,...}`` is a multi-feature (or multi-character-name)
        position.
        """
        if not text:
            raise PatternError("cannot parse an empty pattern string")
        positions: list[PositionLike] = []
        index = 0
        while index < len(text):
            char = text[index]
            if char == "{":
                end = text.find("}", index)
                if end < 0:
                    raise PatternError(f"unclosed '{{' in pattern string {text!r}")
                body = text[index + 1 : end]
                features = [part for part in body.split(",") if part]
                if not features:
                    raise PatternError(f"empty feature group in {text!r}")
                positions.append(features)
                index = end + 1
            elif char == "}":
                raise PatternError(f"unmatched '}}' in pattern string {text!r}")
            else:
                positions.append(char)
                index += 1
        return cls(positions)

    @classmethod
    def from_mask(
        cls, vocab: "LetterVocabulary", mask: int
    ) -> "Pattern":
        """Decode an encoded letter bitmask back into a pattern.

        The boundary between the encoded mining kernels
        (:mod:`repro.encoding`) and the public pattern API: masks stay
        masks throughout mining and decode exactly once, here, when a
        result is assembled.  The vocabulary must carry its period.
        """
        period = vocab.period
        if period is None:
            raise PatternError(
                "cannot decode a pattern from a vocabulary without a period"
            )
        return cls.from_letters(period, vocab.iter_mask(mask))

    @classmethod
    def dont_care(cls, period: int) -> "Pattern":
        """The all-``*`` pattern of the given period (the empty letter set)."""
        if period < 1:
            raise PatternError(f"period must be >= 1, got {period}")
        return cls([None] * period)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def positions(self) -> tuple[frozenset[str], ...]:
        """The positional view: one frozenset per offset (empty = ``*``)."""
        return self._positions

    @property
    def period(self) -> int:
        """The pattern's period (its length in positions)."""
        return len(self._positions)

    @property
    def letters(self) -> frozenset[Letter]:
        """The letter-set view: all ``(offset, feature)`` pairs."""
        return self._letters

    @property
    def l_length(self) -> int:
        """The paper's L-length: number of non-``*`` positions."""
        return sum(1 for features in self._positions if features)

    @property
    def letter_count(self) -> int:
        """Total number of letters; >= :attr:`l_length`."""
        return len(self._letters)

    @property
    def is_trivial(self) -> bool:
        """True for the all-don't-care pattern, which matches every segment."""
        return not self._letters

    # ------------------------------------------------------------------
    # Relations and matching
    # ------------------------------------------------------------------

    def is_subpattern_of(self, other: "Pattern") -> bool:
        """True if ``self`` can be obtained from ``other`` by dropping letters.

        Per the paper, subpatterns have the same period; comparing patterns
        of different periods raises :class:`PatternError`.
        """
        if self.period != other.period:
            raise PatternError(
                "subpattern relation requires equal periods "
                f"({self.period} != {other.period})"
            )
        return self._letters <= other._letters

    def is_superpattern_of(self, other: "Pattern") -> bool:
        """True if every letter of ``other`` appears in ``self``."""
        return other.is_subpattern_of(self)

    def matches(self, segment: Sequence[frozenset[str]]) -> bool:
        """True if the pattern is *true* in the given period segment.

        ``segment`` must have exactly ``period`` slots, each a set of
        features.
        """
        if len(segment) != self.period:
            raise PatternError(
                f"segment length {len(segment)} != pattern period {self.period}"
            )
        return all(
            features <= segment[offset]
            for offset, features in enumerate(self._positions)
            if features
        )

    def restrict_to_segment(self, segment: Sequence[frozenset[str]]) -> "Pattern":
        """The maximal subpattern of ``self`` that is true in ``segment``.

        This is exactly the *hit* of Algorithm 3.2: keep, at each position,
        only the letters that occur in the segment.
        """
        if len(segment) != self.period:
            raise PatternError(
                f"segment length {len(segment)} != pattern period {self.period}"
            )
        return Pattern(
            features & segment[offset]
            for offset, features in enumerate(self._positions)
        )

    def union(self, other: "Pattern") -> "Pattern":
        """The least common superpattern (letter-set union)."""
        if self.period != other.period:
            raise PatternError(
                f"cannot union patterns of periods {self.period} and {other.period}"
            )
        return Pattern(
            mine | theirs
            for mine, theirs in zip(self._positions, other._positions)
        )

    def intersection(self, other: "Pattern") -> "Pattern":
        """The greatest common subpattern (letter-set intersection)."""
        if self.period != other.period:
            raise PatternError(
                f"cannot intersect patterns of periods {self.period} "
                f"and {other.period}"
            )
        return Pattern(
            mine & theirs
            for mine, theirs in zip(self._positions, other._positions)
        )

    def without_letter(self, offset: int, feature: str) -> "Pattern":
        """A copy of the pattern with one letter removed.

        This is the child-derivation step of the max-subpattern tree: each
        edge of the tree removes exactly one letter.
        """
        letter = (offset, feature)
        if letter not in self._letters:
            raise PatternError(f"letter {letter!r} not present in {self}")
        return Pattern.from_letters(self.period, self._letters - {letter})

    def subpatterns(self, min_letters: int = 1) -> Iterable["Pattern"]:
        """Yield every subpattern with at least ``min_letters`` letters.

        The number of subpatterns is ``2**letter_count``; intended for small
        patterns (tests, the derivation oracle), not for mining hot paths.
        """
        letters = sorted(self._letters)
        total = len(letters)
        for mask in range(1 << total):
            if mask.bit_count() < min_letters:
                continue
            chosen = [letters[i] for i in range(total) if mask >> i & 1]
            yield Pattern.from_letters(self.period, chosen)

    def rotated(self, shift: int) -> "Pattern":
        """The pattern phase-shifted by ``shift`` offsets (cyclically).

        Useful for aligning patterns mined from series whose segmentation
        started at different phases: a pattern at offset ``o`` moves to
        ``(o + shift) % period``.  Negative shifts rotate backwards.
        """
        period = self.period
        return Pattern.from_letters(
            period,
            [
                ((offset + shift) % period, feature)
                for offset, feature in self._letters
            ],
        )

    def phase_matches(self, other: "Pattern") -> bool:
        """True if some rotation of ``self`` equals ``other``.

        Patterns of different periods never phase-match.
        """
        if self.period != other.period:
            return False
        if self.letter_count != other.letter_count:
            return False
        return any(
            self.rotated(shift) == other for shift in range(self.period)
        )

    def encode(self, vocab: "LetterVocabulary") -> int:
        """This pattern's letter set as a bitmask over ``vocab``.

        Inverse of :meth:`from_mask`; raises
        :class:`~repro.core.errors.EncodingError` when a letter is not in
        the vocabulary.
        """
        return vocab.encode_letters(self._letters)

    def sorted_letters(self) -> list[Letter]:
        """Letters in the canonical ``(offset, feature)`` order.

        The max-subpattern tree's "missing letter in order" navigation
        (Algorithm 4.1) relies on this ordering.
        """
        return sorted(self._letters)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._positions == other._positions

    def __lt__(self, other: "Pattern") -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (self.period, sorted(self._letters)) < (
            other.period,
            sorted(other._letters),
        )

    def __le__(self, other: "Pattern") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._positions)

    def __str__(self) -> str:
        return "".join(_format_position(features) for features in self._positions)

    def __repr__(self) -> str:
        return f"Pattern({str(self)!r})"


@lru_cache(maxsize=1 << 16)
def _pattern_from_letter_set(
    cls: type[Pattern], period: int, letters: frozenset[Letter]
) -> Pattern:
    """Validated letter-set construction behind an interning cache.

    Result materialization and re-queries rebuild the very same patterns
    over and over (both miners of a Figure-2 run emit identical result
    sets, and every re-query at a new ``min_conf`` re-derives a subset), so
    identical ``(period, letter set)`` requests share one immutable
    instance.  Invalid inputs raise and are never cached.
    """
    grouped: dict[int, set[str]] = {}
    for offset, feature in letters:
        if not 0 <= offset < period:
            raise PatternError(
                f"letter offset {offset} out of range for period {period}"
            )
        if not isinstance(feature, str) or not feature:
            raise PatternError(
                f"features must be non-empty strings, got {feature!r}"
            )
        if feature == DONT_CARE:
            raise PatternError("'*' cannot be used as a feature name")
        grouped.setdefault(offset, set()).add(feature)
    position_list: list[frozenset[str]] = [_EMPTY_POSITION] * period
    for offset, features in grouped.items():
        position_list[offset] = frozenset(features)
    return cls._from_normalized(tuple(position_list), letters)


def letters_to_pattern(period: int, letters: Iterable[Letter]) -> Pattern:
    """Module-level alias of :meth:`Pattern.from_letters` for functional code."""
    return Pattern.from_letters(period, letters)
