"""Algorithm 3.2 — the max-subpattern hit-set method.

The paper's main contribution: mine all frequent partial periodic patterns
of one period in exactly **two scans** of the series.

Scan 1 finds the frequent 1-patterns ``F1`` and assembles the candidate
max-pattern ``C_max``.  Scan 2 registers, for every period segment, its hit
(the maximal subpattern of ``C_max`` true in the segment) in a
max-subpattern tree.  The frequency count of every pattern is then derived
from the tree alone (Algorithm 4.2) — no further passes over the data.

Both scans run on the batched kernels by default (``kernel="batched"``):
scan 2 encodes into a contiguous :class:`~repro.kernels.store.SegmentStore`
and the derivation answers every candidate level from one superset-sum
pass.  ``kernel="columnar"`` goes further: a *single* encode pass interns
the series into the store (optionally spilling to an mmap'd on-disk file
via :class:`~repro.kernels.store.StoreOptions`), and both scans then run
as vectorized numpy ops over the store column — letter counting as one
unpack-and-sum pass, hit collection as chunked ``np.unique`` projected
onto the tree vocabulary.  Vocabularies too wide to pack (> 64 letters)
fall back to the batched path transparently.  A
:class:`~repro.kernels.cache.CountCache` removes the scans entirely on
re-queries of the same series/period (the paper's §4.2 re-mining
scenario): the cached scan-1 letter counts serve any ``min_conf``, and
the cached scan-2 hit table serves any equal-or-higher ``min_conf`` by
projection.  ``kernel="legacy"`` keeps the original per-candidate path as
the escape hatch and equivalence oracle.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager

from repro.core.counting import (
    frequent_letter_set,
    letter_counts_for_segments,
    min_count,
)
from repro.core.errors import MiningError
from repro.core.maxpattern import FrequentOnePatterns, find_frequent_one_patterns
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.tree.max_subpattern_tree import MaxSubpatternTree
from repro.timeseries.feature_series import FeatureSeries

if TYPE_CHECKING:
    from repro.kernels.cache import CountCache
    from repro.kernels.profile import MiningProfile
    from repro.kernels.store import SegmentStore, StoreOptions

#: The selectable counting kernels (mirrors :data:`repro.kernels.KERNELS`).
_KERNELS = ("columnar", "batched", "legacy")


def _check_kernel(kernel: str) -> None:
    if kernel not in _KERNELS:
        raise MiningError(
            f"unknown kernel {kernel!r}; use 'columnar', 'batched' or 'legacy'"
        )


def _stage(
    profile: "MiningProfile | None", name: str, items: int = 0
) -> ContextManager:
    """A profile stage context, or a no-op when profiling is off."""
    if profile is None:
        return nullcontext()
    return profile.stage(name, items=items)


def _project_hits(store: "SegmentStore", target: LetterVocabulary) -> Counter:
    """The store's distinct masks projected onto ``target``, >= 2-letter only.

    This is the scan-2 "hit" computation run over the already-encoded
    column: remapping onto the tree vocabulary drops infrequent letters
    (the project-onto-``C_max`` step) and the popcount filter keeps the
    masks that actually land in the tree.  Packed stores project every
    distinct mask at once with the vectorized
    :func:`~repro.kernels.columnar.remap_counts` sweep; the per-mask
    Python remap only remains for the wide-vocabulary fallback.
    """
    table = store.vocab.remap_table(target)
    distinct = store.distinct_counts()
    if store.column() is not None:
        from repro.kernels import columnar as _columnar

        return _columnar.remap_counts(distinct, table)
    hits: Counter = Counter()
    for mask, count in distinct.items():
        hit = remap_mask(mask, table)
        if hit.bit_count() >= 2:
            hits[hit] += count
    return hits


class _ColumnarScan:
    """Lazily-built state shared by both scans under ``kernel="columnar"``.

    The columnar tier pays for exactly one pass over the raw series: the
    first scan that needs the data interns it into a packed
    :class:`~repro.kernels.store.SegmentStore` (spilling to disk when
    :class:`~repro.kernels.store.StoreOptions` says so), and every later
    kernel runs over the stored column without touching the series again.
    :meth:`count_scan` books that single pass in ``stats.scans`` exactly
    once, whichever scan triggers the build.  A vocabulary too wide to
    pack (> 64 letters) makes :meth:`store` return ``None`` and the caller
    falls back to the batched path.
    """

    __slots__ = ("series", "period", "options", "counted", "_store", "_built")

    def __init__(
        self,
        series: FeatureSeries,
        period: int,
        options: "StoreOptions | None",
    ) -> None:
        self.series = series
        self.period = period
        self.options = options
        self.counted = False
        self._store: "SegmentStore | None" = None
        self._built = False

    def store(self) -> "SegmentStore | None":
        """The interned store, or ``None`` when the vocabulary is too wide."""
        if not self._built:
            self._built = True
            from repro.kernels.store import SegmentStore, WideVocabularyError

            try:
                self._store = SegmentStore.from_series_interned(
                    self.series, self.period, options=self.options
                )
            except WideVocabularyError:
                self._store = None
        return self._store

    def count_scan(self, stats: MiningStats) -> None:
        """Book the single encode pass, exactly once across both scans."""
        if not self.counted:
            stats.scans += 1
            self.counted = True


def _scan1(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    cstate: "_ColumnarScan | None",
    cache: "CountCache | None",
    cache_key: object,
    profile: "MiningProfile | None",
    stats: MiningStats,
) -> FrequentOnePatterns:
    """Scan 1, consulting the count cache for the full letter counts.

    Without a cache or columnar state this is
    :func:`find_frequent_one_patterns` verbatim.  With a cache, the
    *unfiltered* letter counts are fetched or computed and stored, so a
    future re-query at any ``min_conf`` rebuilds its own F1 from the
    cached counts without a scan.  With columnar state, the counts come
    from one vectorized pass over the interned store column — the same
    full counts, so they remain cache-compatible with the other kernels.
    """
    if cache is None and cstate is None:
        with _stage(profile, "scan1"):
            one_patterns = find_frequent_one_patterns(series, period, min_conf)
        stats.scans += 1
        if profile is not None:
            profile.add_items("scan1", one_patterns.num_periods)
        return one_patterns
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    letter_counts = None
    if cache is not None:
        from repro.kernels.cache import CacheKey

        assert isinstance(cache_key, CacheKey)
        letter_counts = cache.get_letter_counts(cache_key)
        if letter_counts is not None and profile is not None:
            profile.count("cache_hits")
    if letter_counts is None:
        if cache is not None and profile is not None:
            profile.count("cache_misses")
        store = cstate.store() if cstate is not None else None
        with _stage(profile, "scan1", items=num_periods):
            if store is not None and cstate is not None:
                letter_counts = store.letter_counts()
                cstate.count_scan(stats)
            else:
                letter_counts = letter_counts_for_segments(
                    series.segments(period)
                )
                stats.scans += 1
        if cache is not None:
            cache.put_letter_counts(cache_key, letter_counts)
    threshold = min_count(min_conf, num_periods)
    return FrequentOnePatterns(
        period=period,
        num_periods=num_periods,
        threshold=threshold,
        letters=frequent_letter_set(letter_counts, threshold),
    )


def _scan2(
    series: FeatureSeries,
    one_patterns: FrequentOnePatterns,
    encode: bool,
    kernel: str,
    cstate: "_ColumnarScan | None",
    cache: "CountCache | None",
    cache_key: object,
    profile: "MiningProfile | None",
    stats: MiningStats,
) -> MaxSubpatternTree:
    """Scan 2: the populated max-subpattern tree, from cache when possible.

    The columnar kernel reuses (or builds) the interned store and collects
    hits as a vectorized distinct pass projected onto the tree vocabulary;
    the batched kernel encodes the series into a contiguous
    :class:`~repro.kernels.store.SegmentStore` and inserts once per
    distinct hit; the legacy kernel keeps the original per-segment
    insertion.  A cache hit rebuilds the tree from the memoized hit table
    — zero scans — and a miss stores the freshly built table.
    """
    tree = MaxSubpatternTree(one_patterns.max_pattern)
    letter_order = tree.vocab.letters
    if cache is not None:
        from repro.kernels.cache import CacheKey

        assert isinstance(cache_key, CacheKey)
        hit_table = cache.get_hit_table(cache_key, letter_order)
        if hit_table is not None:
            if profile is not None:
                profile.count("cache_hits")
            with _stage(profile, "tree", items=len(hit_table)):
                for mask, count in hit_table.items():
                    tree.insert_mask(mask, count=count)
            return tree
        if profile is not None:
            profile.count("cache_misses")
    store = cstate.store() if cstate is not None else None
    if store is not None and cstate is not None:
        with _stage(profile, "scan2", items=one_patterns.num_periods):
            hits = _project_hits(store, tree.vocab)
            cstate.count_scan(stats)
        with _stage(profile, "tree", items=len(hits)):
            for mask, count in hits.items():
                tree.insert_mask(mask, count=count)
        if profile is not None:
            profile.count("distinct_hits", len(hits))
    elif encode and kernel in ("batched", "columnar"):
        from repro.kernels.store import SegmentStore

        with _stage(profile, "scan2", items=one_patterns.num_periods):
            batched_store = SegmentStore.from_series(
                series, one_patterns.period, tree.vocab
            )
            hits = batched_store.hit_counter()
        stats.scans += 1
        with _stage(profile, "tree", items=len(hits)):
            for mask, count in hits.items():
                tree.insert_mask(mask, count=count)
        if profile is not None:
            profile.count("distinct_hits", len(hits))
    else:
        with _stage(profile, "scan2", items=one_patterns.num_periods):
            tree.insert_all_segments(series, encode=encode)
        stats.scans += 1
    if cache is not None:
        cache.put_hit_table(cache_key, letter_order, tree.stored_hits())
    return tree


def mine_single_period_hitset(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    max_letters: int | None = None,
    encode: bool = True,
    kernel: str = "batched",
    cache: "CountCache | None" = None,
    profile: "MiningProfile | None" = None,
    store: "StoreOptions | None" = None,
) -> MiningResult:
    """Find all frequent partial periodic patterns of one period (Alg. 3.2).

    Parameters
    ----------
    series:
        The feature series (or a scan-counting wrapper).
    period:
        The period to mine.
    min_conf:
        Confidence threshold in ``(0, 1]``.
    max_letters:
        Optional cap on derived pattern letter count.  The complete
        frequent set is exponential on degenerate inputs; cap it when only
        short patterns are needed.  ``None`` derives everything.
    encode:
        Default ``True`` runs scan 2 on the encoded hot path — one bitmask
        per segment, one tree insertion per *distinct* hit.  ``False``
        keeps the legacy per-segment letter-set insertion (the CLI's
        ``--no-encode`` escape hatch for bisecting regressions).  Results
        are identical either way; still exactly two scans.
    kernel:
        ``"batched"`` (default) runs scan 2 on the contiguous segment
        store and the derivation on the single-pass superset-sum kernel;
        ``"columnar"`` interns the series into the store in one pass and
        runs both scans as vectorized numpy ops over the column (falling
        back to batched when the vocabulary exceeds 64 letters);
        ``"legacy"`` keeps the original per-candidate paths (escape hatch
        and equivalence oracle).  Results are identical.
    cache:
        Optional :class:`~repro.kernels.cache.CountCache`.  Cold queries
        populate it; re-queries of the same series and period answer from
        it without scanning (any ``min_conf`` for scan 1; equal-or-higher
        ``min_conf`` for scan 2, by projection).
    profile:
        Optional :class:`~repro.kernels.profile.MiningProfile` accumulating
        per-stage wall times and cache counters.
    store:
        Optional :class:`~repro.kernels.store.StoreOptions` controlling
        where the columnar kernel's segment store lives; with a
        ``directory`` set, stores crossing the spill threshold encode
        straight to an mmap'd on-disk file so the mine runs in bounded
        memory.  Only meaningful with ``kernel="columnar"`` (and
        ``encode=True``); raises otherwise.

    Returns
    -------
    MiningResult
        Identical frequent set and counts to Algorithm 3.1 (a tested
        invariant), obtained with at most two scans — fewer on cache hits.
    """
    if max_letters is not None and max_letters < 1:
        raise MiningError(f"max_letters must be >= 1, got {max_letters}")
    _check_kernel(kernel)
    cstate: _ColumnarScan | None = None
    if kernel == "columnar" and encode:
        cstate = _ColumnarScan(series, period, store)
    elif store is not None:
        raise MiningError(
            "store options require kernel='columnar' with encode=True"
        )
    stats = MiningStats()
    cache_key = cache.key_for(series, period) if cache is not None else None
    one_patterns = _scan1(
        series, period, min_conf, cstate, cache, cache_key, profile, stats
    )
    if one_patterns.is_empty:
        return MiningResult(
            algorithm="hitset",
            period=period,
            min_conf=min_conf,
            num_periods=one_patterns.num_periods,
            counts={},
            stats=stats,
        )

    tree = _scan2(
        series,
        one_patterns,
        encode,
        kernel,
        cstate,
        cache,
        cache_key,
        profile,
        stats,
    )
    stats.tree_nodes = tree.node_count
    stats.hit_set_size = tree.hit_set_size

    with _stage(profile, "derive"):
        letter_counts, candidate_counts = tree.derive_frequent(
            one_patterns.threshold,
            one_patterns.letters,
            max_letters=max_letters,
            kernel=kernel,
        )
    stats.candidate_counts = candidate_counts
    if profile is not None:
        profile.add_items("derive", sum(candidate_counts.values()))
    patterns = {
        Pattern.from_letters(period, letters): count
        for letters, count in letter_counts.items()
    }
    return MiningResult(
        algorithm="hitset",
        period=period,
        min_conf=min_conf,
        num_periods=one_patterns.num_periods,
        counts=patterns,
        stats=stats,
    )


def build_hit_tree(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    encode: bool = True,
    kernel: str = "batched",
) -> tuple[MaxSubpatternTree, FrequentOnePatterns]:
    """Run only the two scans and return the populated tree plus F1.

    Useful when the caller wants to perform a custom derivation — e.g. the
    MaxMiner-style maximal-pattern search in :mod:`repro.core.maximal`.
    Returns ``(tree, one_patterns)``; raises via
    :func:`~repro.core.maxpattern.find_frequent_one_patterns` on an invalid
    period and :class:`~repro.core.errors.MiningError` when F1 is empty.
    ``encode`` and ``kernel`` select the scan-2 path exactly as in
    :func:`mine_single_period_hitset`.
    """
    _check_kernel(kernel)
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    stats = MiningStats(scans=1)
    cstate: _ColumnarScan | None = None
    if kernel == "columnar" and encode:
        cstate = _ColumnarScan(series, period, None)
    tree = _scan2(
        series, one_patterns, encode, kernel, cstate, None, None, None, stats
    )
    return tree, one_patterns


def mine_store(
    store: "SegmentStore",
    min_conf: float,
    max_letters: int | None = None,
    kernel: str = "columnar",
    profile: "MiningProfile | None" = None,
) -> MiningResult:
    """Mine a prebuilt :class:`~repro.kernels.store.SegmentStore` directly.

    The out-of-core entry point: a store persisted with
    :meth:`~repro.kernels.store.SegmentStore.to_file` and reopened with
    :meth:`~repro.kernels.store.SegmentStore.from_file` is an mmap'd
    column, so this mines series far larger than RAM — both scans stream
    the column in bounded chunks and only the distinct-mask table and the
    tree live in memory.  Results are identical to running
    :func:`mine_single_period_hitset` over the series the store encodes
    (a tested invariant); the booked scan count is 1 because the encode
    pass already happened when the store was built.
    """
    _check_kernel(kernel)
    if max_letters is not None and max_letters < 1:
        raise MiningError(f"max_letters must be >= 1, got {max_letters}")
    stats = MiningStats()
    num_periods = len(store)
    if num_periods == 0:
        raise MiningError("segment store holds no segments; nothing to mine")
    with _stage(profile, "scan1", items=num_periods):
        letter_counts = store.letter_counts()
    stats.scans += 1
    threshold = min_count(min_conf, num_periods)
    one_patterns = FrequentOnePatterns(
        period=store.period,
        num_periods=num_periods,
        threshold=threshold,
        letters=frequent_letter_set(letter_counts, threshold),
    )
    if one_patterns.is_empty:
        return MiningResult(
            algorithm="hitset",
            period=store.period,
            min_conf=min_conf,
            num_periods=num_periods,
            counts={},
            stats=stats,
        )
    tree = MaxSubpatternTree(one_patterns.max_pattern)
    with _stage(profile, "scan2", items=num_periods):
        hits = _project_hits(store, tree.vocab)
    with _stage(profile, "tree", items=len(hits)):
        for mask, count in hits.items():
            tree.insert_mask(mask, count=count)
    if profile is not None:
        profile.count("distinct_hits", len(hits))
    stats.tree_nodes = tree.node_count
    stats.hit_set_size = tree.hit_set_size
    with _stage(profile, "derive"):
        derived_counts, candidate_counts = tree.derive_frequent(
            one_patterns.threshold,
            one_patterns.letters,
            max_letters=max_letters,
            kernel=kernel,
        )
    stats.candidate_counts = candidate_counts
    if profile is not None:
        profile.add_items("derive", sum(candidate_counts.values()))
    patterns = {
        Pattern.from_letters(store.period, letters): count
        for letters, count in derived_counts.items()
    }
    return MiningResult(
        algorithm="hitset",
        period=store.period,
        min_conf=min_conf,
        num_periods=num_periods,
        counts=patterns,
        stats=stats,
    )
