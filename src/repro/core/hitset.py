"""Algorithm 3.2 — the max-subpattern hit-set method.

The paper's main contribution: mine all frequent partial periodic patterns
of one period in exactly **two scans** of the series.

Scan 1 finds the frequent 1-patterns ``F1`` and assembles the candidate
max-pattern ``C_max``.  Scan 2 registers, for every period segment, its hit
(the maximal subpattern of ``C_max`` true in the segment) in a
max-subpattern tree.  The frequency count of every pattern is then derived
from the tree alone (Algorithm 4.2) — no further passes over the data.
"""

from __future__ import annotations

from repro.core.errors import MiningError
from repro.core.maxpattern import FrequentOnePatterns, find_frequent_one_patterns
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.tree.max_subpattern_tree import MaxSubpatternTree
from repro.timeseries.feature_series import FeatureSeries


def mine_single_period_hitset(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    max_letters: int | None = None,
    encode: bool = True,
) -> MiningResult:
    """Find all frequent partial periodic patterns of one period (Alg. 3.2).

    Parameters
    ----------
    series:
        The feature series (or a scan-counting wrapper).
    period:
        The period to mine.
    min_conf:
        Confidence threshold in ``(0, 1]``.
    max_letters:
        Optional cap on derived pattern letter count.  The complete
        frequent set is exponential on degenerate inputs; cap it when only
        short patterns are needed.  ``None`` derives everything.
    encode:
        Default ``True`` runs scan 2 on the encoded hot path — one bitmask
        per segment, one tree insertion per *distinct* hit.  ``False``
        keeps the legacy per-segment letter-set insertion (the CLI's
        ``--no-encode`` escape hatch for bisecting regressions).  Results
        are identical either way; still exactly two scans.

    Returns
    -------
    MiningResult
        Identical frequent set and counts to Algorithm 3.1 (a tested
        invariant), obtained with exactly two scans.
    """
    if max_letters is not None and max_letters < 1:
        raise MiningError(f"max_letters must be >= 1, got {max_letters}")
    stats = MiningStats()
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    stats.scans = 1
    if one_patterns.is_empty:
        return MiningResult(
            algorithm="hitset",
            period=period,
            min_conf=min_conf,
            num_periods=one_patterns.num_periods,
            counts={},
            stats=stats,
        )

    tree = MaxSubpatternTree(one_patterns.max_pattern)
    tree.insert_all_segments(series, encode=encode)
    stats.scans = 2
    stats.tree_nodes = tree.node_count
    stats.hit_set_size = tree.hit_set_size

    letter_counts, candidate_counts = tree.derive_frequent(
        one_patterns.threshold, one_patterns.letters, max_letters=max_letters
    )
    stats.candidate_counts = candidate_counts
    patterns = {
        Pattern.from_letters(period, letters): count
        for letters, count in letter_counts.items()
    }
    return MiningResult(
        algorithm="hitset",
        period=period,
        min_conf=min_conf,
        num_periods=one_patterns.num_periods,
        counts=patterns,
        stats=stats,
    )


def build_hit_tree(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    encode: bool = True,
) -> tuple[MaxSubpatternTree, FrequentOnePatterns]:
    """Run only the two scans and return the populated tree plus F1.

    Useful when the caller wants to perform a custom derivation — e.g. the
    MaxMiner-style maximal-pattern search in :mod:`repro.core.maximal`.
    Returns ``(tree, one_patterns)``; raises via
    :func:`~repro.core.maxpattern.find_frequent_one_patterns` on an invalid
    period and :class:`~repro.core.errors.MiningError` when F1 is empty.
    ``encode`` selects the scan-2 path exactly as in
    :func:`mine_single_period_hitset`.
    """
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    tree = MaxSubpatternTree(one_patterns.max_pattern)
    tree.insert_all_segments(series, encode=encode)
    return tree, one_patterns
