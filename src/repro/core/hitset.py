"""Algorithm 3.2 — the max-subpattern hit-set method.

The paper's main contribution: mine all frequent partial periodic patterns
of one period in exactly **two scans** of the series.

Scan 1 finds the frequent 1-patterns ``F1`` and assembles the candidate
max-pattern ``C_max``.  Scan 2 registers, for every period segment, its hit
(the maximal subpattern of ``C_max`` true in the segment) in a
max-subpattern tree.  The frequency count of every pattern is then derived
from the tree alone (Algorithm 4.2) — no further passes over the data.

Both scans run on the batched kernels by default (``kernel="batched"``):
scan 2 encodes into a contiguous :class:`~repro.kernels.store.SegmentStore`
and the derivation answers every candidate level from one superset-sum
pass.  A :class:`~repro.kernels.cache.CountCache` removes the scans
entirely on re-queries of the same series/period (the paper's §4.2
re-mining scenario): the cached scan-1 letter counts serve any
``min_conf``, and the cached scan-2 hit table serves any equal-or-higher
``min_conf`` by projection.  ``kernel="legacy"`` keeps the original
per-candidate path as the escape hatch and equivalence oracle.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager

from repro.core.counting import (
    frequent_letter_set,
    letter_counts_for_segments,
    min_count,
)
from repro.core.errors import MiningError
from repro.core.maxpattern import FrequentOnePatterns, find_frequent_one_patterns
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.tree.max_subpattern_tree import MaxSubpatternTree
from repro.timeseries.feature_series import FeatureSeries

if TYPE_CHECKING:
    from repro.kernels.cache import CountCache
    from repro.kernels.profile import MiningProfile

#: The selectable counting kernels (mirrors :data:`repro.kernels.KERNELS`).
_KERNELS = ("batched", "legacy")


def _check_kernel(kernel: str) -> None:
    if kernel not in _KERNELS:
        raise MiningError(
            f"unknown kernel {kernel!r}; use 'batched' or 'legacy'"
        )


def _stage(
    profile: "MiningProfile | None", name: str, items: int = 0
) -> ContextManager:
    """A profile stage context, or a no-op when profiling is off."""
    if profile is None:
        return nullcontext()
    return profile.stage(name, items=items)


def _scan1(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    cache: "CountCache | None",
    cache_key: object,
    profile: "MiningProfile | None",
    stats: MiningStats,
) -> FrequentOnePatterns:
    """Scan 1, consulting the count cache for the full letter counts.

    Without a cache this is :func:`find_frequent_one_patterns` verbatim.
    With one, the *unfiltered* letter counts are fetched or computed and
    stored, so a future re-query at any ``min_conf`` rebuilds its own F1
    from the cached counts without a scan.
    """
    if cache is None:
        with _stage(profile, "scan1"):
            one_patterns = find_frequent_one_patterns(series, period, min_conf)
        stats.scans += 1
        if profile is not None:
            profile.add_items("scan1", one_patterns.num_periods)
        return one_patterns
    from repro.kernels.cache import CacheKey

    assert isinstance(cache_key, CacheKey)
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    letter_counts = cache.get_letter_counts(cache_key)
    if letter_counts is None:
        if profile is not None:
            profile.count("cache_misses")
        with _stage(profile, "scan1", items=num_periods):
            letter_counts = letter_counts_for_segments(series.segments(period))
        stats.scans += 1
        cache.put_letter_counts(cache_key, letter_counts)
    elif profile is not None:
        profile.count("cache_hits")
    threshold = min_count(min_conf, num_periods)
    return FrequentOnePatterns(
        period=period,
        num_periods=num_periods,
        threshold=threshold,
        letters=frequent_letter_set(letter_counts, threshold),
    )


def _scan2(
    series: FeatureSeries,
    one_patterns: FrequentOnePatterns,
    encode: bool,
    kernel: str,
    cache: "CountCache | None",
    cache_key: object,
    profile: "MiningProfile | None",
    stats: MiningStats,
) -> MaxSubpatternTree:
    """Scan 2: the populated max-subpattern tree, from cache when possible.

    The batched kernel encodes the series into a contiguous
    :class:`~repro.kernels.store.SegmentStore` and inserts once per
    distinct hit; the legacy kernel keeps the original per-segment
    insertion.  A cache hit rebuilds the tree from the memoized hit table
    — zero scans — and a miss stores the freshly built table.
    """
    tree = MaxSubpatternTree(one_patterns.max_pattern)
    letter_order = tree.vocab.letters
    if cache is not None:
        from repro.kernels.cache import CacheKey

        assert isinstance(cache_key, CacheKey)
        hit_table = cache.get_hit_table(cache_key, letter_order)
        if hit_table is not None:
            if profile is not None:
                profile.count("cache_hits")
            with _stage(profile, "tree", items=len(hit_table)):
                for mask, count in hit_table.items():
                    tree.insert_mask(mask, count=count)
            return tree
        if profile is not None:
            profile.count("cache_misses")
    if encode and kernel == "batched":
        from repro.kernels.store import SegmentStore

        with _stage(profile, "scan2", items=one_patterns.num_periods):
            store = SegmentStore.from_series(
                series, one_patterns.period, tree.vocab
            )
            hits = store.hit_counter()
        with _stage(profile, "tree", items=len(hits)):
            for mask, count in hits.items():
                tree.insert_mask(mask, count=count)
        if profile is not None:
            profile.count("distinct_hits", len(hits))
    else:
        with _stage(profile, "scan2", items=one_patterns.num_periods):
            tree.insert_all_segments(series, encode=encode)
    stats.scans += 1
    if cache is not None:
        cache.put_hit_table(cache_key, letter_order, tree.stored_hits())
    return tree


def mine_single_period_hitset(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    max_letters: int | None = None,
    encode: bool = True,
    kernel: str = "batched",
    cache: "CountCache | None" = None,
    profile: "MiningProfile | None" = None,
) -> MiningResult:
    """Find all frequent partial periodic patterns of one period (Alg. 3.2).

    Parameters
    ----------
    series:
        The feature series (or a scan-counting wrapper).
    period:
        The period to mine.
    min_conf:
        Confidence threshold in ``(0, 1]``.
    max_letters:
        Optional cap on derived pattern letter count.  The complete
        frequent set is exponential on degenerate inputs; cap it when only
        short patterns are needed.  ``None`` derives everything.
    encode:
        Default ``True`` runs scan 2 on the encoded hot path — one bitmask
        per segment, one tree insertion per *distinct* hit.  ``False``
        keeps the legacy per-segment letter-set insertion (the CLI's
        ``--no-encode`` escape hatch for bisecting regressions).  Results
        are identical either way; still exactly two scans.
    kernel:
        ``"batched"`` (default) runs scan 2 on the contiguous segment
        store and the derivation on the single-pass superset-sum kernel;
        ``"legacy"`` keeps the original per-candidate paths (escape hatch
        and equivalence oracle).  Results are identical.
    cache:
        Optional :class:`~repro.kernels.cache.CountCache`.  Cold queries
        populate it; re-queries of the same series and period answer from
        it without scanning (any ``min_conf`` for scan 1; equal-or-higher
        ``min_conf`` for scan 2, by projection).
    profile:
        Optional :class:`~repro.kernels.profile.MiningProfile` accumulating
        per-stage wall times and cache counters.

    Returns
    -------
    MiningResult
        Identical frequent set and counts to Algorithm 3.1 (a tested
        invariant), obtained with at most two scans — fewer on cache hits.
    """
    if max_letters is not None and max_letters < 1:
        raise MiningError(f"max_letters must be >= 1, got {max_letters}")
    _check_kernel(kernel)
    stats = MiningStats()
    cache_key = cache.key_for(series, period) if cache is not None else None
    one_patterns = _scan1(
        series, period, min_conf, cache, cache_key, profile, stats
    )
    if one_patterns.is_empty:
        return MiningResult(
            algorithm="hitset",
            period=period,
            min_conf=min_conf,
            num_periods=one_patterns.num_periods,
            counts={},
            stats=stats,
        )

    tree = _scan2(
        series, one_patterns, encode, kernel, cache, cache_key, profile, stats
    )
    stats.tree_nodes = tree.node_count
    stats.hit_set_size = tree.hit_set_size

    with _stage(profile, "derive"):
        letter_counts, candidate_counts = tree.derive_frequent(
            one_patterns.threshold,
            one_patterns.letters,
            max_letters=max_letters,
            kernel=kernel,
        )
    stats.candidate_counts = candidate_counts
    if profile is not None:
        profile.add_items("derive", sum(candidate_counts.values()))
    patterns = {
        Pattern.from_letters(period, letters): count
        for letters, count in letter_counts.items()
    }
    return MiningResult(
        algorithm="hitset",
        period=period,
        min_conf=min_conf,
        num_periods=one_patterns.num_periods,
        counts=patterns,
        stats=stats,
    )


def build_hit_tree(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    encode: bool = True,
    kernel: str = "batched",
) -> tuple[MaxSubpatternTree, FrequentOnePatterns]:
    """Run only the two scans and return the populated tree plus F1.

    Useful when the caller wants to perform a custom derivation — e.g. the
    MaxMiner-style maximal-pattern search in :mod:`repro.core.maximal`.
    Returns ``(tree, one_patterns)``; raises via
    :func:`~repro.core.maxpattern.find_frequent_one_patterns` on an invalid
    period and :class:`~repro.core.errors.MiningError` when F1 is empty.
    ``encode`` and ``kernel`` select the scan-2 path exactly as in
    :func:`mine_single_period_hitset`.
    """
    _check_kernel(kernel)
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    stats = MiningStats(scans=1)
    tree = _scan2(
        series, one_patterns, encode, kernel, None, None, None, stats
    )
    return tree, one_patterns
