"""The paper's primary contribution: the mining algorithms.

* :mod:`repro.core.pattern` — pattern algebra;
* :mod:`repro.core.apriori` — Algorithm 3.1 (single-period Apriori);
* :mod:`repro.core.hitset` — Algorithm 3.2 (max-subpattern hit set);
* :mod:`repro.core.multiperiod` — Algorithms 3.3 and 3.4;
* :mod:`repro.core.maximal` — maximal patterns (hit-set x MaxMiner hybrid);
* :mod:`repro.core.miner` — the high-level facade.
"""
