"""Maximal frequent pattern mining.

Section 4 of the paper notes that users are often only interested in the
*maximal* frequent patterns — the frequent patterns with no frequent proper
superpattern — and sketches (Section 5 end) a hybrid of the max-subpattern
hit-set method with Bayardo's MaxMiner that avoids MaxMiner's repeated
scans: count lookups are served by the populated max-subpattern tree, so the
whole search still costs exactly two scans of the series.

This module provides both the standalone maximality filter and that hybrid
miner (:func:`mine_maximal_hitset`): a set-enumeration search over the F1
letters with MaxMiner's "lookahead" — if ``head ∪ tail`` is frequent, the
entire subtree collapses into a single maximal candidate.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.counting import check_min_conf
from repro.core.errors import MiningError
from repro.core.hitset import build_hit_tree
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.timeseries.feature_series import FeatureSeries


def maximal_patterns(counts: Mapping[Pattern, int]) -> dict[Pattern, int]:
    """Filter a frequent-pattern mapping down to its maximal members.

    A pattern is kept iff no other pattern in the mapping has a strictly
    larger letter set containing it.
    """
    by_size = sorted(counts, key=lambda pattern: -pattern.letter_count)
    maximal: list[Pattern] = []
    result: dict[Pattern, int] = {}
    for pattern in by_size:
        if any(pattern.letters < kept.letters for kept in maximal):
            continue
        maximal.append(pattern)
        result[pattern] = counts[pattern]
    return result


def mine_maximal_hitset(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    encode: bool = True,
) -> MiningResult:
    """Mine only the maximal frequent patterns in two scans.

    Runs the two scans of Algorithm 3.2 to populate the max-subpattern
    tree, then performs a MaxMiner-style set-enumeration search over the F1
    letters where every count lookup is answered from the tree.  The
    search runs on bitmasks over the tree's vocabulary; ``encode``
    selects the scan-2 path as in
    :func:`~repro.core.hitset.build_hit_tree`.

    Returns
    -------
    MiningResult
        ``algorithm="maximal-hitset"``; the counts mapping contains exactly
        the maximal frequent patterns.
    """
    check_min_conf(min_conf)
    try:
        tree, one_patterns = build_hit_tree(series, period, min_conf, encode=encode)
    except MiningError:
        # Empty F1: re-run the cheap scan to recover num_periods for the
        # empty result.  (build_hit_tree raised before scanning twice.)
        from repro.core.maxpattern import find_frequent_one_patterns

        one_patterns = find_frequent_one_patterns(series, period, min_conf)
        return MiningResult(
            algorithm="maximal-hitset",
            period=period,
            min_conf=min_conf,
            num_periods=one_patterns.num_periods,
            counts={},
            stats=MiningStats(scans=1),
        )

    threshold = one_patterns.threshold
    f1_counts = one_patterns.letters
    vocab = tree.vocab
    # F1 and the C_max letters coincide, so every candidate the search
    # touches is a submask of the tree's full mask.
    bits = [vocab.bit_of(letter) for letter in sorted(f1_counts)]
    f1_count_of_bit = {
        vocab.bit_of(letter): count for letter, count in f1_counts.items()
    }
    stored = [
        (node.missing_mask, node.count) for node in tree.nodes() if node.count
    ]
    lookups = 0

    def frequency(candidate: int) -> int:
        """Exact count: F1 for singletons, tree-derived for larger masks."""
        nonlocal lookups
        lookups += 1
        if not candidate & (candidate - 1):
            return f1_count_of_bit[candidate]
        total = 0
        for missing_mask, count in stored:
            if not candidate & missing_mask:
                total += count
        return total

    found: dict[int, int] = {}

    def already_covered(candidate: int) -> bool:
        return any(not candidate & ~kept for kept in found)

    def union_of(head: int, tail: list[int]) -> int:
        for bit in tail:
            head |= bit
        return head

    def search(head: int, tail: list[int]) -> None:
        union = union_of(head, tail)
        if already_covered(union):
            return
        if tail:
            union_count = frequency(union)
            if union_count >= threshold:
                # MaxMiner lookahead: the whole subtree is frequent.
                found[union] = union_count
                return
        extended = False
        for index, bit in enumerate(tail):
            new_head = head | bit
            if frequency(new_head) >= threshold:
                extended = True
                search(new_head, tail[index + 1 :])
        if not extended and head and not already_covered(head):
            found[head] = frequency(head)

    search(0, bits)

    counts = maximal_patterns(
        {
            Pattern.from_mask(vocab, mask): count
            for mask, count in found.items()
        }
    )
    stats = MiningStats(
        scans=2,
        tree_nodes=tree.node_count,
        hit_set_size=tree.hit_set_size,
        candidate_counts={0: lookups},
    )
    return MiningResult(
        algorithm="maximal-hitset",
        period=period,
        min_conf=min_conf,
        num_periods=one_patterns.num_periods,
        counts=counts,
        stats=stats,
    )
