"""Result containers shared by all mining algorithms."""

from __future__ import annotations

from collections.abc import ItemsView, Iterator, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import MiningError
from repro.core.pattern import Pattern

if TYPE_CHECKING:
    from repro.engine.stats import EngineStats


@dataclass(slots=True)
class MiningStats:
    """Cost accounting for one mining run.

    Attributes
    ----------
    scans:
        Number of full passes over the series the algorithm performed.
    candidate_counts:
        Candidates examined per level (level = letter count), for Apriori
        and for tree derivation.
    tree_nodes:
        Nodes in the max-subpattern tree (0 for Apriori).
    hit_set_size:
        Distinct max-subpatterns hit, i.e. tree nodes with non-zero count
        (0 for Apriori).
    """

    scans: int = 0
    candidate_counts: dict[int, int] = field(default_factory=dict)
    tree_nodes: int = 0
    hit_set_size: int = 0

    @property
    def total_candidates(self) -> int:
        """Total candidates examined across all levels."""
        return sum(self.candidate_counts.values())


class MiningResult:
    """The frequent patterns of one period, with counts and run statistics.

    Behaves like a read-only mapping from :class:`Pattern` to frequency
    count, and offers confidence/maximality helpers.

    ``engine`` carries the per-shard accounting
    (:class:`repro.engine.stats.EngineStats`) when the result was produced
    by the parallel engine; it is ``None`` for the serial miners and never
    affects the frequent set itself.
    """

    __slots__ = (
        "algorithm",
        "period",
        "min_conf",
        "num_periods",
        "_counts",
        "stats",
        "engine",
    )

    def __init__(
        self,
        algorithm: str,
        period: int,
        min_conf: float,
        num_periods: int,
        counts: Mapping[Pattern, int],
        stats: MiningStats | None = None,
        engine: EngineStats | None = None,
    ):
        self.algorithm = algorithm
        self.period = period
        self.min_conf = min_conf
        self.num_periods = num_periods
        self._counts = dict(counts)
        self.stats = stats if stats is not None else MiningStats()
        self.engine = engine

    # -- mapping protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._counts)

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern in self._counts

    def __getitem__(self, pattern: Pattern) -> int:
        return self._counts[pattern]

    def get(self, pattern: Pattern, default: int = 0) -> int:
        """Frequency count of a pattern (0 if not frequent)."""
        return self._counts.get(pattern, default)

    def items(self) -> ItemsView[Pattern, int]:
        """``(pattern, count)`` pairs of all frequent patterns."""
        return self._counts.items()

    # -- queries -----------------------------------------------------------

    @property
    def patterns(self) -> list[Pattern]:
        """All frequent patterns, sorted by descending count then text."""
        return sorted(self._counts, key=lambda p: (-self._counts[p], str(p)))

    def confidence(self, pattern: Pattern) -> float:
        """Confidence of a frequent pattern; raises if not frequent."""
        if pattern not in self._counts:
            raise MiningError(f"{pattern} is not in the frequent set")
        return self._counts[pattern] / self.num_periods

    def with_l_length(self, l_length: int) -> dict[Pattern, int]:
        """Frequent patterns with exactly the given L-length."""
        return {
            pattern: count
            for pattern, count in self._counts.items()
            if pattern.l_length == l_length
        }

    def with_letter_count(self, letters: int) -> dict[Pattern, int]:
        """Frequent patterns with exactly the given number of letters."""
        return {
            pattern: count
            for pattern, count in self._counts.items()
            if pattern.letter_count == letters
        }

    @property
    def max_letter_count(self) -> int:
        """Largest letter count among frequent patterns (0 when empty)."""
        if not self._counts:
            return 0
        return max(pattern.letter_count for pattern in self._counts)

    @property
    def max_l_length(self) -> int:
        """Largest L-length among frequent patterns — the paper's
        MAX-PAT-LENGTH of the mined output (0 when empty)."""
        if not self._counts:
            return 0
        return max(pattern.l_length for pattern in self._counts)

    def maximal_patterns(self) -> dict[Pattern, int]:
        """The maximal frequent patterns (no frequent proper superpattern).

        See Section 4 of the paper; every frequent pattern is a subpattern
        of some member of this set.
        """
        by_size = sorted(
            self._counts, key=lambda pattern: -pattern.letter_count
        )
        maximal: list[Pattern] = []
        result: dict[Pattern, int] = {}
        for pattern in by_size:
            if any(pattern.letters < other.letters for other in maximal):
                continue
            maximal.append(pattern)
            result[pattern] = self._counts[pattern]
        return result

    def to_rows(self) -> list[tuple[str, int, float]]:
        """Report rows ``(pattern, count, confidence)``, best first."""
        return [
            (str(pattern), self._counts[pattern], self.confidence(pattern))
            for pattern in self.patterns
        ]

    def summary(self) -> str:
        """One-line human summary of the run."""
        return (
            f"{self.algorithm}: period={self.period} min_conf={self.min_conf} "
            f"m={self.num_periods} frequent={len(self)} "
            f"max_letters={self.max_letter_count} scans={self.stats.scans}"
        )

    def __repr__(self) -> str:
        return f"MiningResult({self.summary()})"
