"""Frequency counting primitives and the brute-force reference counter.

Definitions from Section 2 of the paper: for a pattern ``s`` of period ``p``
over a series of length ``N``, ``m = floor(N/p)`` whole period segments are
considered; ``frequency_count(s)`` is the number of segments in which ``s``
is true and ``confidence(s) = frequency_count(s) / m``.  A pattern is
frequent iff its confidence is at least ``min_conf``.

The brute-force counter here enumerates, per segment, every subpattern of
that segment's letter set.  It never uses the Apriori property or the
max-subpattern tree, so it is an independent oracle for testing both mining
algorithms.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Collection, Iterable, Mapping
from itertools import chain

from repro.core.errors import MiningError
from repro.core.pattern import Letter, Pattern
from repro.encoding.codec import SegmentEncoder, iter_segment_letters
from repro.encoding.vocabulary import LetterVocabulary
from repro.timeseries.feature_series import FeatureSeries, Segment

#: Float slack used when translating a confidence threshold into an integer
#: count threshold, guarding against representation error in products like
#: ``0.3 * 10``.
_CONF_EPSILON = 1e-9


def check_min_conf(min_conf: float) -> None:
    """Validate a confidence threshold (must be in ``(0, 1]``)."""
    if not 0.0 < min_conf <= 1.0:
        raise MiningError(f"min_conf must be in (0, 1], got {min_conf}")


def min_count(min_conf: float, num_periods: int) -> int:
    """Smallest frequency count whose confidence reaches ``min_conf``.

    >>> min_count(0.5, 10)
    5
    >>> min_count(0.34, 3)
    2
    """
    check_min_conf(min_conf)
    if num_periods < 0:
        raise MiningError(f"num_periods must be >= 0, got {num_periods}")
    threshold = math.ceil(min_conf * num_periods - _CONF_EPSILON)
    return max(threshold, 1)


def segment_letters(segment: Segment) -> frozenset[Letter]:
    """The letter set of a period segment: all ``(offset, feature)`` pairs."""
    return frozenset(iter_segment_letters(segment))


def count_pattern(series: FeatureSeries, pattern: Pattern) -> int:
    """Frequency count of one pattern (single scan; the definitional count)."""
    return sum(1 for segment in series.segments(pattern.period) if pattern.matches(segment))


def confidence(series: FeatureSeries, pattern: Pattern) -> float:
    """Confidence of one pattern: ``frequency_count / num_periods``."""
    num_periods = series.num_periods(pattern.period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {pattern.period}"
        )
    return count_pattern(series, pattern) / num_periods


def count_candidates(
    series: FeatureSeries,
    period: int,
    candidates: Collection[frozenset[Letter]],
) -> Counter:
    """Count many letter-set candidates in one scan of the series.

    Returns a :class:`collections.Counter` mapping each candidate to its
    frequency count (missing candidates have count 0).

    Internally each candidate becomes an integer bitmask over a canonical
    :class:`~repro.encoding.vocabulary.LetterVocabulary` of the candidate
    letters, so the per-segment subset test is a single
    ``mask & ~segment == 0`` — the hot loop of Algorithm 3.1 (see
    :func:`count_candidate_masks`).
    """
    counts: Counter = Counter()
    if not candidates:
        return counts
    candidate_list = list(candidates)
    # Letters at offsets outside the period can never occur in a segment;
    # keep them out of the vocabulary and give their candidates count 0.
    in_range = [
        candidate
        for candidate in candidate_list
        if all(0 <= offset < period for offset, _ in candidate)
    ]
    vocab = LetterVocabulary.from_letters(
        chain.from_iterable(in_range), period=period
    )
    mask_of = {
        candidate: vocab.encode_letters(candidate) for candidate in in_range
    }
    mask_counts = count_candidate_masks(
        series, period, mask_of.values(), SegmentEncoder(vocab)
    )
    for candidate in candidate_list:
        mask = mask_of.get(candidate)
        counts[candidate] = 0 if mask is None else mask_counts[mask]
    return counts


def count_candidate_masks(
    series: FeatureSeries,
    period: int,
    masks: Iterable[int],
    encoder: SegmentEncoder,
    store: "object | None" = None,
    kernel: str = "batched",
) -> dict[int, int]:
    """Count candidate bitmasks in one scan — the encoded counting kernel.

    ``masks`` are candidate letter sets over ``encoder``'s vocabulary; the
    result maps each distinct mask to its frequency count.

    The scan encodes the segments into a
    :class:`~repro.kernels.store.SegmentStore` and answers the whole
    candidate set through :meth:`SegmentStore.count_masks` — never the
    candidates-times-segments inner loop this function started as.  The
    store memoizes its distinct-mask pass, so callers issuing several
    counting rounds over the same vocabulary (cold verification paths,
    re-queries) should build one store and pass it back in via ``store``:
    every round after the first then skips the scan entirely.  ``kernel``
    selects the verification kernel exactly as in
    :meth:`SegmentStore.count_masks`.
    """
    # Local import: repro.kernels pulls in higher layers (resilience) and
    # counting sits near the bottom of the package import graph.
    from repro.kernels.store import SegmentStore

    ordered = list(dict.fromkeys(masks))
    if not ordered:
        return {}
    if store is None:
        store = SegmentStore.from_series(series, period, encoder.vocab)
    assert isinstance(store, SegmentStore)
    return store.count_masks(ordered, kernel=kernel)


def brute_force_counts(
    series: FeatureSeries,
    period: int,
    max_subsets_per_segment: int = 1 << 20,
) -> dict[frozenset[Letter], int]:
    """Count *every* non-trivial pattern with a non-zero frequency count.

    For each segment, enumerates all non-empty subsets of the segment's
    letter set and increments their counts.  Patterns that match no segment
    are absent (their count is 0 by definition).

    This is exponential in the letters per segment and intended as a test
    oracle on small inputs; ``max_subsets_per_segment`` guards against
    accidental blow-ups.
    """
    counts: dict[frozenset[Letter], int] = {}
    for segment in series.segments(period):
        letters = sorted(segment_letters(segment))
        total = len(letters)
        if 1 << total > max_subsets_per_segment:
            raise MiningError(
                f"segment has {total} letters; "
                f"2**{total} subsets exceed the oracle limit"
            )
        for mask in range(1, 1 << total):
            subset = frozenset(
                letters[index] for index in range(total) if mask >> index & 1
            )
            counts[subset] = counts.get(subset, 0) + 1
    return counts


def brute_force_frequent(
    series: FeatureSeries,
    period: int,
    min_conf: float,
) -> dict[Pattern, int]:
    """All frequent patterns with their counts, by exhaustive enumeration.

    The independent oracle used by the test suite to validate Algorithm 3.1
    and Algorithm 3.2.
    """
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    threshold = min_count(min_conf, num_periods)
    return {
        Pattern.from_letters(period, letters): count
        for letters, count in brute_force_counts(series, period).items()
        if count >= threshold
    }


def counts_to_patterns(
    period: int, counts: Mapping[frozenset[Letter], int]
) -> dict[Pattern, int]:
    """Convert a letter-set count mapping into a :class:`Pattern` mapping."""
    return {
        Pattern.from_letters(period, letters): count
        for letters, count in counts.items()
    }


def letter_counts_for_segments(
    segments: Iterable[Segment],
) -> Counter:
    """Count each individual letter over an iterable of segments.

    This is the Step-1 counting kernel shared by every miner: one pass,
    one counter bump per (offset, feature) occurrence per segment.
    """
    counts: Counter = Counter()
    for segment in segments:
        counts.update(iter_segment_letters(segment))
    return counts


def frequent_letter_set(
    letter_counts: Mapping[Letter, int], threshold: int
) -> dict[Letter, int]:
    """Filter a letter-count mapping down to the frequent letters (F1)."""
    return {
        letter: count
        for letter, count in letter_counts.items()
        if count >= threshold
    }


def pattern_counts_table(
    counts: Mapping[Pattern, int], num_periods: int
) -> list[tuple[str, int, float]]:
    """Sorted report rows ``(pattern, count, confidence)`` for display."""
    if num_periods <= 0:
        raise MiningError(f"num_periods must be positive, got {num_periods}")
    rows = [
        (str(pattern), count, count / num_periods)
        for pattern, count in counts.items()
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows
