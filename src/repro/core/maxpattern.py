"""Step 1 of every miner: frequent 1-patterns and the candidate max-pattern.

Both Algorithm 3.1 and Algorithm 3.2 begin with a single scan that counts
every 1-pattern (every individual ``(offset, feature)`` letter) over whole
period segments and keeps those reaching the confidence threshold — the set
``F1``.  Algorithm 3.2 then forms the *candidate max-pattern* ``C_max``: the
maximal pattern assembling all of ``F1``, possibly with several letters at
one position (rendered as ``a{b1,b2}*d*`` in the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counting import (
    frequent_letter_set,
    letter_counts_for_segments,
    min_count,
)
from repro.core.errors import MiningError
from repro.core.pattern import Letter, Pattern
from repro.timeseries.feature_series import FeatureSeries


@dataclass(slots=True)
class FrequentOnePatterns:
    """Outcome of the F1 scan for one period.

    Attributes
    ----------
    period:
        The period mined.
    num_periods:
        ``m``, the number of whole period segments scanned.
    threshold:
        The integer count threshold implied by ``min_conf`` and ``m``.
    letters:
        Mapping of each frequent letter to its frequency count.
    """

    period: int
    num_periods: int
    threshold: int
    letters: dict[Letter, int]

    @property
    def max_pattern(self) -> Pattern:
        """The candidate max-pattern ``C_max`` assembled from F1.

        Raises :class:`MiningError` when F1 is empty (no candidate exists
        and mining can stop immediately).
        """
        if not self.letters:
            raise MiningError(
                f"no frequent 1-patterns at period {self.period}; "
                "there is no candidate max-pattern"
            )
        return Pattern.from_letters(self.period, self.letters)

    @property
    def is_empty(self) -> bool:
        """True when no 1-pattern reached the threshold."""
        return not self.letters

    def one_pattern_counts(self) -> dict[Pattern, int]:
        """F1 as single-letter :class:`Pattern` objects with counts."""
        return {
            Pattern.from_letters(self.period, (letter,)): count
            for letter, count in self.letters.items()
        }


def find_frequent_one_patterns(
    series: FeatureSeries,
    period: int,
    min_conf: float,
) -> FrequentOnePatterns:
    """One scan over the series: count every letter, keep the frequent ones.

    This is Step 1 of Algorithm 3.1 (and of Algorithm 3.2, which shares it).
    """
    num_periods = series.num_periods(period)
    if num_periods == 0:
        raise MiningError(
            f"series of length {len(series)} has no whole period of {period}"
        )
    threshold = min_count(min_conf, num_periods)
    letter_counts = letter_counts_for_segments(series.segments(period))
    frequent = frequent_letter_set(letter_counts, threshold)
    return FrequentOnePatterns(
        period=period,
        num_periods=num_periods,
        threshold=threshold,
        letters=frequent,
    )
