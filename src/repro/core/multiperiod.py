"""Mining partial periodicity for multiple periods (Section 3.2).

Two strategies from the paper:

* **Algorithm 3.3** (:func:`mine_periods_looping`) — run the single-period
  miner once per period; ``2 * k`` scans for ``k`` periods with the hit-set
  method.
* **Algorithm 3.4** (:func:`mine_periods_shared`) — shared mining: a single
  slot-level pass computes the F1 sets of *every* period at once, and a
  second slot-level pass feeds every period's max-subpattern tree at once;
  **two scans total**, independent of how many periods are mined.

Note the paper's Section 3.2 counterexample: frequent patterns of period
``p`` are *not* necessarily frequent at period ``k*p``, so no cross-period
Apriori filter exists; sharing the scans is the legitimate optimization.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.apriori import mine_single_period_apriori
from repro.core.counting import check_min_conf, frequent_letter_set, min_count
from repro.core.errors import MiningError
from repro.core.hitset import mine_single_period_hitset
from repro.core.pattern import Letter, Pattern
from repro.core.result import MiningResult, MiningStats
from repro.encoding.codec import SegmentEncoder
from repro.tree.max_subpattern_tree import MaxSubpatternTree
from repro.timeseries.feature_series import FeatureSeries


def period_range(low: int, high: int) -> list[int]:
    """The inclusive period range ``low..high`` with validation."""
    if low < 1:
        raise MiningError(f"low period must be >= 1, got {low}")
    if high < low:
        raise MiningError(f"period range [{low}, {high}] is empty")
    return list(range(low, high + 1))


@dataclass(slots=True)
class MultiPeriodResult:
    """Results of one multi-period run, indexed by period."""

    algorithm: str
    min_conf: float
    results: dict[int, MiningResult] = field(default_factory=dict)
    #: Total scans over the series for the whole run.
    scans: int = 0
    #: Per-shard ledger (:class:`repro.engine.stats.EngineStats`) when the
    #: run came from the parallel engine; ``None`` for serial runs.
    engine: object | None = None

    def __getitem__(self, period: int) -> MiningResult:
        return self.results[period]

    def __contains__(self, period: int) -> bool:
        return period in self.results

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.results))

    def __len__(self) -> int:
        return len(self.results)

    @property
    def periods(self) -> list[int]:
        """The mined periods, ascending."""
        return sorted(self.results)

    @property
    def total_frequent(self) -> int:
        """Total frequent patterns across all periods."""
        return sum(len(result) for result in self.results.values())

    def best_patterns(
        self, limit: int = 10, min_letters: int = 2
    ) -> list[tuple[int, Pattern, float]]:
        """Top patterns across periods: ``(period, pattern, confidence)``.

        Ranked by letter count then confidence — the long, confident
        patterns a range sweep is usually after.
        """
        rows = [
            (period, pattern, result.confidence(pattern))
            for period, result in self.results.items()
            for pattern in result
            if pattern.letter_count >= min_letters
        ]
        rows.sort(key=lambda row: (-row[1].letter_count, -row[2], row[0]))
        return rows[:limit]

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.algorithm}: periods={self.periods[:8]}"
            f"{'...' if len(self.results) > 8 else ''} "
            f"frequent={self.total_frequent} scans={self.scans}"
        )


def _validated_periods(
    series: FeatureSeries,
    periods: Iterable[int],
    min_repetitions: int,
) -> list[int]:
    """Deduplicate, sort and validate a period collection."""
    unique = sorted(set(periods))
    if not unique:
        raise MiningError("no periods to mine")
    if min_repetitions < 1:
        raise MiningError(
            f"min_repetitions must be >= 1, got {min_repetitions}"
        )
    usable: list[int] = []
    for period in unique:
        if period < 1:
            raise MiningError(f"period must be >= 1, got {period}")
        if period > len(series):
            raise MiningError(
                f"period {period} exceeds series length {len(series)}"
            )
        if len(series) // period >= min_repetitions:
            usable.append(period)
    if not usable:
        raise MiningError(
            f"no period in {unique} repeats at least {min_repetitions} times "
            f"in a series of length {len(series)}"
        )
    return usable


def mine_periods_looping(
    series: FeatureSeries,
    periods: Iterable[int],
    min_conf: float,
    algorithm: str = "hitset",
    min_repetitions: int = 1,
    encode: bool = True,
    kernel: str = "batched",
) -> MultiPeriodResult:
    """Algorithm 3.3: loop the single-period miner over each period.

    ``algorithm`` selects the inner miner: ``"hitset"`` (2 scans per
    period) or ``"apriori"`` (up to the longest-pattern length per period).
    ``encode`` and ``kernel`` are forwarded to the hit-set miner (the
    ``--no-encode`` / ``--kernel legacy`` escape hatches); the Apriori
    miner has no kernel switch.
    """
    check_min_conf(min_conf)
    usable = _validated_periods(series, periods, min_repetitions)
    if algorithm not in ("hitset", "apriori"):
        raise MiningError(
            f"unknown algorithm {algorithm!r}; use 'hitset' or 'apriori'"
        )
    outcome = MultiPeriodResult(
        algorithm=f"looping[{algorithm}]", min_conf=min_conf
    )
    for period in usable:
        if algorithm == "hitset":
            result = mine_single_period_hitset(
                series, period, min_conf, encode=encode, kernel=kernel
            )
        else:
            result = mine_single_period_apriori(
                series, period, min_conf, encode=encode
            )
        outcome.results[period] = result
        outcome.scans += result.stats.scans
    return outcome


def mine_periods_shared(
    series: FeatureSeries,
    periods: Iterable[int],
    min_conf: float,
    min_repetitions: int = 1,
    encode: bool = True,
    kernel: str = "batched",
) -> MultiPeriodResult:
    """Algorithm 3.4: shared mining of all periods in two scans total.

    Scan 1 walks the slots once, maintaining every period's letter counter
    simultaneously.  Scan 2 walks the slots once more, assembling every
    period's segment hits and feeding each period's max-subpattern tree.
    Derivation then happens entirely in memory.

    With ``encode`` (the default) scan 2 accumulates each period's running
    hit as a plain int — one ``|=`` per slot via
    :meth:`~repro.encoding.codec.SegmentEncoder.encode_slot` — and inserts
    bitmasks; ``False`` keeps the legacy letter-set buffers (the
    ``--no-encode`` escape hatch).  Results are identical either way.
    """
    check_min_conf(min_conf)
    usable = _validated_periods(series, periods, min_repetitions)
    length = len(series)
    # Slots beyond m*p belong to no whole segment of period p.
    usable_limit = {period: (length // period) * period for period in usable}

    # ----- Scan 1: F1 of every period in one pass ----------------------
    letter_counts: dict[int, Counter] = {period: Counter() for period in usable}
    for index, slot in enumerate(series.iter_slots()):
        if not slot:
            continue
        for period in usable:
            if index >= usable_limit[period]:
                continue
            counter = letter_counts[period]
            offset = index % period
            for feature in slot:
                counter[(offset, feature)] += 1

    thresholds = {
        period: min_count(min_conf, length // period) for period in usable
    }
    f1_sets: dict[int, dict[Letter, int]] = {
        period: frequent_letter_set(letter_counts[period], thresholds[period])
        for period in usable
    }
    trees: dict[int, MaxSubpatternTree] = {}
    for period in usable:
        if f1_sets[period]:
            cmax = Pattern.from_letters(period, f1_sets[period])
            trees[period] = MaxSubpatternTree(cmax)

    # ----- Scan 2: every period's hits in one pass ----------------------
    if encode:
        _shared_scan2_encoded(series, trees, usable_limit)
    else:
        _shared_scan2_legacy(series, trees, usable_limit)

    # ----- Derivation (in memory, no scans) ------------------------------
    outcome = MultiPeriodResult(algorithm="shared", min_conf=min_conf, scans=2)
    for period in usable:
        stats = MiningStats(scans=2)
        num_periods = length // period
        if period not in trees:
            outcome.results[period] = MiningResult(
                algorithm="shared",
                period=period,
                min_conf=min_conf,
                num_periods=num_periods,
                counts={},
                stats=stats,
            )
            continue
        tree = trees[period]
        stats.tree_nodes = tree.node_count
        stats.hit_set_size = tree.hit_set_size
        counts, candidate_counts = tree.derive_frequent(
            thresholds[period], f1_sets[period], kernel=kernel
        )
        stats.candidate_counts = candidate_counts
        patterns = {
            Pattern.from_letters(period, letters): count
            for letters, count in counts.items()
        }
        outcome.results[period] = MiningResult(
            algorithm="shared",
            period=period,
            min_conf=min_conf,
            num_periods=num_periods,
            counts=patterns,
            stats=stats,
        )
    return outcome


def _shared_scan2_encoded(
    series: FeatureSeries,
    trees: dict[int, MaxSubpatternTree],
    usable_limit: dict[int, int],
) -> None:
    """Scan 2 of Algorithm 3.4 on bitmasks: one int buffer per period."""
    encoders = {
        period: SegmentEncoder(tree.vocab) for period, tree in trees.items()
    }
    buffers: dict[int, int] = {period: 0 for period in trees}
    for index, slot in enumerate(series.iter_slots()):
        for period, tree in trees.items():
            if index >= usable_limit[period]:
                continue
            offset = index % period
            if slot:
                buffers[period] |= encoders[period].encode_slot(offset, slot)
            if offset == period - 1:
                hit = buffers[period]
                if hit & (hit - 1):
                    tree.insert_mask(hit)
                buffers[period] = 0


def _shared_scan2_legacy(
    series: FeatureSeries,
    trees: dict[int, MaxSubpatternTree],
    usable_limit: dict[int, int],
) -> None:
    """Scan 2 of Algorithm 3.4 on letter-set buffers (bisection path)."""
    cmax_letters = {
        period: tree.max_pattern.letters for period, tree in trees.items()
    }
    buffers: dict[int, set[Letter]] = {period: set() for period in trees}
    for index, slot in enumerate(series.iter_slots()):
        for period, tree in trees.items():
            if index >= usable_limit[period]:
                continue
            offset = index % period
            if slot:
                letters = cmax_letters[period]
                for feature in slot:
                    letter = (offset, feature)
                    if letter in letters:
                        buffers[period].add(letter)
            if offset == period - 1:
                hit = buffers[period]
                if len(hit) >= 2:
                    tree.insert(Pattern.from_letters(period, hit))
                buffers[period] = set()


def mine_period_range(
    series: FeatureSeries,
    low: int,
    high: int,
    min_conf: float,
    shared: bool = True,
    min_repetitions: int = 1,
    encode: bool = True,
    kernel: str = "batched",
) -> MultiPeriodResult:
    """Convenience wrapper: mine every period in ``[low, high]``."""
    periods = period_range(low, high)
    if shared:
        return mine_periods_shared(
            series,
            periods,
            min_conf,
            min_repetitions=min_repetitions,
            encode=encode,
            kernel=kernel,
        )
    return mine_periods_looping(
        series,
        periods,
        min_conf,
        min_repetitions=min_repetitions,
        encode=encode,
        kernel=kernel,
    )
