"""Incremental mining over a growing time-series database.

The paper mines a static series, but its own two-scan structure points at
an online variant: everything Algorithm 3.2 needs from the data is (a) the
per-letter counts of scan 1 and (b) the per-segment hits of scan 2 — and
both are additive over segments.  :class:`IncrementalHitSetMiner` maintains

* the letter counter, and
* a counter of *segment signatures* (the multiset of distinct segment
  contents) — each signature an int bitmask over a streaming
  :class:`~repro.encoding.vocabulary.LetterVocabulary` that interns
  letters in arrival order,

as slots stream in.  Mining then remaps the signature masks onto the
tree's sorted ``C_max`` vocabulary and replays them — **no scan of the
accumulated series, ever**, and any confidence threshold can be queried
after the fact because the signatures are kept unrestricted (not projected
onto one ``C_max``).

Memory: one counter entry per *distinct* segment signature.  By the same
argument as Property 3.2 this is at most ``min(m, 2^|alphabet letters|)``;
on periodic data distinct segments are few, which is exactly when mining
is worthwhile (the paper's remark after Property 3.2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.core.counting import check_min_conf, min_count
from repro.core.errors import MiningError
from repro.core.pattern import Pattern
from repro.core.result import MiningResult, MiningStats
from repro.encoding.codec import iter_segment_letters
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.timeseries.feature_series import (
    FeatureSeries,
    SlotLike,
    _normalize_slot,
)
from repro.tree.max_subpattern_tree import MaxSubpatternTree


class IncrementalHitSetMiner:
    """Streaming counterpart of Algorithm 3.2 for one fixed period.

    Parameters
    ----------
    period:
        The period mined; fixed for the lifetime of the miner.
    min_conf:
        Default confidence threshold for :meth:`mine` (overridable per
        call — the maintained state is threshold-independent).

    Examples
    --------
    >>> miner = IncrementalHitSetMiner(3, min_conf=0.9)
    >>> miner.extend("abd")
    >>> miner.extend("abcabd")
    >>> sorted(str(p) for p in miner.mine())
    ['*b*', 'a**', 'ab*']
    """

    __slots__ = (
        "_period",
        "_min_conf",
        "_vocab",
        "_letter_counts",
        "_signatures",
        "_num_periods",
        "_pending",
    )

    def __init__(self, period: int, min_conf: float = 0.5):
        if period < 1:
            raise MiningError(f"period must be >= 1, got {period}")
        check_min_conf(min_conf)
        self._period = period
        self._min_conf = min_conf
        #: Streaming vocabulary: letters interned in arrival order.  Masks
        #: never invalidate as it grows (bits keep their meaning).
        self._vocab = LetterVocabulary(period=period)
        self._letter_counts: Counter = Counter()
        #: Signature mask (over ``_vocab``) -> number of segments with
        #: exactly that letter set.
        self._signatures: Counter = Counter()
        self._num_periods = 0
        #: Slots of the currently-incomplete trailing segment.
        self._pending: list[frozenset[str]] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """The fixed period."""
        return self._period

    @property
    def num_periods(self) -> int:
        """Whole segments absorbed so far (the current ``m``)."""
        return self._num_periods

    @property
    def pending_slots(self) -> int:
        """Slots buffered toward the next whole segment (0..period-1)."""
        return len(self._pending)

    @property
    def distinct_signatures(self) -> int:
        """Distinct segment letter-sets stored — the memory driver."""
        return len(self._signatures)

    def append(self, slot: SlotLike) -> None:
        """Absorb one slot; a segment completes every ``period`` appends."""
        self._pending.append(_normalize_slot(slot))
        if len(self._pending) == self._period:
            self._absorb_segment(self._pending)
            self._pending = []

    def extend(self, slots: Iterable | str | FeatureSeries) -> None:
        """Absorb many slots (a string of symbols, a series, any iterable)."""
        if isinstance(slots, str):
            slots = FeatureSeries.from_symbols(slots)
        for slot in slots:
            self.append(slot)

    def _absorb_segment(self, segment: list[frozenset[str]]) -> None:
        # Letters never repeat within a segment (each slot is a set), so
        # one counter bump and one interned bit per letter suffice.
        mask = 0
        intern = self._vocab.intern
        letter_counts = self._letter_counts
        for letter in iter_segment_letters(segment):
            letter_counts[letter] += 1
            mask |= 1 << intern(letter)
        if mask:
            self._signatures[mask] += 1
        self._num_periods += 1

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------

    def mine(
        self,
        min_conf: float | None = None,
        max_letters: int | None = None,
    ) -> MiningResult:
        """All frequent patterns of the absorbed whole segments.

        Identical to running Algorithm 3.2 over the accumulated series
        (trailing partial segment excluded), but touches only the
        maintained counters — a tested invariant.
        """
        min_conf = self._min_conf if min_conf is None else min_conf
        check_min_conf(min_conf)
        stats = MiningStats()
        if self._num_periods == 0:
            raise MiningError("no whole segment absorbed yet")
        threshold = min_count(min_conf, self._num_periods)
        f1 = {
            letter: count
            for letter, count in self._letter_counts.items()
            if count >= threshold
        }
        if not f1:
            return MiningResult(
                algorithm="incremental-hitset",
                period=self._period,
                min_conf=min_conf,
                num_periods=self._num_periods,
                counts={},
                stats=stats,
            )
        tree = MaxSubpatternTree(
            Pattern.from_letters(self._period, frozenset(f1))
        )
        # Project each signature onto C_max by remapping its bits from the
        # arrival-order vocabulary to the tree's sorted vocabulary; letters
        # outside F1 simply drop out of the mask.
        table = self._vocab.remap_table(tree.vocab)
        for signature, count in self._signatures.items():
            hit = remap_mask(signature, table)
            if hit & (hit - 1):
                tree.insert_mask(hit, count=count)
        stats.tree_nodes = tree.node_count
        stats.hit_set_size = tree.hit_set_size
        letter_counts, candidate_counts = tree.derive_frequent(
            threshold, f1, max_letters=max_letters
        )
        stats.candidate_counts = candidate_counts
        return MiningResult(
            algorithm="incremental-hitset",
            period=self._period,
            min_conf=min_conf,
            num_periods=self._num_periods,
            counts={
                Pattern.from_letters(self._period, letters): count
                for letters, count in letter_counts.items()
            },
            stats=stats,
        )

    def merge(self, other: "IncrementalHitSetMiner") -> None:
        """Fold another miner's state into this one (same period).

        Segment counting is additive, so shards of a partitioned series can
        be absorbed in parallel and merged — each shard must have been fed
        whole segments (no pending slots).
        """
        if other._period != self._period:
            raise MiningError(
                f"cannot merge period {other._period} into {self._period}"
            )
        if other._pending or self._pending:
            raise MiningError(
                "merge requires both miners at a segment boundary "
                "(no pending slots)"
            )
        self._letter_counts.update(other._letter_counts)
        # The two miners interned letters in different arrival orders;
        # intern the other vocabulary into ours and rewrite its masks.
        table = tuple(
            self._vocab.intern(letter) for letter in other._vocab
        )
        for signature, count in other._signatures.items():
            self._signatures[remap_mask(signature, table)] += count
        self._num_periods += other._num_periods

    def __repr__(self) -> str:
        return (
            f"IncrementalHitSetMiner(period={self._period}, "
            f"m={self._num_periods}, signatures={self.distinct_signatures}, "
            f"pending={self.pending_slots})"
        )
