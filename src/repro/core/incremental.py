"""Incremental mining over a growing time-series database.

The paper mines a static series, but its own two-scan structure points at
an online variant: everything Algorithm 3.2 needs from the data is (a) the
per-letter counts of scan 1 and (b) the per-segment hits of scan 2 — and
both are additive over segments.  :class:`SegmentPartial` maintains

* the letter counter, and
* a counter of *segment signatures* (the multiset of distinct segment
  contents) — each signature an int bitmask over a streaming
  :class:`~repro.encoding.vocabulary.LetterVocabulary` that interns
  letters in arrival order,

as whole segments stream in.  Mining then remaps the signature masks onto
the tree's sorted ``C_max`` vocabulary and replays them — **no scan of the
accumulated series, ever**, and any confidence threshold can be queried
after the fact because the signatures are kept unrestricted (not projected
onto one ``C_max``).

A partial is *segment-granular* in both directions: :meth:`~SegmentPartial.
absorb` adds one whole segment and returns its signature mask, and
:meth:`~SegmentPartial.retire` subtracts a previously absorbed segment by
that mask — counts are a multiset, so addition and exact subtraction
commute.  That pair of operations is what the windowed streaming engine
(:mod:`repro.streaming`) composes: sliding windows absorb at the tail and
retire at the head, and every window mines exactly as if the window's
slice had been batch-mined.

:class:`IncrementalHitSetMiner` is the slot-level front door: it buffers
slots into whole segments (the trailing partial segment stays pending,
never silently mined) and delegates everything else to one partial.

Memory: one counter entry per *distinct* segment signature.  By the same
argument as Property 3.2 this is at most ``min(m, 2^|alphabet letters|)``;
on periodic data distinct segments are few, which is exactly when mining
is worthwhile (the paper's remark after Property 3.2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.core.counting import check_min_conf, min_count
from repro.core.errors import MiningError
from repro.core.pattern import Letter, Pattern
from repro.core.result import MiningResult, MiningStats
from repro.encoding.codec import iter_segment_letters
from repro.encoding.vocabulary import LetterVocabulary, remap_mask
from repro.timeseries.feature_series import (
    FeatureSeries,
    SlotLike,
    _normalize_slot,
)
from repro.tree.max_subpattern_tree import MaxSubpatternTree


class SegmentPartial:
    """A mergeable, retirable summary of a multiset of whole segments.

    Parameters
    ----------
    period:
        The fixed period every absorbed segment must have.
    vocab:
        Optional shared streaming vocabulary.  Partials handed the *same*
        vocabulary object speak the same bit language, so merging them is
        plain counter addition (no mask remapping) — the representation
        the streaming engine's ring strategy relies on.  Omitted, the
        partial owns a private vocabulary interning letters in arrival
        order.

    The maintained state is threshold-independent: :meth:`mine` accepts
    any ``min_conf`` after the fact and produces exactly the result of
    batch-mining the absorbed segment multiset.
    """

    __slots__ = ("_period", "_vocab", "_letter_counts", "_signatures", "_num_periods")

    def __init__(self, period: int, vocab: LetterVocabulary | None = None):
        if period < 1:
            raise MiningError(f"period must be >= 1, got {period}")
        if vocab is None:
            vocab = LetterVocabulary(period=period)
        elif vocab.period != period:
            raise MiningError(
                f"shared vocabulary has period {vocab.period}, "
                f"partial wants {period}"
            )
        self._period = period
        #: Streaming vocabulary: letters interned in arrival order.  Masks
        #: never invalidate as it grows (bits keep their meaning).
        self._vocab = vocab
        self._letter_counts: Counter[Letter] = Counter()
        #: Signature mask (over ``_vocab``) -> number of segments with
        #: exactly that letter set.
        self._signatures: Counter[int] = Counter()
        self._num_periods = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """The fixed period."""
        return self._period

    @property
    def vocab(self) -> LetterVocabulary:
        """The streaming vocabulary the signature masks are encoded over."""
        return self._vocab

    @property
    def num_periods(self) -> int:
        """Whole segments currently summarized (the current ``m``)."""
        return self._num_periods

    @property
    def distinct_signatures(self) -> int:
        """Distinct segment letter-sets stored — the memory driver."""
        return len(self._signatures)

    def letter_count(self, letter: Letter) -> int:
        """Occurrences of one letter across the summarized segments."""
        return self._letter_counts[letter]

    def signature_items(self) -> Iterable[tuple[int, int]]:
        """The ``(signature mask, segment count)`` rows (read-only view)."""
        return self._signatures.items()

    # ------------------------------------------------------------------
    # Absorb / retire / merge — the three composition operations
    # ------------------------------------------------------------------

    def absorb(self, segment: Sequence[frozenset[str]]) -> int:
        """Add one whole segment; returns its signature mask.

        The returned mask is the segment's complete contribution: a later
        :meth:`retire` with it removes the segment exactly.  Letters never
        repeat within a segment (each slot is a set), so one counter bump
        and one interned bit per letter suffice.
        """
        if len(segment) != self._period:
            raise MiningError(
                f"segment of {len(segment)} slots does not match "
                f"period {self._period}"
            )
        mask = 0
        intern = self._vocab.intern
        letter_counts = self._letter_counts
        for letter in iter_segment_letters(segment):
            letter_counts[letter] += 1
            mask |= 1 << intern(letter)
        if mask:
            self._signatures[mask] += 1
        self._num_periods += 1
        return mask

    def retire(self, mask: int) -> None:
        """Subtract one previously absorbed segment by its signature mask.

        Exact inverse of :meth:`absorb`: letter counts decrement (entries
        vanish at zero), the signature multiset loses one occurrence, and
        ``num_periods`` drops by one.  Retiring a mask that is not
        currently stored raises — retirement can never silently drift.
        """
        if self._num_periods < 1:
            raise MiningError("no segment left to retire")
        if mask:
            stored = self._signatures.get(mask, 0)
            if stored < 1:
                raise MiningError(
                    f"signature {mask:#x} is not in the partial; "
                    "a segment can only be retired once"
                )
            if stored == 1:
                del self._signatures[mask]
            else:
                self._signatures[mask] = stored - 1
            letter_counts = self._letter_counts
            for letter in self._vocab.iter_mask(mask):
                remaining = letter_counts[letter] - 1
                if remaining:
                    letter_counts[letter] = remaining
                else:
                    del letter_counts[letter]
        self._num_periods -= 1

    def merge(self, other: "SegmentPartial") -> None:
        """Fold another partial's whole segments into this one.

        Segment counting is additive, so shards of a partitioned series
        can be absorbed in parallel and merged.  Partials sharing one
        vocabulary object merge by plain counter addition; otherwise the
        other vocabulary is interned into ours and its masks rewritten.
        """
        if other is self:
            raise MiningError("cannot merge a partial into itself")
        if other._period != self._period:
            raise MiningError(
                f"cannot merge period {other._period} into {self._period}"
            )
        self._letter_counts.update(other._letter_counts)
        if other._vocab is self._vocab:
            self._signatures.update(other._signatures)
        else:
            # The two partials interned letters in different arrival
            # orders; intern the other vocabulary into ours and rewrite
            # its masks.
            table = tuple(
                self._vocab.intern(letter) for letter in other._vocab
            )
            for signature, count in other._signatures.items():
                self._signatures[remap_mask(signature, table)] += count
        self._num_periods += other._num_periods

    def copy(self) -> "SegmentPartial":
        """An independent snapshot (the vocabulary stays shared)."""
        duplicate = SegmentPartial(self._period, vocab=self._vocab)
        duplicate._letter_counts = Counter(self._letter_counts)
        duplicate._signatures = Counter(self._signatures)
        duplicate._num_periods = self._num_periods
        return duplicate

    # ------------------------------------------------------------------
    # Durable state (checkpoint/restore)
    # ------------------------------------------------------------------

    def to_state(self, include_vocab: bool = True) -> dict[str, object]:
        """The JSON-ready durable form of this partial.

        ``include_vocab=False`` omits the interned letter list for
        partials that share one vocabulary (the ring strategy serializes
        the shared vocabulary once and passes it to :meth:`from_state`).
        Signature masks are stored as-is: they are meaningful only
        against the vocabulary's letter order, which is why the letters
        ride along in id order.
        """
        state: dict[str, object] = {
            "period": self._period,
            "letter_counts": [
                [offset, feature, count]
                for (offset, feature), count in sorted(
                    self._letter_counts.items()
                )
            ],
            "signatures": sorted(
                [mask, count] for mask, count in self._signatures.items()
            ),
            "num_periods": self._num_periods,
        }
        if include_vocab:
            state["letters"] = [
                [offset, feature] for offset, feature in self._vocab
            ]
        return state

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, object],
        vocab: LetterVocabulary | None = None,
    ) -> "SegmentPartial":
        """Rebuild a partial from :meth:`to_state` output.

        ``vocab`` supplies the shared vocabulary when the state was
        written with ``include_vocab=False``; otherwise the letter list
        in the state is re-interned in its recorded (id) order, so every
        stored mask keeps its meaning bit for bit.
        """
        data: Mapping[str, Any] = state
        try:
            period = int(data["period"])
            if vocab is None:
                vocab = LetterVocabulary(
                    (
                        (int(offset), str(feature))
                        for offset, feature in data["letters"]
                    ),
                    period=period,
                )
            partial = cls(period, vocab=vocab)
            partial._letter_counts = Counter(
                {
                    (int(offset), str(feature)): int(count)
                    for offset, feature, count in data["letter_counts"]
                }
            )
            partial._signatures = Counter(
                {
                    int(mask): int(count)
                    for mask, count in data["signatures"]
                }
            )
            partial._num_periods = int(data["num_periods"])
        except (KeyError, TypeError, ValueError) as error:
            raise MiningError(
                f"malformed segment-partial state: {error}"
            ) from error
        return partial

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------

    def frequent_one(
        self, min_conf: float
    ) -> tuple[dict[Letter, int], int]:
        """Scan 1 from the counters: ``(F1 counts, count threshold)``."""
        check_min_conf(min_conf)
        if self._num_periods == 0:
            raise MiningError("no whole segment absorbed yet")
        threshold = min_count(min_conf, self._num_periods)
        f1 = {
            letter: count
            for letter, count in self._letter_counts.items()
            if count >= threshold
        }
        return f1, threshold

    def build_tree(self, f1: Mapping[Letter, int]) -> MaxSubpatternTree:
        """Scan 2 from the counters: the populated max-subpattern tree.

        Projects each signature onto ``C_max`` by remapping its bits from
        the arrival-order vocabulary to the tree's sorted vocabulary;
        letters outside F1 simply drop out of the mask.
        """
        tree = MaxSubpatternTree(
            Pattern.from_letters(self._period, frozenset(f1))
        )
        table = self._vocab.remap_table(tree.vocab)
        for signature, count in self._signatures.items():
            hit = remap_mask(signature, table)
            if hit & (hit - 1):
                tree.insert_mask(hit, count=count)
        return tree

    def mine(
        self,
        min_conf: float,
        max_letters: int | None = None,
        algorithm: str = "incremental-hitset",
        tree: MaxSubpatternTree | None = None,
        kernel: str = "batched",
    ) -> MiningResult:
        """All frequent patterns of the summarized whole segments.

        Identical to running Algorithm 3.2 over the equivalent series
        (a tested invariant), but touches only the maintained counters.
        ``tree`` optionally supplies an externally maintained
        max-subpattern tree whose hit counts already equal this partial's
        (the streaming decrement strategy keeps one alive across windows
        and hands it in instead of rebuilding); its ``C_max`` letters must
        be exactly the current F1 letters.  ``kernel`` selects the
        derivation kernel exactly as in
        :meth:`MaxSubpatternTree.derive_frequent` (``"columnar"`` and
        ``"batched"`` share the superset-sum pass; the window counters
        themselves are scan-free either way).
        """
        f1, threshold = self.frequent_one(min_conf)
        stats = MiningStats()
        if not f1:
            return MiningResult(
                algorithm=algorithm,
                period=self._period,
                min_conf=min_conf,
                num_periods=self._num_periods,
                counts={},
                stats=stats,
            )
        if tree is None:
            tree = self.build_tree(f1)
        stats.tree_nodes = tree.node_count
        stats.hit_set_size = tree.hit_set_size
        letter_counts, candidate_counts = tree.derive_frequent(
            threshold, f1, max_letters=max_letters, kernel=kernel
        )
        stats.candidate_counts = candidate_counts
        return MiningResult(
            algorithm=algorithm,
            period=self._period,
            min_conf=min_conf,
            num_periods=self._num_periods,
            counts={
                Pattern.from_letters(self._period, letters): count
                for letters, count in letter_counts.items()
            },
            stats=stats,
        )

    def __repr__(self) -> str:
        return (
            f"SegmentPartial(period={self._period}, "
            f"m={self._num_periods}, signatures={self.distinct_signatures})"
        )


class IncrementalHitSetMiner:
    """Streaming counterpart of Algorithm 3.2 for one fixed period.

    A slot-level facade over one :class:`SegmentPartial`: slots buffer
    into whole segments, the trailing partial segment stays pending (never
    mined, never dropped), and mining/merging delegate to the partial.

    Parameters
    ----------
    period:
        The period mined; fixed for the lifetime of the miner.
    min_conf:
        Default confidence threshold for :meth:`mine` (overridable per
        call — the maintained state is threshold-independent).

    Examples
    --------
    >>> miner = IncrementalHitSetMiner(3, min_conf=0.9)
    >>> miner.extend("abd")
    >>> miner.extend("abcabd")
    >>> sorted(str(p) for p in miner.mine())
    ['*b*', 'a**', 'ab*']
    """

    __slots__ = ("_min_conf", "_partial", "_pending")

    def __init__(self, period: int, min_conf: float = 0.5):
        check_min_conf(min_conf)
        self._min_conf = min_conf
        self._partial = SegmentPartial(period)
        #: Slots of the currently-incomplete trailing segment.
        self._pending: list[frozenset[str]] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """The fixed period."""
        return self._partial.period

    @property
    def num_periods(self) -> int:
        """Whole segments absorbed so far (the current ``m``)."""
        return self._partial.num_periods

    @property
    def pending_slots(self) -> int:
        """Slots buffered toward the next whole segment (0..period-1)."""
        return len(self._pending)

    @property
    def distinct_signatures(self) -> int:
        """Distinct segment letter-sets stored — the memory driver."""
        return self._partial.distinct_signatures

    @property
    def partial(self) -> SegmentPartial:
        """The underlying whole-segment summary (pending slots excluded)."""
        return self._partial

    def append(self, slot: SlotLike) -> None:
        """Absorb one slot; a segment completes every ``period`` appends."""
        self._pending.append(_normalize_slot(slot))
        if len(self._pending) == self._partial.period:
            self._partial.absorb(self._pending)
            self._pending.clear()

    def extend(self, slots: Iterable | str | FeatureSeries) -> None:
        """Absorb many slots (a string of symbols, a series, any iterable)."""
        if isinstance(slots, str):
            slots = FeatureSeries.from_symbols(slots)
        for slot in slots:
            self.append(slot)

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------

    def mine(
        self,
        min_conf: float | None = None,
        max_letters: int | None = None,
        kernel: str = "batched",
    ) -> MiningResult:
        """All frequent patterns of the absorbed whole segments.

        Identical to running Algorithm 3.2 over the accumulated series
        (trailing partial segment excluded), but touches only the
        maintained counters — a tested invariant.  ``kernel`` selects the
        derivation kernel (see :meth:`SegmentPartial.mine`).
        """
        min_conf = self._min_conf if min_conf is None else min_conf
        return self._partial.mine(
            min_conf, max_letters=max_letters, kernel=kernel
        )

    def merge(self, other: "IncrementalHitSetMiner") -> None:
        """Fold another miner's whole segments into this one (same period).

        Segment counting is additive, so shards of a partitioned series
        can be absorbed in parallel and merged.  ``other`` must sit at a
        segment boundary: its pending trailing slots have no position in
        this miner's stream, so transferring them could only drop or
        double-count a segment — the merge refuses loudly instead.  This
        miner's *own* pending slots are untouched: the partial trailing
        segment keeps filling after the merge and is absorbed exactly once
        when it completes (pinned by regression tests).
        """
        if other is self:
            raise MiningError("cannot merge a miner into itself")
        if other._pending:
            raise MiningError(
                "merge requires the other miner at a segment boundary "
                f"({len(other._pending)} pending slots would be dropped)"
            )
        self._partial.merge(other._partial)

    def __repr__(self) -> str:
        return (
            f"IncrementalHitSetMiner(period={self.period}, "
            f"m={self.num_periods}, signatures={self.distinct_signatures}, "
            f"pending={self.pending_slots})"
        )
