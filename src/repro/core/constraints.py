"""Constraint-based partial periodicity mining.

Section 6 lists "query- and constraint-based mining of partial
periodicity" (citing Ng, Lakshmanan, Han & Pang, SIGMOD'98) among the
natural follow-ups.  This module implements the constraint classes that
push down cleanly into the hit-set pipeline:

* **anti-monotone** constraints (violated by a pattern ⇒ violated by every
  superpattern) are pushed into the F1 filter and the tree derivation:
  allowed offsets, forbidden features, maximum letters / L-length;
* **monotone** constraints (satisfied by a pattern ⇒ satisfied by every
  superpattern) are applied as a post-filter, with their counts already
  exact: required features, minimum letters.

Pushing the anti-monotone constraints down shrinks ``C_max`` itself, so
the two scans and the tree only ever touch the constrained search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.counting import check_min_conf
from repro.core.errors import MiningError
from repro.core.maxpattern import find_frequent_one_patterns
from repro.core.pattern import Letter, Pattern
from repro.core.result import MiningResult, MiningStats
from repro.tree.max_subpattern_tree import MaxSubpatternTree
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class MiningConstraints:
    """A conjunctive constraint on the patterns to mine.

    Attributes
    ----------
    offsets:
        If set, patterns may only use these offsets (anti-monotone).
    forbidden_features:
        Features that may not appear in any pattern (anti-monotone).
    max_letters:
        Maximum letter count (anti-monotone).
    max_l_length:
        Maximum number of distinct non-``*`` offsets (anti-monotone).
    required_features:
        Every returned pattern must mention all of these features at some
        offset (monotone; post-filter).
    min_letters:
        Minimum letter count of returned patterns (monotone; post-filter).
    """

    offsets: frozenset[int] | None = None
    forbidden_features: frozenset[str] = field(default_factory=frozenset)
    max_letters: int | None = None
    max_l_length: int | None = None
    required_features: frozenset[str] = field(default_factory=frozenset)
    min_letters: int = 1

    def __post_init__(self) -> None:
        if self.max_letters is not None and self.max_letters < 1:
            raise MiningError(
                f"max_letters must be >= 1, got {self.max_letters}"
            )
        if self.max_l_length is not None and self.max_l_length < 1:
            raise MiningError(
                f"max_l_length must be >= 1, got {self.max_l_length}"
            )
        if self.min_letters < 1:
            raise MiningError(
                f"min_letters must be >= 1, got {self.min_letters}"
            )
        if self.max_letters is not None and self.min_letters > self.max_letters:
            raise MiningError(
                f"min_letters ({self.min_letters}) exceeds max_letters "
                f"({self.max_letters})"
            )

    # -- constraint checks -------------------------------------------------

    def admits_letter(self, letter: Letter) -> bool:
        """Anti-monotone letter-level check (offsets + forbidden features)."""
        offset, feature = letter
        if self.offsets is not None and offset not in self.offsets:
            return False
        return feature not in self.forbidden_features

    def within_size_caps(self, pattern: Pattern) -> bool:
        """Anti-monotone size check."""
        if self.max_letters is not None and pattern.letter_count > self.max_letters:
            return False
        if self.max_l_length is not None and pattern.l_length > self.max_l_length:
            return False
        return True

    def satisfied_by(self, pattern: Pattern) -> bool:
        """Full check: anti-monotone parts plus the monotone post-filters."""
        if not all(self.admits_letter(letter) for letter in pattern.letters):
            return False
        if not self.within_size_caps(pattern):
            return False
        if pattern.letter_count < self.min_letters:
            return False
        present = {feature for _, feature in pattern.letters}
        return self.required_features <= present

    @classmethod
    def about(cls, *features: str, **kwargs: Any) -> "MiningConstraints":
        """Shorthand for "patterns mentioning all of these features"."""
        return cls(required_features=frozenset(features), **kwargs)


def mine_with_constraints(
    series: FeatureSeries,
    period: int,
    min_conf: float,
    constraints: MiningConstraints,
) -> MiningResult:
    """Hit-set mining with constraint push-down (two scans).

    Anti-monotone constraints prune F1 before ``C_max`` is formed, so the
    tree and the derivation only explore admissible letters; size caps
    bound the derivation depth; monotone constraints filter the final
    output.  Counts are exact frequency counts in all cases.
    """
    check_min_conf(min_conf)
    stats = MiningStats()
    one_patterns = find_frequent_one_patterns(series, period, min_conf)
    stats.scans = 1

    if constraints.offsets is not None:
        bad = [o for o in constraints.offsets if not 0 <= o < period]
        if bad:
            raise MiningError(
                f"constraint offsets {bad} out of range for period {period}"
            )

    admissible = {
        letter: count
        for letter, count in one_patterns.letters.items()
        if constraints.admits_letter(letter)
    }

    def finish(counts: dict[Pattern, int]) -> MiningResult:
        filtered = {
            pattern: count
            for pattern, count in counts.items()
            if constraints.satisfied_by(pattern)
        }
        return MiningResult(
            algorithm="constrained-hitset",
            period=period,
            min_conf=min_conf,
            num_periods=one_patterns.num_periods,
            counts=filtered,
            stats=stats,
        )

    if not admissible:
        return finish({})

    # Derivation cap: letter count is anti-monotone, so it can bound the
    # level-wise derivation directly.  L-length is checked exactly in the
    # post-filter (letters at a shared offset keep L-length below the
    # letter count, so capping depth at max_l_length would lose patterns).
    max_letters = constraints.max_letters

    cmax = Pattern.from_letters(period, admissible)
    tree = MaxSubpatternTree(cmax)
    tree.insert_all_segments(series)
    stats.scans = 2
    stats.tree_nodes = tree.node_count
    stats.hit_set_size = tree.hit_set_size

    letter_counts, candidate_counts = tree.derive_frequent(
        one_patterns.threshold, admissible, max_letters=max_letters
    )
    stats.candidate_counts = candidate_counts
    return finish(
        {
            Pattern.from_letters(period, letters): count
            for letters, count in letter_counts.items()
        }
    )
