"""Apriori candidate generation over pattern letter sets.

A pattern of a fixed period is, internally, a set of ``(offset, feature)``
letters (see :mod:`repro.core.pattern`).  Candidate generation is therefore
the classic apriori-gen of Agrawal & Srikant [2], applied to letter sets:
join two frequent k-letter sets sharing a (k-1)-prefix, then prune any
candidate with an infrequent k-subset (Property 3.1, the Apriori property on
periodicity).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Collection, Iterable

from repro.core.errors import MiningError
from repro.core.pattern import Letter


def apriori_join(
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Join step only: all (k+1)-sets whose two generating k-sets share a
    (k-1)-prefix in canonical letter order.  Exposed separately for tests."""
    sizes = {len(itemset) for itemset in frequent}
    if len(sizes) > 1:
        raise MiningError(f"apriori join needs uniform sizes, got {sorted(sizes)}")
    joined: set[frozenset[Letter]] = set()
    by_prefix: dict[tuple[Letter, ...], list[Letter]] = defaultdict(list)
    for itemset in frequent:
        ordered = tuple(sorted(itemset))
        by_prefix[ordered[:-1]].append(ordered[-1])
    for prefix, lasts in by_prefix.items():
        lasts.sort()
        for index, first in enumerate(lasts):
            for second in lasts[index + 1 :]:
                joined.add(frozenset(prefix + (first, second)))
    return joined


def apriori_prune(
    candidates: Iterable[frozenset[Letter]],
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Prune step: keep candidates all of whose one-smaller subsets are
    frequent (Property 3.1)."""
    frequent_set = set(frequent)
    survivors: set[frozenset[Letter]] = set()
    for candidate in candidates:
        if all(candidate - {letter} in frequent_set for letter in candidate):
            survivors.add(candidate)
    return survivors


def generate_candidates(
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Full apriori-gen: join then prune.

    Given the frequent k-letter sets, returns the candidate (k+1)-letter
    sets.  Returns an empty set when fewer than two frequent sets exist.

    Examples
    --------
    >>> a, b, c = (0, "a"), (1, "b"), (2, "c")
    >>> frequent = [frozenset([a, b]), frozenset([a, c]), frozenset([b, c])]
    >>> generate_candidates(frequent) == {frozenset([a, b, c])}
    True
    """
    if len(frequent) < 2:
        return set()
    return apriori_prune(apriori_join(frequent), frequent)


def singleton_candidates(letters: Iterable[Letter]) -> set[frozenset[Letter]]:
    """Wrap individual letters as 1-letter candidate sets."""
    return {frozenset((letter,)) for letter in letters}
