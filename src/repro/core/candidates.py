"""Apriori candidate generation over pattern letter sets.

A pattern of a fixed period is, internally, a set of ``(offset, feature)``
letters (see :mod:`repro.core.pattern`).  Candidate generation is therefore
the classic apriori-gen of Agrawal & Srikant [2], applied to letter sets:
join two frequent k-letter sets sharing a (k-1)-prefix, then prune any
candidate with an infrequent k-subset (Property 3.1, the Apriori property on
periodicity).

Two equivalent representations are supported.  The letter-set functions
(:func:`apriori_join` / :func:`apriori_prune`) are the readable reference
implementation, kept for tests and documentation.  The mining hot paths use
the bitmask forms (:func:`apriori_join_masks` / :func:`apriori_prune_masks`
/ :func:`generate_candidate_masks`) over a
:class:`~repro.encoding.vocabulary.LetterVocabulary` in canonical sorted
order, where bit order equals letter order — so "shared (k-1)-prefix"
becomes "equal mask with the highest bit cleared" and the subset probe of
the prune step is one XOR per letter.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Collection, Iterable
from itertools import chain

from repro.core.errors import MiningError
from repro.core.pattern import Letter
from repro.encoding.vocabulary import LetterVocabulary


def apriori_join(
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Join step only: all (k+1)-sets whose two generating k-sets share a
    (k-1)-prefix in canonical letter order.  Exposed separately for tests."""
    sizes = {len(itemset) for itemset in frequent}
    if len(sizes) > 1:
        raise MiningError(f"apriori join needs uniform sizes, got {sorted(sizes)}")
    joined: set[frozenset[Letter]] = set()
    by_prefix: dict[tuple[Letter, ...], list[Letter]] = defaultdict(list)
    for itemset in frequent:
        ordered = tuple(sorted(itemset))
        by_prefix[ordered[:-1]].append(ordered[-1])
    for prefix, lasts in by_prefix.items():
        lasts.sort()
        for index, first in enumerate(lasts):
            for second in lasts[index + 1 :]:
                joined.add(frozenset(prefix + (first, second)))
    return joined


def apriori_prune(
    candidates: Iterable[frozenset[Letter]],
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Prune step: keep candidates all of whose one-smaller subsets are
    frequent (Property 3.1)."""
    frequent_set = set(frequent)
    survivors: set[frozenset[Letter]] = set()
    for candidate in candidates:
        if all(candidate - {letter} in frequent_set for letter in candidate):
            survivors.add(candidate)
    return survivors


def apriori_join_masks(frequent: Collection[int]) -> set[int]:
    """Bitmask join step: masks sharing all bits but their highest.

    Bit order is sorted-letter order, so the "highest bit" is the last
    letter of the sorted itemset and clearing it yields the canonical
    (k-1)-prefix — the exact mask analogue of :func:`apriori_join`.
    """
    sizes = {mask.bit_count() for mask in frequent}
    if len(sizes) > 1:
        raise MiningError(
            f"apriori join needs uniform sizes, got {sorted(sizes)}"
        )
    joined: set[int] = set()
    by_prefix: dict[int, list[int]] = defaultdict(list)
    for mask in frequent:
        high = 1 << (mask.bit_length() - 1)
        by_prefix[mask ^ high].append(high)
    for prefix, highs in by_prefix.items():
        highs.sort()
        for index, first in enumerate(highs):
            for second in highs[index + 1 :]:
                joined.add(prefix | first | second)
    return joined


def apriori_prune_masks(
    candidates: Iterable[int], frequent: Collection[int]
) -> set[int]:
    """Bitmask prune step: every drop-one-bit submask must be frequent."""
    frequent_set = set(frequent)
    survivors: set[int] = set()
    for candidate in candidates:
        remaining = candidate
        keep = True
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            if candidate ^ low not in frequent_set:
                keep = False
                break
        if keep:
            survivors.add(candidate)
    return survivors


def generate_candidate_masks(frequent: Collection[int]) -> set[int]:
    """Full apriori-gen on bitmasks: join then prune.

    The hot-path form used by Algorithm 3.1's level loop and the tree's
    derivation (Algorithm 4.2).  Returns an empty set when fewer than two
    frequent masks exist.
    """
    if len(frequent) < 2:
        return set()
    return apriori_prune_masks(apriori_join_masks(frequent), frequent)


def generate_candidates(
    frequent: Collection[frozenset[Letter]],
) -> set[frozenset[Letter]]:
    """Full apriori-gen: join then prune.

    Given the frequent k-letter sets, returns the candidate (k+1)-letter
    sets.  Returns an empty set when fewer than two frequent sets exist.
    Internally round-trips through the bitmask form over a canonical
    vocabulary of the participating letters.

    Examples
    --------
    >>> a, b, c = (0, "a"), (1, "b"), (2, "c")
    >>> frequent = [frozenset([a, b]), frozenset([a, c]), frozenset([b, c])]
    >>> generate_candidates(frequent) == {frozenset([a, b, c])}
    True
    """
    if len(frequent) < 2:
        return set()
    vocab = LetterVocabulary.from_letters(chain.from_iterable(frequent))
    masks = {vocab.encode_letters(itemset) for itemset in frequent}
    return {
        vocab.decode_mask(mask) for mask in generate_candidate_masks(masks)
    }


def singleton_candidates(letters: Iterable[Letter]) -> set[frozenset[Letter]]:
    """Wrap individual letters as 1-letter candidate sets."""
    return {frozenset((letter,)) for letter in letters}
