"""Synthetic time-series generator reproducing Section 5.1 of the paper.

The paper's test databases are "synthetic time-series databases generated
using a randomized periodicity data generation algorithm.  From a set of
features, potentially frequent 1-patterns are composed.  The size of the
potentially frequent 1-patterns is determined based on a Poisson
distribution.  These patterns are generated and put into the time-series
according to an exponential distribution."

Our generator follows that recipe with the four Table 1 knobs:

``LENGTH``
    the series length ``N``;
``period``
    the period ``p``;
``MAX-PAT-LENGTH``
    the maximal L-length of the *planted* frequent pattern: that many
    letters are planted on distinct offsets and always occur together, so
    every subpattern of the planted pattern — up to L-length
    MAX-PAT-LENGTH — is frequent, and nothing longer is;
``|F1|``
    the number of frequent 1-patterns: on top of the planted letters,
    ``f1_size - max_pat_length`` additional letters are planted with a
    confidence above ``min_conf`` individually but whose pairwise products
    fall below it, so F1 has exactly the requested size without stretching
    the maximal pattern length.

Occurrences are placed with exponential inter-arrival gaps of the form
``1 + Exp((1-q)/q)`` segments, whose mean is ``1/q``: the occupied fraction
of segments converges to the target confidence ``q`` with no
double-planting.  Noise events arrive along the slot axis with exponential
gaps of mean ``1/noise_rate`` and draw uniformly from the non-frequent part
of the alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import GeneratorError
from repro.core.pattern import Letter, Pattern
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class SyntheticSpec:
    """Parameters of one synthetic series (the paper's Table 1).

    Attributes
    ----------
    length:
        ``LENGTH`` — number of slots.
    period:
        The period ``p`` the structure is planted at.
    max_pat_length:
        ``MAX-PAT-LENGTH`` — L-length of the planted always-together
        pattern.
    f1_size:
        ``|F1|`` — total frequent letters (planted + independents).
    alphabet_size:
        Total distinct features; the surplus beyond ``f1_size`` feeds noise.
    planted_confidence:
        Target confidence of the planted max pattern (and all of its
        subpatterns).
    extra_confidence:
        Target confidence of each additional F1 letter.  Choose
        ``min_conf <= extra_confidence`` and
        ``extra_confidence**2 < min_conf`` so the extras are frequent alone
        but not in combination.
    noise_rate:
        Expected noise events per slot.
    poisson_f1:
        When true, draw the *potentially frequent* letter-pool size from a
        Poisson distribution with mean ``f1_size`` (the paper's wording)
        instead of using ``f1_size`` exactly.
    seed:
        Seed of the deterministic :class:`numpy.random.Generator`.
    """

    length: int
    period: int
    max_pat_length: int
    f1_size: int = 12
    alphabet_size: int = 100
    planted_confidence: float = 0.8
    extra_confidence: float = 0.7
    noise_rate: float = 0.2
    poisson_f1: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise GeneratorError(f"length must be >= 1, got {self.length}")
        if not 1 <= self.period <= self.length:
            raise GeneratorError(
                f"period must be in [1, length], got {self.period}"
            )
        if not 1 <= self.max_pat_length <= self.period:
            raise GeneratorError(
                "max_pat_length must be in [1, period], "
                f"got {self.max_pat_length}"
            )
        if self.f1_size < self.max_pat_length:
            raise GeneratorError(
                f"f1_size ({self.f1_size}) must be >= max_pat_length "
                f"({self.max_pat_length})"
            )
        if self.alphabet_size < self.f1_size:
            raise GeneratorError(
                f"alphabet_size ({self.alphabet_size}) must be >= f1_size "
                f"({self.f1_size})"
            )
        for name in ("planted_confidence", "extra_confidence"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise GeneratorError(f"{name} must be in (0, 1], got {value}")
        if self.noise_rate < 0:
            raise GeneratorError(
                f"noise_rate must be >= 0, got {self.noise_rate}"
            )

    @property
    def num_periods(self) -> int:
        """``m = floor(LENGTH / p)``."""
        return self.length // self.period

    def generate(self) -> "SyntheticSeries":
        """Materialize the series (deterministic for a fixed spec)."""
        return _generate(self)


@dataclass(slots=True)
class SyntheticSeries:
    """A generated series together with its ground truth."""

    spec: SyntheticSpec
    series: FeatureSeries
    #: The planted always-together pattern of L-length ``max_pat_length``.
    planted_pattern: Pattern
    #: All letters planted with confidence >= their target (planted +
    #: extras); the expected F1 at ``min_conf`` just below the targets.
    planted_letters: list[Letter] = field(default_factory=list)

    @property
    def recommended_min_conf(self) -> float:
        """A threshold that separates planted structure from combinations.

        Slightly below ``extra_confidence`` (every planted letter is
        frequent) yet above ``extra_confidence**2`` (independent extras do
        not combine), so the maximal frequent L-length equals
        ``max_pat_length``.
        """
        spec = self.spec
        floor = spec.extra_confidence * spec.extra_confidence
        ceiling = min(spec.extra_confidence, spec.planted_confidence)
        return max(floor + 0.75 * (ceiling - floor), 0.01)


def _occurrence_segments(
    rng: np.random.Generator, num_segments: int, target_confidence: float
) -> np.ndarray:
    """Segment indices occupied by one planted structure.

    Gaps between consecutive occurrences are ``1 + Exp((1-q)/q)`` segments,
    giving mean gap ``1/q`` and hence an occupied fraction of ``q`` without
    ever planting twice in one segment.
    """
    if target_confidence >= 1.0:
        return np.arange(num_segments)
    scale = (1.0 - target_confidence) / target_confidence
    # Draw enough gaps to cover the segment axis with slack.
    expected = int(num_segments * target_confidence) + 16
    positions: list[int] = []
    cursor = rng.exponential(scale)
    while True:
        gaps = 1.0 + rng.exponential(scale, size=expected)
        for gap in gaps:
            index = int(cursor)
            if index >= num_segments:
                return np.array(positions, dtype=np.int64)
            positions.append(index)
            cursor += gap


def _generate(spec: SyntheticSpec) -> SyntheticSeries:
    rng = np.random.default_rng(spec.seed)
    num_segments = spec.num_periods
    if num_segments < 1:
        raise GeneratorError(
            f"length {spec.length} holds no whole period of {spec.period}"
        )

    pool_size = spec.f1_size
    if spec.poisson_f1:
        pool_size = int(rng.poisson(spec.f1_size))
        pool_size = min(max(pool_size, spec.max_pat_length), spec.alphabet_size)

    features = [f"f{index}" for index in range(spec.alphabet_size)]

    # Planted max pattern: distinct offsets, distinct features.
    planted_offsets = rng.choice(
        spec.period, size=spec.max_pat_length, replace=False
    )
    planted = [
        (int(offset), features[index])
        for index, offset in enumerate(sorted(planted_offsets))
    ]

    # Extra F1 letters: any offsets (collisions with planted offsets are
    # fine and exercise multi-letter positions), fresh features.
    extra_count = pool_size - spec.max_pat_length
    extras = [
        (int(rng.integers(spec.period)), features[spec.max_pat_length + index])
        for index in range(extra_count)
    ]

    slots: list[set[str]] = [set() for _ in range(spec.length)]

    # Plant the max pattern: all of its letters together per occurrence.
    for segment in _occurrence_segments(
        rng, num_segments, spec.planted_confidence
    ):
        base = int(segment) * spec.period
        for offset, feature in planted:
            slots[base + offset].add(feature)

    # Plant each extra letter independently.
    for offset, feature in extras:
        for segment in _occurrence_segments(
            rng, num_segments, spec.extra_confidence
        ):
            slots[int(segment) * spec.period + offset].add(feature)

    # Noise: exponential arrivals along the slot axis, features drawn from
    # the non-frequent part of the alphabet (falls back to the whole
    # alphabet if it was fully consumed by F1).
    noise_features = features[pool_size:] or features
    if spec.noise_rate > 0:
        scale = 1.0 / spec.noise_rate
        cursor = 0.0
        while cursor < spec.length:
            batch = int(spec.noise_rate * (spec.length - cursor)) + 64
            arrivals = cursor + np.cumsum(rng.exponential(scale, size=batch))
            in_range = arrivals[arrivals < spec.length]
            choices = rng.integers(len(noise_features), size=len(in_range))
            for position, choice in zip(in_range, choices):
                slots[int(position)].add(noise_features[int(choice)])
            cursor = float(arrivals[-1]) if len(arrivals) else float(spec.length)

    return SyntheticSeries(
        spec=spec,
        series=FeatureSeries(slots),
        planted_pattern=Pattern.from_letters(spec.period, planted),
        planted_letters=planted + extras,
    )


def generate_series(
    length: int,
    period: int,
    max_pat_length: int,
    f1_size: int = 12,
    seed: int = 0,
    **overrides: Any,
) -> SyntheticSeries:
    """One-call convenience wrapper around :class:`SyntheticSpec`."""
    spec = SyntheticSpec(
        length=length,
        period=period,
        max_pat_length=max_pat_length,
        f1_size=f1_size,
        seed=seed,
        **overrides,
    )
    return spec.generate()
