"""Canned, reproducible workloads for examples, tests and benchmarks.

Each builder returns fully deterministic data for a given seed.  The
Figure 2 builders mirror the paper's performance-study configuration
(``p = 50``, ``|F1| = 12``, MAX-PAT-LENGTH swept 2..10, LENGTH 100k/500k).
"""

from __future__ import annotations

import numpy as np

from repro.synth.generator import SyntheticSeries, SyntheticSpec
from repro.timeseries.events import EventDatabase
from repro.timeseries.feature_series import FeatureSeries

#: The confidence threshold used with the Figure 2 workloads: below every
#: planted letter's confidence, above any independent combination's.
FIGURE2_MIN_CONF = 0.64

#: The paper's Figure 2 constants.
FIGURE2_PERIOD = 50
FIGURE2_F1_SIZE = 12


def figure2_spec(
    max_pat_length: int,
    length: int = 100_000,
    seed: int = 0,
) -> SyntheticSpec:
    """The Figure 2 workload at one MAX-PAT-LENGTH setting."""
    return SyntheticSpec(
        length=length,
        period=FIGURE2_PERIOD,
        max_pat_length=max_pat_length,
        f1_size=FIGURE2_F1_SIZE,
        seed=seed,
    )


def figure2_series(
    max_pat_length: int,
    length: int = 100_000,
    seed: int = 0,
) -> SyntheticSeries:
    """Generated Figure 2 series (see :func:`figure2_spec`)."""
    return figure2_spec(max_pat_length, length=length, seed=seed).generate()


def newspaper_week(
    weeks: int = 156,
    reliability: float = 0.9,
    seed: int = 0,
) -> FeatureSeries:
    """The paper's motivating example as a daily-slot series.

    Jim reads the Vancouver Sun every weekday morning (with the given
    reliability), jogs most Saturdays, shops many Sundays, and does a
    handful of irregular activities.  Mining at period 7 with a confidence
    threshold below ``reliability`` recovers the weekday reading pattern.
    """
    rng = np.random.default_rng(seed)
    other_activities = ["movies", "dining", "soccer", "visit", "concert"]
    slots: list[set[str]] = []
    for _ in range(weeks):
        for day in range(7):
            slot: set[str] = set()
            if day < 5 and rng.random() < reliability:
                slot.add("paper")
            if day == 5 and rng.random() < 0.8:
                slot.add("jog")
            if day == 6 and rng.random() < 0.7:
                slot.add("shop")
            if rng.random() < 0.15:
                slot.add(str(rng.choice(other_activities)))
            slots.append(slot)
    return FeatureSeries(slots)


def power_consumption(
    days: int = 120,
    seed: int = 0,
) -> np.ndarray:
    """Hourly power-consumption readings with a strong daily shape.

    A smooth base load plus a morning and an evening peak on most days,
    with Gaussian noise — the Section 6 numeric-data scenario.  Returns the
    raw numeric array; discretize it with
    :mod:`repro.timeseries.discretize` before mining.
    """
    rng = np.random.default_rng(seed)
    hours = np.arange(days * 24)
    hour_of_day = hours % 24
    base = 40.0 + 8.0 * np.sin(2.0 * np.pi * hour_of_day / 24.0)
    morning = 25.0 * np.exp(-0.5 * ((hour_of_day - 8.0) / 1.5) ** 2)
    evening = 35.0 * np.exp(-0.5 * ((hour_of_day - 19.0) / 2.0) ** 2)
    # Some days skip the evening peak (weekends away, say).
    day_index = hours // 24
    evening_on = rng.random(days) < 0.85
    evening = evening * evening_on[day_index]
    noise = rng.normal(0.0, 3.0, size=len(hours))
    return base + morning + evening + noise


def retail_transactions(
    weeks: int = 104,
    seed: int = 0,
) -> EventDatabase:
    """A timestamped retail event database with weekly structure.

    Times are in days.  Saturdays see promotions and high traffic, Mondays
    see restocking; scattered one-off events add noise.  Bucket with
    ``slot_width=1`` (daily slots) and mine at period 7.
    """
    rng = np.random.default_rng(seed)
    database = EventDatabase()
    for week in range(weeks):
        base = week * 7.0
        if rng.random() < 0.9:
            database.add(base + 0.3, "restock")
        if rng.random() < 0.85:
            database.add(base + 5.2, "promotion")
        if rng.random() < 0.8:
            database.add(base + 5.6, "high_traffic")
        if rng.random() < 0.6:
            database.add(base + 6.4, "high_traffic")
        for _ in range(int(rng.poisson(1.2))):
            database.add(
                base + float(rng.uniform(0.0, 7.0)),
                str(rng.choice(["audit", "delivery", "return_spike"])),
            )
    return database


def unexpected_period_series(
    period: int = 11,
    repetitions: int = 400,
    seed: int = 0,
) -> FeatureSeries:
    """A series periodic at a non-calendar period (default 11).

    Section 3.2's motivation for range mining: "certain patterns may appear
    at some unexpected periods, such as every 11 years, or every 14 hours".
    """
    rng = np.random.default_rng(seed)
    slots: list[set[str]] = []
    for _ in range(repetitions):
        for offset in range(period):
            slot: set[str] = set()
            if offset == 2 and rng.random() < 0.9:
                slot.add("burst")
            if offset == 7 and rng.random() < 0.85:
                slot.add("dip")
            if rng.random() < 0.1:
                slot.add(str(rng.choice(["x", "y", "z"])))
            slots.append(slot)
    return FeatureSeries(slots)


def perturbed_series(
    period: int = 10,
    repetitions: int = 300,
    jitter_prob: float = 0.5,
    seed: int = 0,
) -> FeatureSeries:
    """A periodic event whose timing wobbles by one slot.

    With probability ``jitter_prob`` the periodic feature lands one slot
    early or late, defeating exact-slot mining; the Section 6 perturbation
    transforms (:mod:`repro.perturbation`) recover it.
    """
    rng = np.random.default_rng(seed)
    length = period * repetitions
    slots: list[set[str]] = [set() for _ in range(length)]
    anchor = period // 2
    for segment in range(repetitions):
        if rng.random() < 0.1:
            continue  # occasional true miss
        shift = 0
        if rng.random() < jitter_prob:
            shift = int(rng.choice([-1, 1]))
        position = segment * period + anchor + shift
        if 0 <= position < length:
            slots[position].add("pulse")
    for index in range(length):
        if rng.random() < 0.05:
            slots[index].add("noise")
    return FeatureSeries(slots)
