"""Synthetic workloads (paper Section 5.1 generator and canned scenarios)."""

from repro.synth.generator import SyntheticSeries, SyntheticSpec, generate_series

__all__ = ["SyntheticSeries", "SyntheticSpec", "generate_series"]
