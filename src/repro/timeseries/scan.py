"""Scan accounting for the disk-resident time-series argument.

Section 5.2 of the paper argues that when the feature series lives on disk,
the dominating cost difference between the Apriori miner (up to ``p`` scans)
and the max-subpattern hit-set miner (exactly 2 scans) is the extra I/O.
:class:`ScanCountingSeries` makes that argument measurable: it wraps a
:class:`~repro.timeseries.feature_series.FeatureSeries` and counts every full
pass over the data, optionally charging a simulated per-slot read cost.

All miners in :mod:`repro.core` access the series only through
``num_periods`` / ``segments`` / ``__len__`` / ``alphabet``, so the wrapper
is a drop-in substitute.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.timeseries.feature_series import FeatureSeries, Segment


class ScanCountingSeries:
    """A feature series wrapper that counts full scans over the data.

    Parameters
    ----------
    series:
        The wrapped feature series.
    slot_cost:
        Simulated cost units charged per slot read (e.g. microseconds per
        tuple fetched from disk).  Purely bookkeeping: no real delay is
        introduced; the accumulated figure is exposed as
        :attr:`simulated_cost`.

    Notes
    -----
    A *scan* is counted when a :meth:`segments` iterator is created; slots
    read are accumulated as the iterator is consumed.  This matches the
    paper's accounting, where each mining round reads the whole series once.
    """

    __slots__ = ("_series", "_slot_cost", "scans", "slots_read")

    def __init__(self, series: FeatureSeries, slot_cost: float = 0.0):
        self._series = series
        self._slot_cost = slot_cost
        #: Number of full passes started over the series.
        self.scans = 0
        #: Total number of slots delivered to consumers.
        self.slots_read = 0

    # -- the miner-facing protocol -------------------------------------

    def num_periods(self, period: int) -> int:
        """Delegate to the wrapped series (metadata access, not a scan)."""
        return self._series.num_periods(period)

    def segments(self, period: int) -> Iterator[Segment]:
        """Iterate period segments while counting the pass as one scan."""
        self.scans += 1
        for segment in self._series.segments(period):
            self.slots_read += period
            yield segment

    def iter_slots(self) -> Iterator[frozenset[str]]:
        """Iterate raw slots while counting the pass as one scan."""
        self.scans += 1
        for slot in self._series.iter_slots():
            self.slots_read += 1
            yield slot

    def __len__(self) -> int:
        return len(self._series)

    @property
    def alphabet(self) -> frozenset[str]:
        """Alphabet of the wrapped series (metadata access, not a scan)."""
        return self._series.alphabet

    # -- bookkeeping -----------------------------------------------------

    @property
    def series(self) -> FeatureSeries:
        """The wrapped series."""
        return self._series

    @property
    def simulated_cost(self) -> float:
        """Accumulated simulated I/O cost: ``slots_read * slot_cost``."""
        return self.slots_read * self._slot_cost

    def reset(self) -> None:
        """Zero the scan and read counters."""
        self.scans = 0
        self.slots_read = 0

    def __repr__(self) -> str:
        return (
            f"ScanCountingSeries(len={len(self._series)}, scans={self.scans}, "
            f"slots_read={self.slots_read})"
        )
