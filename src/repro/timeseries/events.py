"""Derivation of feature series from timestamped event databases.

Section 2 of the paper assumes "a sequence of N timestamped datasets have
been collected in a database" and that a set of features is derived per time
instant.  This module provides that substrate: an :class:`EventDatabase` of
``(timestamp, feature)`` records and the bucketing/derivation step that turns
it into a :class:`~repro.timeseries.feature_series.FeatureSeries`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.errors import SeriesError
from repro.timeseries.feature_series import FeatureSeries


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped observation.

    ``time`` is any real-valued timestamp (seconds, minutes, trading days —
    the unit only matters relative to the bucketing ``slot_width``).
    """

    time: float
    feature: str

    def __post_init__(self) -> None:
        if not self.feature:
            raise SeriesError("an event needs a non-empty feature name")


@dataclass(slots=True)
class EventDatabase:
    """A collection of timestamped events convertible to a feature series."""

    events: list[Event] = field(default_factory=list)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, str]]) -> "EventDatabase":
        """Build from ``(time, feature)`` tuples."""
        return cls([Event(time, feature) for time, feature in pairs])

    def add(self, time: float, feature: str) -> None:
        """Append one event."""
        self.events.append(Event(time, feature))

    def __len__(self) -> int:
        return len(self.events)

    @property
    def time_span(self) -> tuple[float, float]:
        """(earliest, latest) event time; raises on an empty database."""
        if not self.events:
            raise SeriesError("the event database is empty")
        times = [event.time for event in self.events]
        return min(times), max(times)

    def to_feature_series(
        self,
        slot_width: float,
        start: float | None = None,
        end: float | None = None,
    ) -> FeatureSeries:
        """Bucket events into fixed-width time slots.

        Parameters
        ----------
        slot_width:
            Width of one time slot, in the same unit as the event times.
        start, end:
            Time range to cover.  Defaults to the database's span.  Events
            outside ``[start, end)`` are ignored.

        Returns
        -------
        FeatureSeries
            One slot per bucket; slot ``i`` holds the features of all events
            with ``start + i*slot_width <= time < start + (i+1)*slot_width``.
        """
        if slot_width <= 0:
            raise SeriesError(f"slot_width must be positive, got {slot_width}")
        if not self.events:
            raise SeriesError("cannot derive a series from an empty database")
        span_start, span_end = self.time_span
        if start is None:
            start = span_start
        if end is None:
            end = span_end + slot_width
        if end <= start:
            raise SeriesError(f"empty time range [{start}, {end})")
        num_slots = math.ceil((end - start) / slot_width)
        buckets: list[set[str]] = [set() for _ in range(num_slots)]
        for event in self.events:
            if not start <= event.time < end:
                continue
            index = int((event.time - start) // slot_width)
            if index == num_slots:  # end-boundary float edge
                index -= 1
            buckets[index].add(event.feature)
        return FeatureSeries(buckets)


#: A feature extractor maps one raw record to zero or more feature strings.
FeatureExtractor = Callable[[object], Iterable[str]]


def derive_feature_series(
    records: Sequence[object],
    extractors: Sequence[FeatureExtractor],
) -> FeatureSeries:
    """Turn a sequence of raw per-instant records into a feature series.

    This is the general form of the paper's "set of features derived from
    the dataset collected at the instant": each record (one per time instant,
    already aligned to slots) is passed through every extractor and the
    resulting feature strings are unioned.

    Examples
    --------
    >>> readings = [3.0, 9.5, 4.2]
    >>> hot = lambda value: ["hot"] if value > 8 else []
    >>> series = derive_feature_series(readings, [hot])
    >>> [sorted(slot) for slot in series]
    [[], ['hot'], []]
    """
    slots: list[set[str]] = []
    for record in records:
        features: set[str] = set()
        for extractor in extractors:
            features.update(extractor(record))
        slots.append(features)
    return FeatureSeries(slots)
