"""The feature time series — the input of all mining algorithms.

The paper (Section 2) assumes the raw, timestamped data sets have already
been turned into a *feature series* ``D_1 ... D_N`` where every ``D_i`` is a
set of categorical features describing time instant ``i``.
:class:`FeatureSeries` is that object: an immutable sequence of feature sets
with period-segmentation helpers.

Derivation of a feature series from raw inputs lives in the sibling modules
:mod:`repro.timeseries.events` (timestamped event databases) and
:mod:`repro.timeseries.discretize` (numeric series).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Union, cast, overload

from repro.core.errors import SeriesError

if TYPE_CHECKING:
    from repro.encoding.codec import EncodedSeries
    from repro.encoding.vocabulary import LetterVocabulary

#: Anything acceptable as one slot of a series.
SlotLike = Union[str, None, Iterable[str]]

#: One period segment: a tuple of ``period`` feature sets.
Segment = tuple[frozenset[str], ...]


def _normalize_slot(value: SlotLike) -> frozenset[str]:
    """Coerce one slot into a frozenset of feature strings.

    ``None`` or ``""`` mean "no features observed at this instant".  A plain
    string is a single feature; other iterables are feature collections.
    """
    if value is None:
        return frozenset()
    if isinstance(value, str):
        if not value:
            return frozenset()
        return frozenset((value,))
    features = frozenset(value)
    for feature in features:
        if not isinstance(feature, str) or not feature:
            raise SeriesError(f"features must be non-empty strings, got {feature!r}")
    return features


class FeatureSeries:
    """An immutable sequence of feature sets with period segmentation.

    Parameters
    ----------
    slots:
        One entry per time instant.  Each entry is ``None``/``""`` for an
        empty instant, a feature string, or an iterable of feature strings.

    Examples
    --------
    >>> series = FeatureSeries.from_symbols("abdabcabd")
    >>> len(series), series.num_periods(3)
    (9, 3)
    >>> series.segment(3, 1)
    (frozenset({'a'}), frozenset({'b'}), frozenset({'c'}))
    """

    __slots__ = ("_slots", "_digest")

    def __init__(self, slots: Iterable[SlotLike]):
        self._slots: tuple[frozenset[str], ...] = tuple(
            _normalize_slot(value) for value in slots
        )
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_symbols(cls, text: str) -> "FeatureSeries":
        """One single-character feature per instant; ``*`` means empty slot.

        Convenient for paper examples such as ``"abdabcabd"``.
        """
        return cls(None if char == "*" else char for char in text)

    @classmethod
    def from_sets(cls, slots: Iterable[Iterable[str]]) -> "FeatureSeries":
        """Explicit constructor from an iterable of feature collections."""
        return cls(slots)

    @classmethod
    def _from_normalized(
        cls, slots: tuple[frozenset[str], ...]
    ) -> "FeatureSeries":
        """Wrap already-normalized slots without re-validating them.

        Internal fast path used by slicing and pickling, where the slots
        are known to be exactly the tuple-of-frozensets representation.
        """
        series = cls.__new__(cls)
        series._slots = slots
        series._digest = None
        return series

    def __reduce__(
        self,
    ) -> tuple[
        Callable[[tuple[frozenset[str], ...]], FeatureSeries],
        tuple[tuple[frozenset[str], ...]],
    ]:
        # Cheap pickling for shipping shards to worker processes: restore
        # through the normalized fast path instead of re-coercing every
        # slot in __init__ (which is O(total features)).
        return (FeatureSeries._from_normalized, (self._slots,))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def slots(self) -> tuple[frozenset[str], ...]:
        """The underlying tuple of feature sets."""
        return self._slots

    @property
    def alphabet(self) -> frozenset[str]:
        """The set of all features occurring anywhere in the series."""
        return frozenset(feature for slot in self._slots for feature in slot)

    def content_digest(self) -> str:
        """A stable short digest of the series content, computed once.

        Hashes the canonical line-oriented text form (sorted features per
        slot, one slot per line), so equal series always digest equally
        regardless of how their slots were constructed.  The series is
        immutable, so the digest is memoized on first use — repeated
        identity checks (checkpoint run keys, count-cache keys) cost one
        pass total, not one pass each.
        """
        if self._digest is None:
            import hashlib

            digest = hashlib.sha256()
            slots = self._slots
            # Chunked updates: one join + encode per block beats two
            # digest.update calls per slot by a wide margin.
            for start in range(0, len(slots), 8192):
                block = slots[start : start + 8192]
                text = "\n".join(" ".join(sorted(slot)) for slot in block)
                digest.update(text.encode("utf-8"))
                digest.update(b"\n")
            self._digest = digest.hexdigest()[:16]
        return self._digest

    def __len__(self) -> int:
        return len(self._slots)

    @overload
    def __getitem__(self, index: int) -> frozenset[str]: ...

    @overload
    def __getitem__(self, index: slice) -> FeatureSeries: ...

    def __getitem__(self, index: int | slice) -> frozenset[str] | FeatureSeries:
        if isinstance(index, slice):
            return FeatureSeries(self._slots[index])
        return self._slots[index]

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._slots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureSeries):
            return NotImplemented
        return self._slots == other._slots

    def __hash__(self) -> int:
        return hash(self._slots)

    def __add__(self, other: "FeatureSeries") -> "FeatureSeries":
        if not isinstance(other, FeatureSeries):
            return NotImplemented
        return FeatureSeries(self._slots + other._slots)

    def __repr__(self) -> str:
        preview = self.to_text(limit=24)
        return f"FeatureSeries(len={len(self)}, {preview})"

    def to_text(self, limit: int | None = None) -> str:
        """Human-readable rendering, e.g. ``a b{c,d}*a`` (``*`` = empty slot)."""
        rendered: list[str] = []
        slots = self._slots if limit is None else self._slots[:limit]
        for slot in slots:
            if not slot:
                rendered.append("*")
            elif len(slot) == 1:
                (feature,) = slot
                rendered.append(feature if len(feature) == 1 else "{" + feature + "}")
            else:
                rendered.append("{" + ",".join(sorted(slot)) + "}")
        suffix = "..." if limit is not None and len(self._slots) > limit else ""
        return "".join(rendered) + suffix

    # ------------------------------------------------------------------
    # Period segmentation
    # ------------------------------------------------------------------

    def num_periods(self, period: int) -> int:
        """Number of whole period segments, the paper's ``m = floor(N/p)``."""
        self._check_period(period)
        return len(self._slots) // period

    def segment(self, period: int, index: int) -> Segment:
        """The ``index``-th whole period segment (0-based)."""
        count = self.num_periods(period)
        if not 0 <= index < count:
            raise SeriesError(
                f"segment index {index} out of range (0..{count - 1}) "
                f"for period {period}"
            )
        start = index * period
        return self._slots[start : start + period]

    def segments(self, period: int) -> Iterator[Segment]:
        """Iterate over all whole period segments, in order.

        One full consumption of this iterator corresponds to one *scan* of
        the time-series database in the paper's cost accounting; see
        :class:`repro.timeseries.scan.ScanCountingSeries` for the version
        that actually counts scans.
        """
        count = self.num_periods(period)
        for index in range(count):
            start = index * period
            yield self._slots[start : start + period]

    def encoded(
        self, period: int, vocab: "LetterVocabulary | None" = None
    ) -> "EncodedSeries":
        """This series pre-encoded for one period: one bitmask per segment.

        Convenience front door to
        :class:`repro.encoding.codec.EncodedSeries` (local import — the
        encoding package depends on this module).  Without ``vocab`` the
        full sorted letter vocabulary of the series is built first.

        >>> FeatureSeries.from_symbols("abdabcabd").encoded(3)
        EncodedSeries(segments=3, period=3, letters=4)
        """
        from repro.encoding.codec import EncodedSeries

        self._check_period(period)
        return EncodedSeries.from_series(self, period, vocab=vocab)

    def slice_segments(
        self, period: int, start: int, stop: int
    ) -> "FeatureSeries":
        """The sub-series covering whole segments ``start..stop-1``.

        The result contains exactly ``(stop - start) * period`` slots, so a
        shard ships only its chunk to a worker — not the whole series.

        >>> FeatureSeries.from_symbols("abdabcabd").slice_segments(3, 1, 3)
        FeatureSeries(len=6, abcabd)
        """
        count = self.num_periods(period)
        if not 0 <= start <= stop <= count:
            raise SeriesError(
                f"segment slice [{start}, {stop}) out of range (0..{count}) "
                f"for period {period}"
            )
        return FeatureSeries._from_normalized(
            self._slots[start * period : stop * period]
        )

    def iter_slots(self) -> Iterator[frozenset[str]]:
        """Iterate raw slots in order — one full consumption is one scan.

        The shared multi-period miner (Algorithm 3.4) uses slot-level
        iteration so that a *single* pass serves every period at once.
        """
        return iter(self._slots)

    def _check_period(self, period: int) -> None:
        if period < 1:
            raise SeriesError(f"period must be >= 1, got {period}")
        if period > len(self._slots):
            raise SeriesError(
                f"period {period} exceeds series length {len(self._slots)}"
            )


#: Duck-type union accepted by the miners: anything with ``num_periods``,
#: ``segments`` and ``__len__`` works (``FeatureSeries`` or a scan-counting
#: wrapper).
SeriesLike = FeatureSeries


def as_feature_series(data: object) -> FeatureSeries:
    """Coerce common inputs into a series the miners can scan.

    Accepts an existing series or any scan-protocol object such as
    :class:`~repro.timeseries.scan.ScanCountingSeries` (returned unchanged),
    a string of symbols, or any iterable of slots.
    """
    if isinstance(data, FeatureSeries):
        return data
    if all(
        hasattr(data, name) for name in ("segments", "num_periods", "iter_slots")
    ):
        # Duck-typed scan wrapper; keep its accounting intact.  The cast
        # records that scan-protocol objects substitute for a series.
        return cast(FeatureSeries, data)
    if isinstance(data, str):
        return FeatureSeries.from_symbols(data)
    if isinstance(data, Sequence) or isinstance(data, Iterable):
        return FeatureSeries(data)
    raise SeriesError(f"cannot interpret {type(data).__name__} as a feature series")
