"""Time-series substrate: feature series, scans, derivation, persistence."""

from repro.timeseries.dimensions import (
    cross_dimensional,
    dimension_feature,
    project_pattern,
    records_to_series,
    split_feature,
)
from repro.timeseries.events import Event, EventDatabase, derive_feature_series
from repro.timeseries.feature_series import FeatureSeries, as_feature_series
from repro.timeseries.io import (
    load_events_csv,
    load_numeric_csv,
    load_series,
    save_series,
)
from repro.timeseries.numeric import (
    deltas,
    movement_series,
    percent_changes,
    zscores,
)
from repro.timeseries.scan import ScanCountingSeries

__all__ = [
    "Event",
    "EventDatabase",
    "FeatureSeries",
    "ScanCountingSeries",
    "as_feature_series",
    "cross_dimensional",
    "deltas",
    "derive_feature_series",
    "dimension_feature",
    "load_events_csv",
    "load_numeric_csv",
    "load_series",
    "movement_series",
    "percent_changes",
    "project_pattern",
    "records_to_series",
    "save_series",
    "split_feature",
    "zscores",
]
