"""Multi-dimensional feature series.

Section 6: the method "can be extended for mining multiple-level,
multiple-dimensional partial periodicity".  Multi-dimensional data — one
record per time instant with several attributes — maps onto the feature
framework by tagging each value with its dimension: record
``{"weather": "rain", "traffic": "heavy"}`` becomes the feature set
``{"weather=rain", "traffic=heavy"}``.  Patterns then freely mix
dimensions (``weather=rain`` at Monday with ``traffic=heavy`` at Monday),
and per-dimension views project them back apart.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.errors import SeriesError
from repro.core.pattern import Pattern
from repro.timeseries.feature_series import FeatureSeries

#: Separator between dimension name and value in composite features.
DIMENSION_SEPARATOR = "="


def dimension_feature(dimension: str, value: object) -> str:
    """The composite feature for one dimension's value."""
    if not dimension:
        raise SeriesError("dimension name must be non-empty")
    if DIMENSION_SEPARATOR in dimension:
        raise SeriesError(
            f"dimension name may not contain {DIMENSION_SEPARATOR!r}: "
            f"{dimension!r}"
        )
    return f"{dimension}{DIMENSION_SEPARATOR}{value}"


def split_feature(feature: str) -> tuple[str, str]:
    """Invert :func:`dimension_feature`; raises on untagged features."""
    dimension, separator, value = feature.partition(DIMENSION_SEPARATOR)
    if not separator or not dimension:
        raise SeriesError(f"feature {feature!r} carries no dimension tag")
    return dimension, value


def records_to_series(
    records: Sequence[Mapping[str, object]],
    dimensions: Sequence[str] | None = None,
) -> FeatureSeries:
    """One slot per record; each kept attribute becomes a tagged feature.

    Parameters
    ----------
    records:
        One mapping per time instant.
    dimensions:
        Attributes to keep; defaults to every key present.  Missing or
        ``None`` values contribute nothing to the slot.
    """
    slots: list[set[str]] = []
    for record in records:
        keys = dimensions if dimensions is not None else record.keys()
        slot: set[str] = set()
        for key in keys:
            value = record.get(key)
            if value is None:
                continue
            slot.add(dimension_feature(key, value))
        slots.append(slot)
    return FeatureSeries(slots)


def project_pattern(pattern: Pattern, dimension: str) -> Pattern:
    """Keep only the letters of one dimension (others become ``*``).

    The projection of a frequent multi-dimensional pattern is itself
    frequent (it is a subpattern), so per-dimension reports stay sound.
    """
    prefix = dimension + DIMENSION_SEPARATOR
    kept = [
        (offset, feature)
        for offset, feature in pattern.letters
        if feature.startswith(prefix)
    ]
    return Pattern.from_letters(pattern.period, kept)


def pattern_dimensions(pattern: Pattern) -> set[str]:
    """The dimensions a pattern's letters mention."""
    return {
        split_feature(feature)[0]
        for _, feature in pattern.letters
    }


def cross_dimensional(pattern: Pattern) -> bool:
    """True when a pattern links two or more dimensions — the payoff of
    mining the dimensions jointly rather than one series at a time."""
    return len(pattern_dimensions(pattern)) >= 2
