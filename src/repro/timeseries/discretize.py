"""Discretization of numeric time series into categorical feature series.

Section 6 of the paper: "For mining numerical data, such as stock or power
consumption fluctuation, one can examine the distribution of numerical
values in the time-series data and discretize them into single- or
multiple-level categorical data."  This module implements that step with
equal-width, equal-frequency and explicit-breakpoint binning, plus a
two-level (coarse + fine) discretizer feeding multi-level mining.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

from repro.core.errors import SeriesError
from repro.timeseries.feature_series import FeatureSeries


def equal_width_breakpoints(
    values: Sequence[float], bins: int
) -> list[float]:
    """Interior breakpoints splitting ``[min, max]`` into ``bins`` equal bins."""
    _check_binning(values, bins)
    low, high = min(values), max(values)
    if low == high:
        # Degenerate constant series: all values land in the first bin.
        return [low] * (bins - 1)
    width = (high - low) / bins
    return [low + width * index for index in range(1, bins)]


def equal_frequency_breakpoints(
    values: Sequence[float], bins: int
) -> list[float]:
    """Interior breakpoints putting (approximately) equal counts per bin."""
    _check_binning(values, bins)
    ordered = sorted(values)
    count = len(ordered)
    return [
        ordered[min(count - 1, (count * index) // bins)]
        for index in range(1, bins)
    ]


def _check_binning(values: Sequence[float], bins: int) -> None:
    if bins < 2:
        raise SeriesError(f"need at least 2 bins, got {bins}")
    if not values:
        raise SeriesError("cannot compute breakpoints of an empty sequence")


class Discretizer:
    """Map numeric values to categorical level features via breakpoints.

    Parameters
    ----------
    breakpoints:
        Ascending interior breakpoints; ``len(breakpoints) + 1`` bins.  A
        value ``v`` lands in bin ``i`` iff
        ``breakpoints[i-1] <= v < breakpoints[i]`` (right-open bins, final
        bin closed above by +inf).
    labels:
        Optional bin names; defaults to ``lvl0 .. lvlK``.

    Examples
    --------
    >>> disc = Discretizer([10.0, 20.0], labels=["low", "mid", "high"])
    >>> disc.label(5.0), disc.label(10.0), disc.label(25.0)
    ('low', 'mid', 'high')
    """

    __slots__ = ("_breakpoints", "_labels")

    def __init__(
        self,
        breakpoints: Sequence[float],
        labels: Sequence[str] | None = None,
    ):
        ordered = list(breakpoints)
        if sorted(ordered) != ordered:
            raise SeriesError(f"breakpoints must be ascending, got {ordered}")
        bins = len(ordered) + 1
        if labels is None:
            labels = [f"lvl{index}" for index in range(bins)]
        if len(labels) != bins:
            raise SeriesError(
                f"{bins} bins need {bins} labels, got {len(labels)}"
            )
        self._breakpoints = ordered
        self._labels = list(labels)

    @classmethod
    def equal_width(
        cls,
        values: Sequence[float],
        bins: int,
        labels: Sequence[str] | None = None,
    ) -> "Discretizer":
        """Fit equal-width bins to the observed value range."""
        return cls(equal_width_breakpoints(values, bins), labels)

    @classmethod
    def equal_frequency(
        cls,
        values: Sequence[float],
        bins: int,
        labels: Sequence[str] | None = None,
    ) -> "Discretizer":
        """Fit equal-frequency (quantile) bins to the observed values."""
        return cls(equal_frequency_breakpoints(values, bins), labels)

    @property
    def labels(self) -> list[str]:
        """The bin labels, in ascending value order."""
        return list(self._labels)

    def label(self, value: float) -> str:
        """The bin label for one numeric value."""
        return self._labels[bisect.bisect_right(self._breakpoints, value)]

    def transform(self, values: Sequence[float]) -> FeatureSeries:
        """Discretize a numeric sequence into a single-feature-per-slot series."""
        return FeatureSeries(self.label(value) for value in values)


class MultiLevelDiscretizer:
    """Two-level discretization: every slot carries a coarse and a fine label.

    The coarse level uses ``coarse_bins`` equal-frequency bins; each coarse
    bin is subdivided into ``fine_per_coarse`` equal-width sub-bins.  Slot
    features are ``{coarse, coarse.fine}``, which is exactly the shape the
    multi-level miner (:mod:`repro.multilevel`) drills down through.

    Examples
    --------
    >>> values = list(range(100))
    >>> multi = MultiLevelDiscretizer.fit(values, coarse_bins=2,
    ...                                   fine_per_coarse=2,
    ...                                   coarse_labels=["low", "high"])
    >>> sorted(multi.features(10.0))
    ['low', 'low.0']
    """

    __slots__ = ("_coarse", "_fine_breakpoints", "_fine_per_coarse")

    def __init__(
        self,
        coarse: Discretizer,
        fine_breakpoints: Sequence[Sequence[float]],
        fine_per_coarse: int,
    ):
        if len(fine_breakpoints) != len(coarse.labels):
            raise SeriesError(
                "need one fine-breakpoint list per coarse bin "
                f"({len(coarse.labels)}), got {len(fine_breakpoints)}"
            )
        self._coarse = coarse
        self._fine_breakpoints = [list(points) for points in fine_breakpoints]
        self._fine_per_coarse = fine_per_coarse

    @classmethod
    def fit(
        cls,
        values: Sequence[float],
        coarse_bins: int = 3,
        fine_per_coarse: int = 2,
        coarse_labels: Sequence[str] | None = None,
    ) -> "MultiLevelDiscretizer":
        """Fit both levels to the observed values."""
        coarse = Discretizer.equal_frequency(values, coarse_bins, coarse_labels)
        per_bin: dict[str, list[float]] = {label: [] for label in coarse.labels}
        for value in values:
            per_bin[coarse.label(value)].append(value)
        fine_breakpoints: list[list[float]] = []
        for label in coarse.labels:
            members = per_bin[label]
            if len(members) >= 2 and fine_per_coarse >= 2:
                fine_breakpoints.append(
                    equal_width_breakpoints(members, fine_per_coarse)
                )
            else:
                fine_breakpoints.append([])
        return cls(coarse, fine_breakpoints, fine_per_coarse)

    @property
    def coarse_labels(self) -> list[str]:
        """The coarse bin labels."""
        return self._coarse.labels

    def features(self, value: float) -> frozenset[str]:
        """Both features (coarse and ``coarse.fine``) for one value."""
        coarse_labels = self._coarse.labels
        coarse = self._coarse.label(value)
        points = self._fine_breakpoints[coarse_labels.index(coarse)]
        fine = bisect.bisect_right(points, value)
        return frozenset((coarse, f"{coarse}.{fine}"))

    def transform(self, values: Sequence[float]) -> FeatureSeries:
        """Discretize a numeric sequence into a two-feature-per-slot series."""
        return FeatureSeries(self.features(value) for value in values)

    def taxonomy_edges(self) -> list[tuple[str, str]]:
        """``(child, parent)`` pairs linking fine labels under coarse labels.

        Feed these to :class:`repro.multilevel.taxonomy.Taxonomy`.
        """
        edges: list[tuple[str, str]] = []
        for index, coarse in enumerate(self._coarse.labels):
            fine_count = len(self._fine_breakpoints[index]) + 1
            for fine in range(fine_count):
                edges.append((f"{coarse}.{fine}", coarse))
        return edges
