"""Numeric pre-processing for feature derivation.

Section 6's numeric scenario ("stock or power consumption fluctuation")
usually needs a transform *before* discretization: absolute prices carry a
trend, it is the returns/deltas that are periodic.  This module provides
the standard transforms plus a movement labeller that goes straight from a
numeric sequence to a {down, flat, up}-style feature series.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import SeriesError
from repro.timeseries.feature_series import FeatureSeries


def deltas(values: Sequence[float]) -> list[float]:
    """First differences; one element shorter than the input."""
    if len(values) < 2:
        raise SeriesError("need at least 2 values to difference")
    return [
        float(after) - float(before)
        for before, after in zip(values, values[1:])
    ]


def percent_changes(values: Sequence[float]) -> list[float]:
    """Relative first differences ``(x[i+1] - x[i]) / |x[i]|``.

    Zero bases raise: a percent change from 0 is undefined, and silently
    substituting a sentinel would poison the downstream discretization.
    """
    if len(values) < 2:
        raise SeriesError("need at least 2 values for percent changes")
    changes: list[float] = []
    for before, after in zip(values, values[1:]):
        if before == 0:
            raise SeriesError("percent change from a zero value is undefined")
        changes.append((float(after) - float(before)) / abs(float(before)))
    return changes


def zscores(values: Sequence[float]) -> list[float]:
    """Standard scores against the sequence's own mean and deviation."""
    if not values:
        raise SeriesError("cannot standardize an empty sequence")
    floats = [float(value) for value in values]
    mean = sum(floats) / len(floats)
    variance = sum((value - mean) ** 2 for value in floats) / len(floats)
    if variance == 0:
        return [0.0] * len(floats)
    deviation = variance**0.5
    return [(value - mean) / deviation for value in floats]


def movement_series(
    values: Sequence[float],
    flat_band: float = 0.5,
    labels: tuple[str, str, str] = ("down", "flat", "up"),
    relative: bool = False,
) -> FeatureSeries:
    """Label consecutive moves as down/flat/up.

    Parameters
    ----------
    values:
        The raw numeric sequence (e.g. closing prices).
    flat_band:
        Moves with absolute size (or absolute relative size when
        ``relative``) below this are "flat".
    labels:
        The three labels, in (down, flat, up) order.
    relative:
        Use percent changes instead of absolute deltas.

    Returns
    -------
    FeatureSeries
        One slot per move — length ``len(values) - 1``.
    """
    if flat_band < 0:
        raise SeriesError(f"flat_band must be >= 0, got {flat_band}")
    if len(labels) != 3:
        raise SeriesError(f"need exactly 3 labels, got {len(labels)}")
    moves = percent_changes(values) if relative else deltas(values)
    down, flat, up = labels
    slots: list[str] = []
    for move in moves:
        if move > flat_band:
            slots.append(up)
        elif move < -flat_band:
            slots.append(down)
        else:
            slots.append(flat)
    return FeatureSeries(slots)
