"""Plain-text persistence for feature series.

Format: one slot per line, features separated by spaces; an empty line is an
empty slot.  Lines starting with ``#`` are comments.  The format is
line-oriented so a series can be streamed from disk, matching the paper's
disk-resident-database setting.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import SeriesError
from repro.timeseries.feature_series import FeatureSeries

if TYPE_CHECKING:
    from repro.timeseries.events import EventDatabase


def save_series(series: FeatureSeries, path: str | Path) -> None:
    """Write a series to a text file (one slot per line)."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# repro feature series v1\n")
        for slot in series:
            handle.write(" ".join(sorted(slot)))
            handle.write("\n")


def iter_slot_lines(path: str | Path) -> Iterator[frozenset[str]]:
    """Stream slots from a series file without materializing the series."""
    source = Path(path)
    if not source.exists():
        raise SeriesError(f"series file not found: {source}")
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line.startswith("#"):
                continue
            if not line.strip():
                yield frozenset()
            else:
                yield frozenset(line.split())


def load_series(path: str | Path) -> FeatureSeries:
    """Read a series previously written by :func:`save_series`."""
    return FeatureSeries(iter_slot_lines(path))


def load_numeric_csv(
    path: str | Path,
    column: str,
    delimiter: str = ",",
) -> list[float]:
    """Read one numeric column from a headed CSV file.

    A thin, dependency-free reader for the discretization pipeline: the
    first row is the header, the named column is parsed as floats.
    """
    import csv

    source = Path(path)
    if not source.exists():
        raise SeriesError(f"CSV file not found: {source}")
    values: list[float] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None or column not in reader.fieldnames:
            raise SeriesError(
                f"column {column!r} not in CSV header "
                f"{reader.fieldnames}: {source}"
            )
        for row_number, row in enumerate(reader, start=2):
            raw = row[column]
            try:
                values.append(float(raw))
            except (TypeError, ValueError) as error:
                raise SeriesError(
                    f"{source}:{row_number}: {column}={raw!r} is not numeric"
                ) from error
    if not values:
        raise SeriesError(f"CSV file has no data rows: {source}")
    return values


def load_events_csv(
    path: str | Path,
    time_column: str = "time",
    feature_column: str = "feature",
    delimiter: str = ",",
) -> "EventDatabase":
    """Read a timestamped event database from a headed CSV file.

    Returns a :class:`~repro.timeseries.events.EventDatabase`; bucket it
    with ``to_feature_series`` to obtain a mineable series.
    """
    import csv

    from repro.timeseries.events import EventDatabase

    source = Path(path)
    if not source.exists():
        raise SeriesError(f"CSV file not found: {source}")
    database = EventDatabase()
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        missing = {time_column, feature_column} - set(reader.fieldnames or ())
        if missing:
            raise SeriesError(
                f"columns {sorted(missing)} not in CSV header "
                f"{reader.fieldnames}: {source}"
            )
        for row_number, row in enumerate(reader, start=2):
            try:
                time = float(row[time_column])
            except (TypeError, ValueError) as error:
                raise SeriesError(
                    f"{source}:{row_number}: bad timestamp "
                    f"{row[time_column]!r}"
                ) from error
            feature = row[feature_column]
            if not feature:
                raise SeriesError(
                    f"{source}:{row_number}: empty feature name"
                )
            database.add(time, feature)
    if not database.events:
        raise SeriesError(f"CSV file has no data rows: {source}")
    return database
